"""Follower-side staged recovery and live tailing.

A follower class administrator catches up in the staged sequence the
ZKAPAuthorizer backup/recovery design uses for its replicas (see
SNIPPETS.md): an explicit state machine whose stages are observable,
so operators — and the crash harness — can tell *where* in recovery a
follower is at any moment:

    INACTIVE → DOWNLOADING_SNAPSHOT → REPLAYING_JOURNAL → TAILING
                                                            ↓
                                                        CAUGHT_UP

Durability discipline: every shipped frame is appended **verbatim** to
the follower's own journal (:meth:`~repro.rdb.wal.Journal.append_raw`)
*before* it is applied to the in-memory database.  The follower's disk
state is therefore always a byte-prefix of the primary's journal plus
a snapshot watermark — which means a follower killed at any byte
offset recovers through exactly the committed-prefix machinery E17
proves for the primary, then resumes the stream from its applied LSN.

Both the journal file and the snapshot download can be wrapped with a
:class:`~repro.fault.crashsim.FailpointFile`-style wrapper, which is
how :mod:`repro.replication.chaos` kills followers mid-catch-up.
"""

from __future__ import annotations

import enum
import os
from pathlib import Path
from typing import Any, BinaryIO, Callable, Sequence

from repro.net.messages import (
    Message,
    REPL_FRAMES,
    REPL_SNAPSHOT_CHUNK,
    REPL_SNAPSHOT_META,
    REPL_STATUS,
    REPL_SUBSCRIBE,
    ReplFrameBatch,
    ReplSnapshotChunk,
    ReplSnapshotMeta,
    ReplStatus,
    ReplSubscribe,
)
from repro.net.station import Station
from repro.net.transport import Network
from repro.obs.instrument import OBS
from repro.rdb import Database, Schema, SyncPolicy
from repro.rdb.wal import Journal, WalFrame, parse_frame

__all__ = ["RecoveryStage", "Recoverer"]


class RecoveryStage(enum.Enum):
    """Where a follower is in its catch-up state machine."""

    INACTIVE = "inactive"
    DOWNLOADING_SNAPSHOT = "downloading_snapshot"
    REPLAYING_JOURNAL = "replaying_journal"
    TAILING = "tailing"
    CAUGHT_UP = "caught_up"
    FAILED = "failed"


class Recoverer:
    """One follower: staged recovery, durable tailing, status reports.

    ``data_dir`` holds the follower's own snapshot + journal; restart
    the follower by constructing a fresh Recoverer over the same
    directory and calling :meth:`start` — local recovery replays what
    survived, then the subscription resumes the stream from there.

    ``ddl_fn`` re-issues secondary-index DDL after each database
    rebuild (same contract as the E17 harness).  ``on_apply`` fires
    after every applied frame — the replica tier uses it to refresh
    derived structures such as the library search index.
    """

    def __init__(
        self,
        network: Network,
        station_name: str,
        primary_name: str,
        schemas: Sequence[Schema],
        data_dir: str | os.PathLike[str],
        *,
        sync_policy: "SyncPolicy | str" = "commit",
        epoch: int = 1,
        file_wrapper: Callable[[BinaryIO], BinaryIO] | None = None,
        snapshot_wrapper: Callable[[BinaryIO], BinaryIO] | None = None,
        ddl_fn: Callable[[Database], None] | None = None,
        on_apply: Callable[[WalFrame], None] | None = None,
        on_rebuild: Callable[[Database], None] | None = None,
    ) -> None:
        self.network = network
        self.station_name = station_name
        self.primary_name = primary_name
        self.schemas = list(schemas)
        self.data_dir = Path(data_dir)
        self.sync_policy = SyncPolicy.parse(sync_policy)
        self.epoch = epoch
        self.file_wrapper = file_wrapper
        self.snapshot_wrapper = snapshot_wrapper
        self.ddl_fn = ddl_fn
        self.on_apply = on_apply
        #: called with the new Database whenever local state is rebuilt
        #: (startup recovery and snapshot installs) — the read-replica
        #: tier re-adopts the fresh engine here
        self.on_rebuild = on_rebuild
        self.db: Database | None = None
        self.journal: Journal | None = None
        self.applied_lsn = 0
        self.primary_lsn_seen = 0
        self.stage = RecoveryStage.INACTIVE
        self.stage_history: list[RecoveryStage] = [self.stage]
        self.frames_applied = 0
        self.resubscribes = 0
        # In-flight snapshot download state
        self._snap_meta: ReplSnapshotMeta | None = None
        self._snap_fh: Any = None
        self._snap_seq = 0

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def snapshot_path(self) -> Path:
        return self.data_dir / "replica.snapshot"

    @property
    def journal_path(self) -> Path:
        return self.data_dir / "replica.wal"

    @property
    def caught_up(self) -> bool:
        return self.stage is RecoveryStage.CAUGHT_UP

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Recover local state, register handlers, subscribe."""
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self._enter(RecoveryStage.REPLAYING_JOURNAL)
        snapshot = (
            str(self.snapshot_path) if self.snapshot_path.exists() else None
        )
        self.db = Database.recover(
            self.station_name.replace("-", "_"), self.schemas,
            snapshot_path=snapshot, journal_path=str(self.journal_path),
        )
        if self.ddl_fn is not None:
            self.ddl_fn(self.db)
        if self.on_rebuild is not None:
            self.on_rebuild(self.db)
        # Opening the journal trims any torn tail a crash left behind.
        self.journal = Journal(
            self.journal_path, sync=self.sync_policy,
            file_wrapper=self.file_wrapper,
        )
        assert self.db.recovery_stats is not None
        self.applied_lsn = max(
            self.journal.last_lsn, self.db.recovery_stats.watermark
        )
        station = self.network.station(self.station_name)
        for kind in (REPL_SNAPSHOT_META, REPL_SNAPSHOT_CHUNK, REPL_FRAMES):
            station.off(kind)
        station.on(REPL_SNAPSHOT_META, self._on_snapshot_meta)
        station.on(REPL_SNAPSHOT_CHUNK, self._on_snapshot_chunk)
        station.on(REPL_FRAMES, self._on_frames)
        self._enter(RecoveryStage.TAILING)
        self._subscribe()

    def stop(self) -> None:
        """Detach from the stream (promotion, shutdown)."""
        station = self.network.station(self.station_name)
        for kind in (REPL_SNAPSHOT_META, REPL_SNAPSHOT_CHUNK, REPL_FRAMES):
            station.off(kind)
        self._abort_download()
        if self.journal is not None:
            self.journal.close()

    def promote(self) -> tuple[Database, Journal]:
        """Detach from the stream and hand over (db, journal) for
        primary duty.

        Unlike :meth:`stop` the journal stays open: the caller attaches
        it to the database so new commits journal locally, snapshots to
        open the new WAL epoch, and wraps the pair in a fresh
        :class:`~repro.replication.shipper.WalShipper`.
        """
        assert self.db is not None and self.journal is not None
        station = self.network.station(self.station_name)
        for kind in (REPL_SNAPSHOT_META, REPL_SNAPSHOT_CHUNK, REPL_FRAMES):
            station.off(kind)
        self._abort_download()
        self.db.attach_journal(self.journal)
        self._enter(RecoveryStage.CAUGHT_UP)
        return self.db, self.journal

    def retarget(self, primary_name: str, *, epoch: int | None = None) -> None:
        """Follow a different primary (after a failover promotion)."""
        self.primary_name = primary_name
        if epoch is not None:
            self.epoch = max(self.epoch, epoch)
        self._enter(RecoveryStage.TAILING)
        self._subscribe()

    def _subscribe(self) -> None:
        self.resubscribes += 1
        self.network.send(
            self.station_name, self.primary_name, REPL_SUBSCRIBE,
            ReplSubscribe(
                follower=self.station_name, applied_lsn=self.applied_lsn,
                epoch=self.epoch,
            ),
            64,
        )

    def _enter(self, stage: RecoveryStage) -> None:
        if stage is self.stage:
            return
        self.stage = stage
        self.stage_history.append(stage)
        if OBS.enabled and OBS.registry is not None:
            OBS.registry.counter(
                "replication.stage_transitions", stage=stage.value
            ).inc()

    def _report_status(self) -> None:
        self.network.send(
            self.station_name, self.primary_name, REPL_STATUS,
            ReplStatus(
                follower=self.station_name, epoch=self.epoch,
                applied_lsn=self.applied_lsn, stage=self.stage.value,
            ),
            48,
        )

    # ------------------------------------------------------------------
    # Snapshot download
    # ------------------------------------------------------------------
    def _snapshot_tmp(self) -> Path:
        return self.data_dir / "replica.snapshot.download"

    def _abort_download(self) -> None:
        if self._snap_fh is not None:
            try:
                self._snap_fh.close()
            except Exception:
                pass
        self._snap_fh = None
        self._snap_meta = None
        self._snap_seq = 0
        if self._snapshot_tmp().exists():
            self._snapshot_tmp().unlink()

    def _on_snapshot_meta(self, _station: Station, message: Message) -> None:
        meta: ReplSnapshotMeta = message.payload
        if meta.epoch < self.epoch:
            return
        self.epoch = max(self.epoch, meta.epoch)
        self._abort_download()
        self._enter(RecoveryStage.DOWNLOADING_SNAPSHOT)
        fh: Any = self._snapshot_tmp().open("wb")
        if self.snapshot_wrapper is not None:
            fh = self.snapshot_wrapper(fh)
        self._snap_fh = fh
        self._snap_meta = meta
        self._snap_seq = 0

    def _on_snapshot_chunk(self, _station: Station, message: Message) -> None:
        chunk: ReplSnapshotChunk = message.payload
        if self._snap_meta is None or chunk.epoch < self.epoch:
            return
        if (chunk.seq != self._snap_seq
                or chunk.snapshot_lsn != self._snap_meta.snapshot_lsn):
            # A chunk went missing or interleaved transfers collided:
            # drop this download and ask again from our durable LSN.
            self._abort_download()
            self._enter(RecoveryStage.TAILING)
            self._subscribe()
            return
        self._snap_fh.write(chunk.data)
        self._snap_seq += 1
        if not chunk.last:
            return
        # Transfer complete: make it durable, then atomically install.
        self._snap_fh.flush()
        os.fsync(self._snap_fh.fileno())
        self._snap_fh.close()
        self._snap_fh = None
        meta = self._snap_meta
        self._snap_meta = None
        self._install_snapshot(meta.snapshot_lsn)

    def _install_snapshot(self, snapshot_lsn: int) -> None:
        """Swap in the downloaded snapshot and restart the journal epoch.

        Ordering is crash-safe: the stale journal is discarded *before*
        the snapshot is renamed into place, so a crash anywhere in the
        sequence leaves either (old snapshot, no journal) — which
        resubscribes and downloads again — or (new snapshot, fresh
        journal) — which resumes from the watermark.  It can never
        leave a stale journal to replay on top of the new snapshot.
        """
        assert self.journal is not None
        self._enter(RecoveryStage.REPLAYING_JOURNAL)
        self.journal.close()
        if self.journal_path.exists():
            self.journal_path.unlink()
        marker = self.journal_path.with_name(self.journal_path.name + ".ckpt")
        if marker.exists():
            marker.unlink()
        os.replace(self._snapshot_tmp(), self.snapshot_path)
        self.db = Database.recover(
            self.station_name.replace("-", "_"), self.schemas,
            snapshot_path=str(self.snapshot_path),
        )
        if self.ddl_fn is not None:
            self.ddl_fn(self.db)
        if self.on_rebuild is not None:
            self.on_rebuild(self.db)
        self.journal = Journal(
            self.journal_path, sync=self.sync_policy,
            file_wrapper=self.file_wrapper,
        )
        self.journal.checkpoint(snapshot_lsn)
        self.applied_lsn = snapshot_lsn
        self._enter(RecoveryStage.TAILING)
        self._subscribe()

    # ------------------------------------------------------------------
    # Live frames
    # ------------------------------------------------------------------
    def _on_frames(self, _station: Station, message: Message) -> None:
        batch: ReplFrameBatch = message.payload
        if batch.epoch < self.epoch:
            return  # fenced: a deposed primary is still talking
        self.epoch = max(self.epoch, batch.epoch)
        if self.stage is RecoveryStage.DOWNLOADING_SNAPSHOT:
            return  # stream restarts cleanly after the download installs
        assert self.db is not None and self.journal is not None
        self.primary_lsn_seen = max(self.primary_lsn_seen, batch.primary_lsn)
        for lsn, data in batch.frames:
            if lsn <= self.applied_lsn:
                continue  # duplicate delivery
            if lsn != self.applied_lsn + 1:
                # A batch was lost on the wire: resume from our durable
                # position rather than applying with a hole.
                self._enter(RecoveryStage.TAILING)
                self._subscribe()
                return
            frame = parse_frame(bytes(data))
            # WAL-first: the frame is durable locally before its effects
            # are visible, the same invariant the primary maintains.
            self.journal.append_raw(lsn, frame.data)
            self.db.apply_replicated(frame.record())
            self.applied_lsn = lsn
            self.frames_applied += 1
            if self.on_apply is not None:
                self.on_apply(frame)
        if self.applied_lsn >= batch.primary_lsn:
            self._enter(RecoveryStage.CAUGHT_UP)
        else:
            self._enter(RecoveryStage.TAILING)
        self._report_status()

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Progress counters for reports and tests."""
        return {
            "station": self.station_name,
            "stage": self.stage.value,
            "applied_lsn": self.applied_lsn,
            "primary_lsn_seen": self.primary_lsn_seen,
            "frames_applied": self.frames_applied,
            "resubscribes": self.resubscribes,
            "stages": [s.value for s in self.stage_history],
        }
