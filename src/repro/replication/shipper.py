"""Primary-side WAL shipping.

The :class:`WalShipper` sits next to the primary's journal and serves
the replication stream: followers subscribe with their applied LSN and
the shipper answers with either a resumed frame stream (the common
case) or a full snapshot download when the follower's position has
been checkpointed away — or when the follower has *diverged*, i.e. it
claims an LSN the primary never issued (the signature of a deposed
primary rejoining after failover).

Flow control is ack-driven: each :class:`~repro.net.messages.ReplStatus`
from a follower triggers the next frame batch, so a whole catch-up runs
inside one simulator drain with bounded in-flight data per follower.
New commits are pushed by calling :meth:`WalShipper.pump` after write
batches (the class-administrator deployments pump from their request
loop; benchmarks pump per round).

Replica-lag accounting happens here, on the primary, where both ends
of the lag are known: every status report updates the follower's
``replica.applied_lsn`` gauge and feeds the ``replica.lag_records``
histogram.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.net.messages import (
    Message,
    REPL_FRAMES,
    REPL_SNAPSHOT_CHUNK,
    REPL_SNAPSHOT_META,
    REPL_STATUS,
    REPL_SUBSCRIBE,
    ReplFrameBatch,
    ReplSnapshotChunk,
    ReplSnapshotMeta,
    ReplStatus,
    ReplSubscribe,
)
from repro.admission import CircuitBreaker
from repro.net.station import Station
from repro.net.transport import Network
from repro.obs.instrument import OBS
from repro.rdb.wal import Journal, read_frames, read_snapshot_info

__all__ = ["FollowerProgress", "WalShipper"]


@dataclass
class FollowerProgress:
    """What the primary knows about one follower."""

    name: str
    #: highest LSN shipped to (not necessarily applied by) the follower
    shipped_lsn: int = 0
    #: highest LSN the follower reported durably applied
    applied_lsn: int = 0
    stage: str = "subscribed"
    #: snapshot transfer in flight (suppresses frame pushes)
    syncing: bool = False
    status_reports: int = 0
    resyncs: int = 0
    lag_samples: list[int] = field(default_factory=list)

    @property
    def lag(self) -> int | None:
        """Last observed LSN lag (None before the first status)."""
        return self.lag_samples[-1] if self.lag_samples else None


class WalShipper:
    """Streams a journal (snapshot + live frames) to follower stations.

    ``journal`` is the primary's live :class:`~repro.rdb.wal.Journal`
    (the one attached to its database); ``snapshot_path`` the snapshot
    the journal's checkpoints are staged against.  ``snapshot_fn``,
    when given, is invoked to produce a *fresh* snapshot before a full
    resync is served (typically ``admin.checkpoint`` or
    ``db.snapshot``); without it the shipper serves whatever snapshot
    file already exists.
    """

    def __init__(
        self,
        network: Network,
        station_name: str,
        journal: Journal,
        *,
        snapshot_path: str | os.PathLike[str] | None = None,
        snapshot_fn: Callable[[], None] | None = None,
        epoch: int = 1,
        batch_frames: int = 64,
        chunk_bytes: int = 32 * 1024,
        resync_breaker: CircuitBreaker | None = None,
    ) -> None:
        self.network = network
        self.station_name = station_name
        self.journal = journal
        self.snapshot_path = (
            Path(snapshot_path) if snapshot_path is not None else None
        )
        self.snapshot_fn = snapshot_fn
        self.epoch = epoch
        self.batch_frames = batch_frames
        self.chunk_bytes = chunk_bytes
        #: Optional rate guard on full-snapshot resyncs — the most
        #: expensive thing a primary does for a follower.  Each served
        #: resync counts toward the breaker's failure window, so
        #: ``failure_threshold`` resyncs within ``window_s`` open it and
        #: a flapping follower stops monopolizing the primary until the
        #: cool-down probe admits one more.  None (default) = unlimited,
        #: the pre-existing behaviour.
        self.resync_breaker = resync_breaker
        self.resyncs_refused = 0
        self.followers: dict[str, FollowerProgress] = {}
        self.frames_shipped = 0
        self.bytes_shipped = 0
        self.snapshots_served = 0
        station = network.station(station_name)
        station.on(REPL_SUBSCRIBE, self._on_subscribe)
        station.on(REPL_STATUS, self._on_status)

    def close(self) -> None:
        """Detach the protocol handlers (used when a primary is deposed)."""
        station = self.network.station(self.station_name)
        station.off(REPL_SUBSCRIBE)
        station.off(REPL_STATUS)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def last_lsn(self) -> int:
        """The primary's current journal horizon."""
        return self.journal.last_lsn

    def commit_horizon(self) -> int:
        """Highest LSN applied by *every* follower (0 with none)."""
        if not self.followers:
            return 0
        return min(f.applied_lsn for f in self.followers.values())

    def caught_up(self, name: str) -> bool:
        """True when ``name`` has applied everything journaled so far."""
        progress = self.followers.get(name)
        return (progress is not None
                and progress.applied_lsn >= self.journal.last_lsn)

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def pump(self) -> int:
        """Push pending frames to every subscribed follower.

        Returns the number of frames put on the wire.  Call after
        write batches; ack-driven pushes keep the stream flowing in
        between.
        """
        sent = 0
        for progress in self.followers.values():
            sent += self._push_frames(progress)
        return sent

    def _base_lsn(self) -> int:
        """Lowest LSN the journal file can stream *from* (exclusive)."""
        for frame in read_frames(self.journal.path):
            if frame.kind == "ckpt":
                return frame.lsn
            return frame.lsn - 1
        return self.journal.last_lsn

    def _push_frames(self, progress: FollowerProgress) -> int:
        if progress.syncing:
            return 0
        start = max(progress.shipped_lsn, progress.applied_lsn)
        if start >= self.journal.last_lsn:
            return 0
        if progress.applied_lsn < self._base_lsn():
            # The follower's position was checkpointed away *while it was
            # subscribed* (a checkpoint ran between its acks): the frames
            # it needs no longer exist, so switch it to a snapshot resync.
            self._serve_snapshot(progress)
            return 0
        frames = []
        for frame in read_frames(self.journal.path, from_lsn=start):
            if frame.kind != "txn":
                continue
            frames.append((frame.lsn, frame.data))
            if len(frames) >= self.batch_frames:
                break
        if not frames:
            return 0
        batch = ReplFrameBatch(
            epoch=self.epoch, frames=frames,
            primary_lsn=self.journal.last_lsn,
        )
        size = sum(len(data) for _lsn, data in frames)
        self.network.send(
            self.station_name, progress.name, REPL_FRAMES, batch, size
        )
        progress.shipped_lsn = frames[-1][0]
        self.frames_shipped += len(frames)
        self.bytes_shipped += size
        if OBS.enabled and OBS.registry is not None:
            OBS.registry.counter("replication.frames_shipped").inc(len(frames))
            OBS.registry.counter("replication.bytes_shipped").inc(size)
        return len(frames)

    # ------------------------------------------------------------------
    # Snapshot transfer
    # ------------------------------------------------------------------
    def _serve_snapshot(self, progress: FollowerProgress) -> bool:
        """Start a chunked snapshot download to ``progress``; False when
        no snapshot can be produced (the follower stays subscribed and
        will be streamed from LSN 0 if the journal allows) or when the
        resync breaker is open (the follower retries after cool-down)."""
        if self.resync_breaker is not None and not self.resync_breaker.allow(
            self.network.sim.now
        ):
            self.resyncs_refused += 1
            if OBS.enabled and OBS.registry is not None:
                OBS.registry.counter(
                    "breaker.rejected", endpoint=self.resync_breaker.name
                ).inc()
            return False
        if self.snapshot_fn is not None:
            # Produce a fresh snapshot at the current horizon; this also
            # checkpoints the journal, so the follow-up stream starts
            # exactly at the snapshot watermark.
            self.snapshot_fn()
        if self.snapshot_path is None or not self.snapshot_path.exists():
            return False
        data = self.snapshot_path.read_bytes()
        _tables, snapshot_lsn = read_snapshot_info(self.snapshot_path)
        chunks = [
            data[i:i + self.chunk_bytes]
            for i in range(0, len(data), self.chunk_bytes)
        ] or [b""]
        self.network.send(
            self.station_name, progress.name, REPL_SNAPSHOT_META,
            ReplSnapshotMeta(
                epoch=self.epoch, snapshot_lsn=snapshot_lsn,
                size_bytes=len(data), chunks=len(chunks),
            ),
            64,
        )
        for seq, chunk in enumerate(chunks):
            self.network.send(
                self.station_name, progress.name, REPL_SNAPSHOT_CHUNK,
                ReplSnapshotChunk(
                    epoch=self.epoch, snapshot_lsn=snapshot_lsn,
                    seq=seq, data=chunk, last=seq == len(chunks) - 1,
                ),
                len(chunk),
            )
        progress.syncing = True
        progress.shipped_lsn = snapshot_lsn
        progress.resyncs += 1
        self.snapshots_served += 1
        if self.resync_breaker is not None:
            # Each served resync spends breaker budget (see __init__).
            self.resync_breaker.record_failure(self.network.sim.now)
        if OBS.enabled and OBS.registry is not None:
            OBS.registry.counter("replication.snapshot_chunks").inc(len(chunks))
            OBS.registry.counter("replication.resyncs").inc()
        return True

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _on_subscribe(self, _station: Station, message: Message) -> None:
        sub: ReplSubscribe = message.payload
        if sub.epoch > self.epoch:
            # A subscriber from a *later* epoch: this shipper has been
            # deposed and must not serve stale history.
            return
        progress = self.followers.setdefault(
            sub.follower, FollowerProgress(name=sub.follower)
        )
        progress.syncing = False
        diverged = sub.applied_lsn > self.journal.last_lsn
        checkpointed_away = sub.applied_lsn < self._base_lsn()
        if diverged or checkpointed_away:
            if self._serve_snapshot(progress):
                return
            if diverged:
                # No snapshot machinery: a diverged follower cannot be
                # reconciled; leave it subscribed but quiescent.
                progress.stage = "diverged"
                return
        progress.shipped_lsn = min(sub.applied_lsn, self.journal.last_lsn)
        progress.applied_lsn = min(
            max(progress.applied_lsn, sub.applied_lsn), self.journal.last_lsn
        )
        if self._push_frames(progress) == 0:
            # Nothing to stream: answer with an empty batch anyway so the
            # subscriber learns the horizon and can report caught-up.
            self.network.send(
                self.station_name, progress.name, REPL_FRAMES,
                ReplFrameBatch(
                    epoch=self.epoch, frames=[],
                    primary_lsn=self.journal.last_lsn,
                ),
                32,
            )

    def _on_status(self, _station: Station, message: Message) -> None:
        status: ReplStatus = message.payload
        if status.epoch > self.epoch:
            return
        progress = self.followers.setdefault(
            status.follower, FollowerProgress(name=status.follower)
        )
        progress.applied_lsn = max(progress.applied_lsn, status.applied_lsn)
        progress.stage = status.stage
        progress.status_reports += 1
        lag = max(0, self.journal.last_lsn - status.applied_lsn)
        progress.lag_samples.append(lag)
        if OBS.enabled and OBS.registry is not None:
            OBS.registry.gauge(
                "replica.applied_lsn", follower=status.follower
            ).set(status.applied_lsn)
            OBS.registry.histogram("replica.lag_records").observe(lag)
        # Ack-driven flow: keep streaming while the follower is behind.
        self._push_frames(progress)

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Shipping counters plus per-follower progress."""
        return {
            "epoch": self.epoch,
            "last_lsn": self.journal.last_lsn,
            "frames_shipped": self.frames_shipped,
            "bytes_shipped": self.bytes_shipped,
            "snapshots_served": self.snapshots_served,
            "followers": {
                name: {
                    "applied_lsn": p.applied_lsn,
                    "shipped_lsn": p.shipped_lsn,
                    "stage": p.stage,
                    "lag": p.lag,
                }
                for name, p in self.followers.items()
            },
        }
