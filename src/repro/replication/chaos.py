"""E17's crash harness, extended to replication followers (E18).

The primary-side matrix (:mod:`repro.fault.crashsim`) proves the
committed-prefix guarantee for a single engine.  This module proves
the *replicated* version: a follower killed at an arbitrary byte
offset of its write stream — while replaying shipped frames, or while
downloading a snapshot — always

* recovers to a **consistent prefix**: its rebuilt table state equals
  the primary's acked state at the follower's recovered applied LSN,
  with every constraint and secondary index intact, and
* **resumes**: a restarted follower re-subscribes from that LSN and
  catches all the way up to the primary.

The kill mechanism is the same :class:`~repro.fault.crashsim
.FailpointFile` E17 arms on the primary's journal — here wrapped
around the follower's journal (``file_wrapper``) or its snapshot
download (``snapshot_wrapper``), so the failpoint fires inside a live
network handler and the crash propagates out of the simulator drain
exactly where a real process would die.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.fault.crashsim import (
    CRASH_SCHEMAS,
    FailpointFile,
    SimulatedCrashError,
    apply_workload_txn,
    build_crash_db,
    database_state,
    verify_database,
)
from repro.net.sim import Simulator
from repro.net.station import Station
from repro.net.transport import Network
from repro.rdb import Database
from repro.rdb.wal import Journal
from repro.replication.recoverer import Recoverer
from repro.replication.shipper import WalShipper
from repro.util.rng import make_rng

__all__ = [
    "FollowerCrashCase",
    "FollowerCrashReport",
    "run_follower_crash_matrix",
]


@dataclass(frozen=True, slots=True)
class FollowerCrashCase:
    """One follower kill-point's outcome."""

    offset: int
    phase: str  # "replay" | "snapshot"
    ok: bool
    #: applied LSN the restarted follower recovered to (before resuming)
    recovered_lsn: int = 0
    #: whether the failpoint actually fired (EOF offsets are controls)
    crashed: bool = False
    detail: str = ""


@dataclass
class FollowerCrashReport:
    """Aggregated results of one follower crash sweep."""

    cases: list[FollowerCrashCase] = field(default_factory=list)

    @property
    def failures(self) -> list[FollowerCrashCase]:
        return [c for c in self.cases if not c.ok]

    @property
    def ok(self) -> bool:
        """True when every kill point recovered and resumed correctly."""
        return not self.failures

    def summary(self) -> str:
        """One-line human summary."""
        crashes = sum(1 for c in self.cases if c.crashed)
        status = "ok" if self.ok else f"{len(self.failures)} FAILURES"
        return (
            f"follower crash matrix: {len(self.cases)} points "
            f"({crashes} fired), {status}"
        )


def _follower_ddl(db: Database) -> None:
    """Same secondary-index DDL E17's recovery path re-issues."""
    db.create_hash_index("crash_docs", "docs_by_version", ("version",))
    db.create_sorted_index("crash_docs", "docs_by_id", "doc_id")
    db.create_sorted_index("crash_refs", "refs_by_id", "ref_id")


class _Cluster:
    """A fresh primary + one follower, rebuilt per kill point."""

    def __init__(
        self, workdir: Path, *, txns: int, seed: int,
        checkpoint_after: int | None = None,
    ) -> None:
        self.workdir = workdir
        workdir.mkdir(parents=True, exist_ok=True)
        self.network = Network(Simulator(), default_latency_s=0.002)
        self.network.add(Station("primary"))
        self.network.add(Station("follower"))
        self.journal = Journal(workdir / "primary.wal", sync="commit")
        self.db = build_crash_db("primary", journal=self.journal)
        self.snapshot_path = workdir / "primary.snapshot"
        rng = make_rng(seed, "crashsim-workload")
        #: acked state per LSN (LSNs are 1..txns, one per transaction)
        self.acked: dict[int, dict[str, Any]] = {0: database_state(self.db)}
        for k in range(1, txns + 1):
            apply_workload_txn(self.db, k, rng)
            self.acked[self.journal.last_lsn] = database_state(self.db)
            if checkpoint_after is not None and k == checkpoint_after:
                # Opens a snapshot + truncated journal, so a from-zero
                # subscriber must take the snapshot-download path.
                self.db.snapshot(str(self.snapshot_path))
        self.shipper = WalShipper(
            self.network, "primary", self.journal,
            snapshot_path=self.snapshot_path,
        )

    def state_at(self, lsn: int) -> dict[str, Any]:
        """Primary acked state exactly at ``lsn`` (must be an ack point)."""
        return self.acked[lsn]

    def follower(self, **wrappers: Any) -> Recoverer:
        return Recoverer(
            self.network, "follower", "primary", CRASH_SCHEMAS,
            self.workdir / "follower", sync_policy="commit",
            ddl_fn=_follower_ddl, **wrappers,
        )


def _run_point(
    cluster: _Cluster, offset: int, phase: str
) -> FollowerCrashCase:
    """Kill the follower at ``offset`` during ``phase``, restart, verify."""
    if phase == "replay":
        wrappers = {
            "file_wrapper":
                lambda fh, _o=offset: FailpointFile(fh, _o),
        }
    else:
        wrappers = {
            "snapshot_wrapper":
                lambda fh, _o=offset: FailpointFile(fh, _o),
        }
    doomed = cluster.follower(**wrappers)
    doomed.start()
    crashed = False
    try:
        cluster.network.quiesce()
    except SimulatedCrashError:
        crashed = True
    # The dead process stops receiving; drain whatever is still in
    # flight (dropped on the floor, as for any down station).
    cluster.network.set_down("follower", True)
    cluster.network.quiesce()

    # Cold restart over the same data directory, failpoint removed.
    survivor = cluster.follower()
    cluster.network.set_down("follower", False)
    survivor.start()

    # Consistent prefix BEFORE any resumed traffic is applied: the
    # recovered LSN must be an acked transaction (or the snapshot
    # watermark) and the table state must match the primary's state at
    # exactly that LSN.
    lsn = survivor.applied_lsn
    assert survivor.db is not None
    if lsn not in cluster.acked:
        return FollowerCrashCase(
            offset, phase, False, lsn, crashed,
            f"recovered to LSN {lsn}, which the primary never acked",
        )
    if database_state(survivor.db) != cluster.state_at(lsn):
        return FollowerCrashCase(
            offset, phase, False, lsn, crashed,
            "recovered state diverges from the primary's acked state "
            f"at LSN {lsn}",
        )
    problems = verify_database(survivor.db)
    if problems:
        return FollowerCrashCase(
            offset, phase, False, lsn, crashed, "; ".join(problems)
        )

    # Resume: the re-subscription must carry the follower all the way
    # to the primary's horizon.
    cluster.network.quiesce()
    cluster.shipper.pump()
    cluster.network.quiesce()
    if survivor.applied_lsn != cluster.journal.last_lsn:
        return FollowerCrashCase(
            offset, phase, False, lsn, crashed,
            f"resumed to LSN {survivor.applied_lsn}, primary is at "
            f"{cluster.journal.last_lsn}",
        )
    if database_state(survivor.db) != database_state(cluster.db):
        return FollowerCrashCase(
            offset, phase, False, lsn, crashed,
            "caught-up state diverges from the primary",
        )
    survivor.stop()
    return FollowerCrashCase(offset, phase, True, lsn, crashed)


def run_follower_crash_matrix(
    workdir: str | Path,
    *,
    txns: int = 24,
    stride: int = 96,
    snapshot_stride: int = 1024,
    checkpoint_after: int | None = None,
    seed: int = 0,
) -> FollowerCrashReport:
    """Kill-at-point sweep over a live follower's two write streams.

    **Replay sweep** — the follower tails the primary from LSN 0; its
    journal write stream is killed at every ``stride``-th byte (plus
    the no-crash control at EOF).  **Snapshot sweep** — the primary is
    checkpointed after ``checkpoint_after`` transactions (defaults to
    ``txns // 2``) so a from-zero subscriber must download a snapshot;
    the download stream is killed at every ``snapshot_stride``-th byte.

    Every point asserts consistent-prefix recovery *and* full resume;
    see :class:`FollowerCrashCase` for the per-point verdicts.
    """
    workdir = Path(workdir)
    report = FollowerCrashReport()
    if checkpoint_after is None:
        checkpoint_after = txns // 2

    # Sizing probe: the follower's journal mirrors the primary's frame
    # bytes, so the primary journal's size bounds the replay sweep.
    probe = _Cluster(workdir / "probe", txns=txns, seed=seed)
    replay_size = probe.journal.tell()
    probe.journal.close()

    for offset in [*range(1, replay_size, max(1, stride)), replay_size]:
        cluster = _Cluster(
            workdir / f"replay-{offset}", txns=txns, seed=seed
        )
        report.cases.append(_run_point(cluster, offset, "replay"))
        cluster.journal.close()

    snap_probe = _Cluster(
        workdir / "snap-probe", txns=txns, seed=seed,
        checkpoint_after=checkpoint_after,
    )
    snapshot_size = snap_probe.snapshot_path.stat().st_size
    snap_probe.journal.close()

    for offset in [*range(1, snapshot_size, max(1, snapshot_stride)),
                   snapshot_size]:
        cluster = _Cluster(
            workdir / f"snap-{offset}", txns=txns, seed=seed,
            checkpoint_after=checkpoint_after,
        )
        report.cases.append(_run_point(cluster, offset, "snapshot"))
        cluster.journal.close()
    return report
