"""WAL-shipping replication: read replicas and failover promotion.

The class administrator's framed journal (:mod:`repro.rdb.wal` v2:
monotonic LSNs, CRC, checkpoint watermarks) is streamed over
:mod:`repro.net` to follower class administrators, turning the single
middle tier into a replicated one:

* :class:`~repro.replication.shipper.WalShipper` — primary side.
  Serves snapshot downloads and streams journal frames to subscribed
  followers, resuming each follower exactly above its applied LSN and
  tracking replica lag;
* :class:`~repro.replication.recoverer.Recoverer` — follower side.  A
  staged state machine (download snapshot → replay journal to the
  watermark → tail live frames → caught up) that persists every shipped
  frame to its *own* journal before applying it, so a follower crash
  recovers through the same committed-prefix machinery as the primary;
* :class:`~repro.replication.failover.FailoverCoordinator` — promotes
  the live follower with the highest applied LSN, opens a new WAL
  epoch (snapshot + fenced epoch number), retargets the surviving
  followers, and rejoins the deposed primary as a follower through the
  :mod:`repro.fault` rejoin path;
* :mod:`~repro.replication.chaos` — the E17 crash harness extended to
  followers: kill a follower at arbitrary byte offsets during snapshot
  download or frame replay and prove it recovers to a consistent
  prefix and resumes.

Read routing lives one layer up, in
:class:`repro.tiers.replicaset.ReplicaSet`, which sends library search
and catalog reads to caught-up replicas while writes stay on the
primary.

Naming note — three kinds of "replication" coexist in this repo, one
per layer:

* **this package** replicates the *relational database* of a class
  administrator (WAL shipping; read scaling and failover);
* :mod:`repro.distribution.replication` replicates *course-document
  BLOBs* onto stations (the paper's instance/reference forms and
  buffer-space migration);
* :mod:`repro.distribution.syncdb` replicates *document-layer
  metadata rows* fleet-wide via operation logs with vector clocks
  (E11's eventual consistency between stations).

See DESIGN.md §11 for the architecture and the failover protocol.
"""

from repro.replication.shipper import FollowerProgress, WalShipper
from repro.replication.recoverer import Recoverer, RecoveryStage
from repro.replication.failover import FailoverCoordinator, FailoverReport
from repro.replication.chaos import (
    FollowerCrashCase,
    FollowerCrashReport,
    run_follower_crash_matrix,
)

__all__ = [
    "WalShipper",
    "FollowerProgress",
    "Recoverer",
    "RecoveryStage",
    "FailoverCoordinator",
    "FailoverReport",
    "FollowerCrashCase",
    "FollowerCrashReport",
    "run_follower_crash_matrix",
]
