"""Failover promotion: elect a follower, fence the old epoch, rejoin.

When the primary class administrator crashes, the coordinator promotes
the *live follower with the highest applied LSN* — with ack-driven
shipping that follower holds the longest durable prefix of the lost
journal, so every commit the primary managed to replicate survives.
Promotion opens a **new WAL epoch**:

1. the winner detaches from the stream and attaches its journal to its
   database (new commits journal locally from here on);
2. it snapshots, which checkpoints its journal at the promotion LSN —
   the snapshot any later subscriber resyncs from;
3. a fresh :class:`~repro.replication.shipper.WalShipper` starts with
   ``epoch + 1``; surviving followers retarget to it.

The epoch number fences split-brain: shippers ignore subscriptions
from higher epochs (a deposed primary must not serve stale history)
and recoverers ignore frame batches from lower epochs (a deposed
primary must not overwrite promoted history).

The deposed primary rejoins as a follower through
:meth:`rejoin_old_primary` — revived via the
:class:`repro.fault.recovery.RecoveryManager` rejoin path when the
deployment has one (restoring broadcast-vector membership too), else
by flipping the station back up.  If it journaled commits past the
promotion LSN that never reached a follower, it subscribes *diverged*
and the new primary resyncs it with a full snapshot; those unacked
commits are discarded, which is exactly the async-replication
contract: only acked-and-replicated commits are promised to survive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.net.transport import Network
from repro.obs.instrument import OBS
from repro.replication.recoverer import Recoverer, RecoveryStage
from repro.replication.shipper import WalShipper

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fault.recovery import RecoveryManager

__all__ = ["FailoverCoordinator", "FailoverReport"]


@dataclass
class FailoverReport:
    """What one promotion did."""

    old_primary: str
    new_primary: str
    #: LSN the winner had durably applied at election time
    promoted_lsn: int
    #: the fenced epoch the new primary ships under
    epoch: int
    #: followers retargeted to the new primary
    retargeted: list[str] = field(default_factory=list)
    #: applied LSN of every candidate considered, for the record
    candidate_lsns: dict[str, int] = field(default_factory=dict)


class FailoverCoordinator:
    """Tracks one replication group and performs promotions.

    Register the primary's shipper and every follower's recoverer;
    after a primary crash call :meth:`promote`.  The coordinator is
    deliberately an *external* agent (the experiment driver, or an
    operator): the paper's two-tier design has no consensus layer, so
    election is observed state — highest applied LSN among live
    followers — not a quorum protocol.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self.shipper: WalShipper | None = None
        self.recoverers: dict[str, Recoverer] = {}
        self.reports: list[FailoverReport] = []

    def set_primary(self, shipper: WalShipper) -> None:
        self.shipper = shipper

    def add_follower(self, recoverer: Recoverer) -> None:
        self.recoverers[recoverer.station_name] = recoverer

    # ------------------------------------------------------------------
    def elect(self) -> Recoverer:
        """The live follower with the highest applied LSN."""
        candidates = [
            r for r in self.recoverers.values()
            if not self.network.is_down(r.station_name)
        ]
        if not candidates:
            raise RuntimeError("no live follower to promote")
        return max(candidates, key=lambda r: r.applied_lsn)

    def promote(
        self,
        *,
        snapshot_fn: Callable[[], None] | None = None,
        batch_frames: int | None = None,
    ) -> FailoverReport:
        """Promote the best follower and retarget the survivors.

        Returns the new-primary report; ``self.shipper`` is replaced by
        the promoted shipper.  The old primary is *not* revived here —
        see :meth:`rejoin_old_primary`.
        """
        assert self.shipper is not None, "no primary registered"
        old = self.shipper
        winner = self.elect()
        candidate_lsns = {
            name: r.applied_lsn for name, r in self.recoverers.items()
        }
        old.close()
        new_epoch = max(old.epoch, winner.epoch) + 1
        db, journal = winner.promote()
        # Snapshot to open the new epoch: checkpoints the journal at the
        # promotion LSN, giving later subscribers a resync anchor.
        db.snapshot(str(winner.snapshot_path))
        promoted_lsn = journal.last_lsn
        del self.recoverers[winner.station_name]
        shipper = WalShipper(
            self.network, winner.station_name, journal,
            snapshot_path=winner.snapshot_path,
            snapshot_fn=snapshot_fn
            or (lambda: db.snapshot(str(winner.snapshot_path))),
            epoch=new_epoch,
            **({"batch_frames": batch_frames} if batch_frames else {}),
        )
        self.shipper = shipper
        report = FailoverReport(
            old_primary=old.station_name,
            new_primary=winner.station_name,
            promoted_lsn=promoted_lsn,
            epoch=new_epoch,
            candidate_lsns=candidate_lsns,
        )
        for survivor in list(self.recoverers.values()):
            if self.network.is_down(survivor.station_name):
                continue
            survivor.retarget(winner.station_name, epoch=new_epoch)
            report.retargeted.append(survivor.station_name)
        self.reports.append(report)
        if OBS.enabled and OBS.registry is not None:
            OBS.registry.counter("replication.promotions").inc()
        return report

    # ------------------------------------------------------------------
    def rejoin_old_primary(
        self,
        report: FailoverReport,
        recoverer_factory: Callable[[], Recoverer],
        *,
        recovery_manager: "RecoveryManager | None" = None,
    ) -> Recoverer:
        """Bring the deposed primary back as a follower of the winner.

        ``recoverer_factory`` builds the Recoverer over the old
        primary's data directory (station and target epoch come from
        ``report``).  With a :class:`~repro.fault.recovery
        .RecoveryManager` the station is revived through the standard
        rejoin path (membership and all); otherwise it is simply
        flipped back up.
        """
        old = report.old_primary
        if recovery_manager is not None:
            recovery_manager.rejoin(old)
        elif self.network.is_down(old):
            self.network.set_down(old, False)
        recoverer = recoverer_factory()
        recoverer.primary_name = report.new_primary
        recoverer.epoch = max(recoverer.epoch, report.epoch)
        recoverer.start()
        self.add_follower(recoverer)
        return recoverer

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Election state plus promotion history."""
        return {
            "primary": (
                self.shipper.station_name if self.shipper else None
            ),
            "followers": {
                name: {
                    "applied_lsn": r.applied_lsn,
                    "stage": r.stage.value,
                    "caught_up": r.stage is RecoveryStage.CAUGHT_UP,
                }
                for name, r in self.recoverers.items()
            },
            "promotions": len(self.reports),
        }
