"""The annotation daemon stand-in.

The paper's "instruction annotation editor, written as a Java-based
daemon ... allows an individual instructor to draw lines, text, and
simple graphic objects on the top of a Web page.  Different instructors
can use the same virtual course but different annotations."

:mod:`repro.annotations.model` defines the drawing primitives and the
serializable annotation document; :mod:`repro.annotations.playback`
replays a document's timed event stream (the "annotation playback"
sub-system transmitted to student workstations).
"""

from repro.annotations.model import (
    AnnotationDocument,
    AnnotationEvent,
    Line,
    Point,
    Shape,
    ShapeKind,
    TextNote,
)
from repro.annotations.playback import AnnotationPlayer, PlaybackFrame
from repro.annotations.live import LiveAnnotationSession, StrokeDelivery

__all__ = [
    "LiveAnnotationSession",
    "StrokeDelivery",
    "AnnotationDocument",
    "AnnotationEvent",
    "Line",
    "Point",
    "Shape",
    "ShapeKind",
    "TextNote",
    "AnnotationPlayer",
    "PlaybackFrame",
]
