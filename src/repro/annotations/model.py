"""Annotation drawing primitives and the serializable document.

An annotation is an ordered, timed stream of draw events over a Web
page: lines, text notes, and simple shapes — exactly the vocabulary the
paper gives the Java annotation daemon.  Documents serialize to JSON so
they can live as annotation files in the document layer
(:class:`~repro.storage.files.DocumentFile` with
``FileKind.ANNOTATION``).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Any, Union

from repro.util.validation import check_non_negative

__all__ = [
    "Point",
    "Line",
    "TextNote",
    "ShapeKind",
    "Shape",
    "AnnotationEvent",
    "AnnotationDocument",
]


@dataclass(frozen=True, slots=True)
class Point:
    """A page coordinate (CSS-pixel space, origin top-left)."""

    x: float
    y: float

    def as_json(self) -> list[float]:
        return [self.x, self.y]

    @classmethod
    def from_json(cls, payload: list[float]) -> "Point":
        return cls(float(payload[0]), float(payload[1]))


@dataclass(frozen=True, slots=True)
class Line:
    """A straight stroke between two points."""

    start: Point
    end: Point
    color: str = "#ff0000"
    width: float = 2.0

    def as_json(self) -> dict[str, Any]:
        return {
            "type": "line",
            "start": self.start.as_json(),
            "end": self.end.as_json(),
            "color": self.color,
            "width": self.width,
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "Line":
        return cls(
            start=Point.from_json(payload["start"]),
            end=Point.from_json(payload["end"]),
            color=payload.get("color", "#ff0000"),
            width=float(payload.get("width", 2.0)),
        )


@dataclass(frozen=True, slots=True)
class TextNote:
    """A text label anchored at a point."""

    anchor: Point
    text: str
    color: str = "#000000"
    font_size: float = 12.0

    def as_json(self) -> dict[str, Any]:
        return {
            "type": "text",
            "anchor": self.anchor.as_json(),
            "text": self.text,
            "color": self.color,
            "font_size": self.font_size,
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "TextNote":
        return cls(
            anchor=Point.from_json(payload["anchor"]),
            text=payload["text"],
            color=payload.get("color", "#000000"),
            font_size=float(payload.get("font_size", 12.0)),
        )


class ShapeKind(enum.Enum):
    """The simple graphic-object shapes the annotation daemon offers."""

    RECTANGLE = "rectangle"
    ELLIPSE = "ellipse"
    ARROW = "arrow"


@dataclass(frozen=True, slots=True)
class Shape:
    """A simple graphic object spanning a bounding box."""

    kind: ShapeKind
    top_left: Point
    bottom_right: Point
    color: str = "#0000ff"
    filled: bool = False

    def as_json(self) -> dict[str, Any]:
        return {
            "type": "shape",
            "kind": self.kind.value,
            "top_left": self.top_left.as_json(),
            "bottom_right": self.bottom_right.as_json(),
            "color": self.color,
            "filled": self.filled,
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "Shape":
        return cls(
            kind=ShapeKind(payload["kind"]),
            top_left=Point.from_json(payload["top_left"]),
            bottom_right=Point.from_json(payload["bottom_right"]),
            color=payload.get("color", "#0000ff"),
            filled=bool(payload.get("filled", False)),
        )


Primitive = Union[Line, TextNote, Shape]

_PRIMITIVE_DECODERS = {
    "line": Line.from_json,
    "text": TextNote.from_json,
    "shape": Shape.from_json,
}


@dataclass(frozen=True, slots=True)
class AnnotationEvent:
    """One timed draw action: at ``time`` seconds, draw ``primitive``."""

    time: float
    primitive: Primitive

    def __post_init__(self) -> None:
        check_non_negative(self.time, "time")

    def as_json(self) -> dict[str, Any]:
        return {"time": self.time, "primitive": self.primitive.as_json()}

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "AnnotationEvent":
        primitive = payload["primitive"]
        decoder = _PRIMITIVE_DECODERS[primitive["type"]]
        return cls(time=float(payload["time"]), primitive=decoder(primitive))


@dataclass
class AnnotationDocument:
    """A complete annotation overlay for one Web page.

    Events are kept time-sorted; ``record`` appends at or after the
    current end (an instructor annotates forward in time).
    """

    name: str
    author: str
    page_url: str
    events: list[AnnotationEvent] | None = None

    def __post_init__(self) -> None:
        if self.events is None:
            self.events = []
        else:
            self.events = sorted(self.events, key=lambda e: e.time)

    def record(self, time: float, primitive: Primitive) -> AnnotationEvent:
        """Append a draw event at ``time`` (>= the last event's time)."""
        if self.events and time < self.events[-1].time:
            raise ValueError(
                f"events must be recorded in time order: {time} < "
                f"{self.events[-1].time}"
            )
        event = AnnotationEvent(time=time, primitive=primitive)
        self.events.append(event)
        return event

    @property
    def duration(self) -> float:
        return self.events[-1].time if self.events else 0.0

    def __len__(self) -> int:
        return len(self.events)

    # -- serialization -----------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "name": self.name,
                "author": self.author,
                "page_url": self.page_url,
                "events": [event.as_json() for event in self.events],
            },
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, payload: str) -> "AnnotationDocument":
        data = json.loads(payload)
        return cls(
            name=data["name"],
            author=data["author"],
            page_url=data["page_url"],
            events=[AnnotationEvent.from_json(e) for e in data["events"]],
        )
