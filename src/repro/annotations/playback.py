"""Timed playback of annotation documents.

The student-side "annotation playback" daemon: given an
:class:`~repro.annotations.model.AnnotationDocument`, the player
reconstructs the canvas state at any time, steps through frames, and
supports playback-rate scaling (a 2x review of a lecture's annotations).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.annotations.model import AnnotationDocument, AnnotationEvent, Primitive
from repro.util.validation import check_positive

__all__ = ["PlaybackFrame", "AnnotationPlayer"]


@dataclass(frozen=True, slots=True)
class PlaybackFrame:
    """The canvas at one playback instant."""

    time: float
    visible: tuple[Primitive, ...]

    def __len__(self) -> int:
        return len(self.visible)


class AnnotationPlayer:
    """Replays one annotation document."""

    def __init__(self, document: AnnotationDocument, rate: float = 1.0) -> None:
        check_positive(rate, "rate")
        self.document = document
        self.rate = rate
        self._cursor = 0  # index of the next event to reveal
        self.position = 0.0  # document-time position

    @property
    def finished(self) -> bool:
        return self._cursor >= len(self.document.events)

    @property
    def wall_duration(self) -> float:
        """Wall-clock seconds a full playback takes at this rate."""
        return self.document.duration / self.rate

    def seek(self, time: float) -> PlaybackFrame:
        """Jump to document time ``time``; returns the canvas there."""
        self.position = max(0.0, time)
        self._cursor = 0
        while (
            self._cursor < len(self.document.events)
            and self.document.events[self._cursor].time <= self.position
        ):
            self._cursor += 1
        return self.frame()

    def advance(self, wall_seconds: float) -> list[AnnotationEvent]:
        """Play forward ``wall_seconds`` of wall time; returns the events
        newly revealed (rate-scaled)."""
        if wall_seconds < 0:
            raise ValueError("cannot advance backwards; use seek()")
        self.position += wall_seconds * self.rate
        revealed: list[AnnotationEvent] = []
        while (
            self._cursor < len(self.document.events)
            and self.document.events[self._cursor].time <= self.position
        ):
            revealed.append(self.document.events[self._cursor])
            self._cursor += 1
        return revealed

    def frame(self) -> PlaybackFrame:
        """The canvas (all revealed primitives) at the current position."""
        return PlaybackFrame(
            time=self.position,
            visible=tuple(
                event.primitive
                for event in self.document.events[: self._cursor]
            ),
        )

    def frames(self, step_s: float) -> list[PlaybackFrame]:
        """Sample the whole playback every ``step_s`` document-seconds."""
        check_positive(step_s, "step_s")
        saved_cursor, saved_position = self._cursor, self.position
        frames: list[PlaybackFrame] = []
        t = 0.0
        while True:
            frames.append(self.seek(t))
            if t >= self.document.duration:
                break
            t += step_s
        self._cursor, self.position = saved_cursor, saved_position
        return frames
