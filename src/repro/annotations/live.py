"""Live annotation sessions: instructor strokes stream to the class.

During a live lecture the paper's annotation daemon lets the instructor
"draw lines, text, and simple graphic objects on the top of a Web
page"; students watching remotely need each stroke as it happens.  A
:class:`LiveAnnotationSession` fans every draw event down the m-ary
tree (strokes are tiny control messages, so the same tree that carries
lectures carries them with negligible load), and each student station
accumulates a replica :class:`~repro.annotations.model.AnnotationDocument`
that is byte-identical to the instructor's when the session closes —
ready for the existing playback machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.annotations.model import AnnotationDocument, AnnotationEvent, Primitive
from repro.distribution.mtree import MAryTree
from repro.net.messages import Message
from repro.net.station import Station
from repro.net.transport import Network

__all__ = ["StrokeDelivery", "LiveAnnotationSession"]

STROKE_KIND = "annotation.stroke"
STROKE_BYTES = 200
_STATE_KEY = "live_annotations"


@dataclass(frozen=True, slots=True)
class StrokeDelivery:
    """One stroke landing on one student station."""

    station: str
    event_time: float  # document time of the stroke
    drawn_at: float  # sim time the instructor drew it
    arrived_at: float  # sim time it reached this station

    @property
    def lag(self) -> float:
        return self.arrived_at - self.drawn_at


class LiveAnnotationSession:
    """One live overlay, streamed from the tree root."""

    def __init__(
        self,
        network: Network,
        tree: MAryTree,
        *,
        session_id: str,
        author: str,
        page_url: str,
    ) -> None:
        self.network = network
        self.tree = tree
        self.session_id = session_id
        self.instructor_station = tree.name_of(1)
        self.document = AnnotationDocument(session_id, author, page_url)
        self.started_at = network.sim.now
        self.deliveries: list[StrokeDelivery] = []
        self.closed = False
        for name in tree.names:
            station = network.station(name)
            # One dispatcher per station; sessions register themselves in
            # the station-local registry so several live overlays coexist.
            if not station.handles(STROKE_KIND):
                station.on(STROKE_KIND, _dispatch_stroke)
            station.state.setdefault("live_sessions", {})[session_id] = self
            if name != self.instructor_station:
                self._replica(station)[session_id] = AnnotationDocument(
                    session_id, author, page_url
                )

    # ------------------------------------------------------------------
    # Instructor side
    # ------------------------------------------------------------------
    def draw(self, primitive: Primitive) -> AnnotationEvent:
        """Record a stroke now and stream it to the class."""
        if self.closed:
            raise RuntimeError(f"session {self.session_id!r} is closed")
        event_time = self.network.sim.now - self.started_at
        event = self.document.record(event_time, primitive)
        payload = {
            "session_id": self.session_id,
            "event": event,
            "drawn_at": self.network.sim.now,
        }
        for child in self.tree.children_names(self.instructor_station):
            self.network.send(
                self.instructor_station, child, STROKE_KIND, payload,
                STROKE_BYTES,
            )
        return event

    def close(self) -> AnnotationDocument:
        """End the session; returns the authoritative document."""
        self.closed = True
        return self.document

    # ------------------------------------------------------------------
    # Student side
    # ------------------------------------------------------------------
    def _on_stroke(self, station: Station, message: Message) -> None:
        payload = message.payload
        event: AnnotationEvent = payload["event"]
        replica = self._replica(station).get(self.session_id)
        if replica is not None:
            replica.events.append(event)
            self.deliveries.append(
                StrokeDelivery(
                    station=station.name,
                    event_time=event.time,
                    drawn_at=payload["drawn_at"],
                    arrived_at=self.network.sim.now,
                )
            )
        for child in self.tree.children_names(station.name):
            self.network.send(
                station.name, child, STROKE_KIND, payload, STROKE_BYTES
            )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def replica_at(self, station_name: str) -> AnnotationDocument:
        station = self.network.station(station_name)
        try:
            return self._replica(station)[self.session_id]
        except KeyError:
            raise LookupError(
                f"station {station_name!r} has no replica of session "
                f"{self.session_id!r}"
            ) from None

    def replicas_consistent(self) -> bool:
        """Every student replica matches the instructor's document."""
        return all(
            self.replica_at(name).events == self.document.events
            for name in self.tree.names
            if name != self.instructor_station
        )

    def mean_lag(self) -> float:
        if not self.deliveries:
            return 0.0
        return sum(d.lag for d in self.deliveries) / len(self.deliveries)

    def max_lag(self) -> float:
        return max((d.lag for d in self.deliveries), default=0.0)

    @staticmethod
    def _replica(station: Station) -> dict[str, AnnotationDocument]:
        return station.state.setdefault(_STATE_KEY, {})


def _dispatch_stroke(station: Station, message: Message) -> None:
    """Route a stroke to the owning session's handler (shared handler:
    one per station, any number of live sessions)."""
    session = station.state.get("live_sessions", {}).get(
        message.payload["session_id"]
    )
    if session is not None:
        session._on_stroke(station, message)
