"""Awareness and group-discussion tools.

The paper's *Awareness Criterion* (§1): "Since instructors and students
are separated spatially, they are sometimes hard to 'feel' the existence
of each other.  A virtual university supporting environment needs to
provide reasonable communication tools such that awareness is realized."
Its architecture sends student workstations "sub-systems ... to allow
group discussions".

* :mod:`repro.collab.presence` — the awareness daemon: heartbeat-based
  presence tracking over the simulated network, with per-course rosters
  of who is "in the room".
* :mod:`repro.collab.discussion` — a course discussion board: threaded
  messages fanned out to present members through the network.
"""

from repro.collab.presence import PresenceDaemon, PresenceInfo
from repro.collab.discussion import DiscussionBoard, Post, Thread

__all__ = [
    "PresenceDaemon",
    "PresenceInfo",
    "DiscussionBoard",
    "Post",
    "Thread",
]
