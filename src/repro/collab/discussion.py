"""Course discussion boards with live fan-out.

The group-discussion sub-system of the paper's student workstation: a
threaded board per course, hosted on the coordinator station.  Posting
sends the message to the coordinator; the coordinator stores it and
fans it out to every member currently *present* (per the awareness
daemon), so discussion traffic follows real attendance.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.collab.presence import PresenceDaemon
from repro.net.messages import Message
from repro.net.station import Station
from repro.net.transport import Network

__all__ = ["Post", "Thread", "DiscussionBoard"]

POST_KIND = "discussion.post"
DELIVER_KIND = "discussion.deliver"

_post_ids = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Post:
    """One discussion message."""

    post_id: int
    course: str
    thread_id: int
    author: str
    body: str
    posted_at: float

    @property
    def wire_bytes(self) -> int:
        return 256 + len(self.body.encode("utf-8"))


@dataclass
class Thread:
    """One topic thread within a course board."""

    thread_id: int
    course: str
    title: str
    posts: list[Post] = field(default_factory=list)

    @property
    def last_activity(self) -> float:
        return self.posts[-1].posted_at if self.posts else 0.0

    def __len__(self) -> int:
        return len(self.posts)


class DiscussionBoard:
    """Coordinator-hosted threaded boards with presence-driven fan-out."""

    def __init__(self, network: Network, presence: PresenceDaemon) -> None:
        self.network = network
        self.presence = presence
        self.coordinator = presence.coordinator
        self._threads: dict[int, Thread] = {}
        self._thread_counter = itertools.count(1)
        #: station -> posts delivered live to it
        self.deliveries: dict[str, list[Post]] = {}
        self.posts_stored = 0
        station = network.station(self.coordinator)
        station.on(POST_KIND, self._on_post)
        self._install_receivers()

    def _install_receivers(self) -> None:
        for station in self.network.stations():
            if station.name != self.coordinator and not station.handles(
                DELIVER_KIND
            ):
                station.on(DELIVER_KIND, self._on_deliver)

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def create_thread(self, course: str, title: str) -> Thread:
        """Open a topic (coordinator-local operation)."""
        thread = Thread(
            thread_id=next(self._thread_counter), course=course, title=title
        )
        self._threads[thread.thread_id] = thread
        return thread

    def post(
        self, author: str, station_name: str, thread_id: int, body: str
    ) -> None:
        """Send a post from a member station to the board."""
        if thread_id not in self._threads:
            raise LookupError(f"unknown thread {thread_id}")
        size = 256 + len(body.encode("utf-8"))
        self.network.send(
            station_name,
            self.coordinator,
            POST_KIND,
            {"author": author, "thread_id": thread_id, "body": body},
            size,
        )

    # ------------------------------------------------------------------
    # Coordinator side
    # ------------------------------------------------------------------
    def _on_post(self, _station: Station, message: Message) -> None:
        payload = message.payload
        thread = self._threads.get(payload["thread_id"])
        if thread is None:
            return  # thread was deleted while the post was in flight
        post = Post(
            post_id=next(_post_ids),
            course=thread.course,
            thread_id=thread.thread_id,
            author=payload["author"],
            body=payload["body"],
            posted_at=self.network.sim.now,
        )
        thread.posts.append(post)
        self.posts_stored += 1
        # Fan out to everyone currently present in the course, except
        # the author's own station (it already has the post).
        for info in self.presence.present(thread.course):
            if info.station == message.src:
                continue
            self.network.send(
                self.coordinator,
                info.station,
                DELIVER_KIND,
                post,
                post.wire_bytes,
            )

    def _on_deliver(self, station: Station, message: Message) -> None:
        self.deliveries.setdefault(station.name, []).append(message.payload)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def thread(self, thread_id: int) -> Thread:
        try:
            return self._threads[thread_id]
        except KeyError:
            raise LookupError(f"unknown thread {thread_id}") from None

    def threads_in(self, course: str) -> list[Thread]:
        return sorted(
            (t for t in self._threads.values() if t.course == course),
            key=lambda t: t.thread_id,
        )

    def delivered_to(self, station_name: str) -> list[Post]:
        return list(self.deliveries.get(station_name, ()))
