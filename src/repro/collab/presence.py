"""The awareness daemon: who is present in which virtual classroom.

Every participating station runs a presence daemon that heartbeats to a
coordinator station (the class administrator's workstation in the
paper's architecture).  The coordinator ages entries out after a missed-
heartbeat timeout, so the roster reflects *live* presence — the paper's
"feel the existence of each other".

All timing is simulator virtual time; heartbeats are small control
messages charged to the link model like any other traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.messages import Message
from repro.net.station import Station
from repro.net.transport import Network
from repro.util.validation import check_positive

__all__ = ["PresenceInfo", "PresenceDaemon"]

HEARTBEAT_KIND = "presence.heartbeat"
LEAVE_KIND = "presence.leave"
HEARTBEAT_BYTES = 128


@dataclass(frozen=True, slots=True)
class PresenceInfo:
    """One live roster entry on the coordinator."""

    user: str
    station: str
    course: str
    last_seen: float


class PresenceDaemon:
    """Coordinator-side presence tracking plus member-side heartbeats.

    One instance manages one coordinator station; any number of member
    stations announce through it.  ``timeout_s`` is the liveness window:
    a member not heard from for longer is dropped from rosters.
    """

    def __init__(
        self,
        network: Network,
        coordinator: str,
        *,
        heartbeat_interval_s: float = 30.0,
        timeout_s: float = 90.0,
    ) -> None:
        check_positive(heartbeat_interval_s, "heartbeat_interval_s")
        check_positive(timeout_s, "timeout_s")
        if timeout_s <= heartbeat_interval_s:
            raise ValueError(
                "timeout_s must exceed heartbeat_interval_s, otherwise "
                "every member flaps between beats"
            )
        self.network = network
        self.coordinator = coordinator
        self.heartbeat_interval_s = heartbeat_interval_s
        self.timeout_s = timeout_s
        #: (user) -> PresenceInfo
        self._roster: dict[str, PresenceInfo] = {}
        #: users with an active heartbeat loop
        self._active: set[str] = set()
        self.heartbeats_received = 0
        station = network.station(coordinator)
        station.on(HEARTBEAT_KIND, self._on_heartbeat)
        station.on(LEAVE_KIND, self._on_leave)

    # ------------------------------------------------------------------
    # Member side
    # ------------------------------------------------------------------
    def join(self, user: str, station_name: str, course: str) -> None:
        """Start ``user``'s heartbeat loop from ``station_name``."""
        if user in self._active:
            raise ValueError(f"user {user!r} already has a presence loop")
        self._active.add(user)
        self._send_heartbeat(user, station_name, course)

    def leave(self, user: str, station_name: str) -> None:
        """Stop heartbeating and notify the coordinator."""
        if user not in self._active:
            return
        self._active.discard(user)
        self.network.send(
            station_name,
            self.coordinator,
            LEAVE_KIND,
            {"user": user},
            HEARTBEAT_BYTES,
        )

    def _send_heartbeat(self, user: str, station_name: str, course: str) -> None:
        if user not in self._active:
            return  # left while a beat was scheduled
        self.network.send(
            station_name,
            self.coordinator,
            HEARTBEAT_KIND,
            {"user": user, "course": course},
            HEARTBEAT_BYTES,
        )
        self.network.sim.schedule(
            self.heartbeat_interval_s,
            self._send_heartbeat,
            user,
            station_name,
            course,
        )

    # ------------------------------------------------------------------
    # Coordinator side
    # ------------------------------------------------------------------
    def _on_heartbeat(self, _station: Station, message: Message) -> None:
        payload = message.payload
        self.heartbeats_received += 1
        self._roster[payload["user"]] = PresenceInfo(
            user=payload["user"],
            station=message.src,
            course=payload["course"],
            last_seen=self.network.sim.now,
        )

    def _on_leave(self, _station: Station, message: Message) -> None:
        self._roster.pop(message.payload["user"], None)

    def _expire(self) -> None:
        horizon = self.network.sim.now - self.timeout_s
        for user in [
            u for u, info in self._roster.items() if info.last_seen < horizon
        ]:
            del self._roster[user]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def present(self, course: str | None = None) -> list[PresenceInfo]:
        """Live members (optionally filtered to one course)."""
        self._expire()
        entries = [
            info
            for info in self._roster.values()
            if course is None or info.course == course
        ]
        return sorted(entries, key=lambda info: info.user)

    def is_present(self, user: str) -> bool:
        self._expire()
        return user in self._roster

    def station_of(self, user: str) -> str | None:
        """Where a live user sits (for targeted fan-out)."""
        self._expire()
        info = self._roster.get(user)
        return None if info is None else info.station
