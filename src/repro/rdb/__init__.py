"""A small in-memory relational database engine.

This package is the stand-in for the "off-the-rack relational database
system" (MS SQL Server in the paper) that the Web document database of
Shih, Ma and Huang (ICPP 1999) layers its object hierarchy on.  It
provides everything the paper's design actually exercises:

* typed columns and schemas (:mod:`repro.rdb.types`),
* heap tables with primary keys (:mod:`repro.rdb.table`),
* hash and sorted secondary indexes (:mod:`repro.rdb.index`),
* a composable predicate language (:mod:`repro.rdb.predicate`),
* select / insert / update / delete with joins (:mod:`repro.rdb.query`),
* primary-key / unique / foreign-key / not-null constraints with
  RESTRICT, CASCADE and SET NULL actions (:mod:`repro.rdb.constraints`),
* undo-log transactions with savepoints (:mod:`repro.rdb.transaction`),
* row-level triggers (:mod:`repro.rdb.triggers`) — the hook used by the
  referential-integrity alert diagram in :mod:`repro.core.integrity`,
* a write-ahead journal and snapshot recovery (:mod:`repro.rdb.wal`),
* and the :class:`~repro.rdb.engine.Database` facade binding them.

The implementation favours clarity over raw speed, per the optimization
guide's "make it work, make it right" ordering; the few hot paths
(index maintenance, predicate evaluation) avoid needless allocation.
"""

from repro.rdb.types import Column, ColumnType, Schema
from repro.rdb.compile import (
    batch_filter,
    compile_mode,
    compiled_exec_enabled,
    compiled_predicate,
    compiled_source,
    predicate_fn,
)
from repro.rdb.predicate import Expr, col, lit, predicate_cache_key
from repro.rdb.query import SelectPlan
from repro.rdb.stats import IndexStatistics, TableStatistics
from repro.rdb.constraints import Action, ForeignKey
from repro.rdb.engine import Database
from repro.rdb.errors import (
    CheckError,
    ConstraintError,
    DuplicateKeyError,
    ForeignKeyError,
    JournalCorruptError,
    NotNullError,
    RdbError,
    SchemaError,
    TransactionError,
    UnknownColumnError,
    UnknownTableError,
)
from repro.rdb.wal import (
    Journal,
    JournalTailer,
    RecoveryStats,
    SyncPolicy,
    WalFrame,
    parse_frame,
    read_frames,
)
from repro.rdb.triggers import TriggerEvent, TriggerTiming

__all__ = [
    "Column",
    "ColumnType",
    "Schema",
    "Expr",
    "col",
    "lit",
    "predicate_cache_key",
    "batch_filter",
    "compile_mode",
    "compiled_exec_enabled",
    "compiled_predicate",
    "compiled_source",
    "predicate_fn",
    "SelectPlan",
    "IndexStatistics",
    "TableStatistics",
    "Action",
    "ForeignKey",
    "Database",
    "RdbError",
    "SchemaError",
    "JournalCorruptError",
    "Journal",
    "JournalTailer",
    "RecoveryStats",
    "SyncPolicy",
    "WalFrame",
    "parse_frame",
    "read_frames",
    "CheckError",
    "ConstraintError",
    "DuplicateKeyError",
    "ForeignKeyError",
    "NotNullError",
    "TransactionError",
    "UnknownColumnError",
    "UnknownTableError",
    "TriggerEvent",
    "TriggerTiming",
]
