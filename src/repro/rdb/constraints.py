"""Integrity constraints: primary key, unique, not-null, foreign keys.

The checker lives outside :class:`~repro.rdb.table.Table` because
foreign-key validation needs cross-table visibility; the engine calls it
before applying any mutation so tables never hold constraint-violating
rows, and referential actions (RESTRICT / CASCADE / SET NULL) are
resolved here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.rdb.errors import (
    CheckError,
    DuplicateKeyError,
    ForeignKeyError,
    NotNullError,
    SchemaError,
)

if TYPE_CHECKING:
    from repro.rdb.table import Table

__all__ = ["Action", "ForeignKey", "ConstraintChecker"]


class Action(enum.Enum):
    """Referential action when a referenced parent row is deleted/updated."""

    RESTRICT = "restrict"
    CASCADE = "cascade"
    SET_NULL = "set_null"


@dataclass(frozen=True, slots=True)
class ForeignKey:
    """A foreign-key constraint from child columns to parent columns.

    ``columns`` are columns of the declaring (child) table; they must
    match ``parent_columns`` of ``parent_table`` (which must be that
    table's primary key or a declared unique set so lookups are exact).
    A child row whose FK columns are all ``None`` is exempt (SQL MATCH
    SIMPLE for the all-null case; partial nulls are rejected).
    """

    columns: tuple[str, ...]
    parent_table: str
    parent_columns: tuple[str, ...]
    on_delete: Action = Action.RESTRICT
    on_update: Action = Action.RESTRICT

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError("foreign key needs at least one column")
        if len(self.columns) != len(self.parent_columns):
            raise SchemaError(
                "foreign key column count mismatch: "
                f"{self.columns!r} vs {self.parent_columns!r}"
            )


class ConstraintChecker:
    """Validates mutations against all declared constraints.

    The engine owns one checker; ``tables`` is the live table registry so
    the checker always sees current data.
    """

    def __init__(self, tables: dict[str, "Table"]) -> None:
        self._tables = tables

    # -- helpers ------------------------------------------------------------
    def _parent_has_key(self, fk: ForeignKey, key: tuple) -> bool:
        parent = self._tables.get(fk.parent_table)
        if parent is None:
            raise ForeignKeyError(
                f"foreign key references missing table {fk.parent_table!r}"
            )
        index = parent.indexes.hash_index_on(fk.parent_columns)
        if index is not None:
            return index.count(key) > 0
        # Fall back to a scan; only reachable if the parent key columns
        # were not PK/unique (validated at CREATE TABLE, so this is a
        # safety net rather than an expected path).
        return any(
            tuple(row[c] for c in fk.parent_columns) == key
            for row in parent.rows()
        )

    @staticmethod
    def _fk_key(fk: ForeignKey, row: dict[str, Any]) -> tuple | None:
        """The child key tuple, or ``None`` when exempt (all-null)."""
        key = tuple(row[c] for c in fk.columns)
        nulls = sum(1 for v in key if v is None)
        if nulls == len(key):
            return None
        if nulls:
            raise ForeignKeyError(
                f"foreign key {fk.columns!r} is partially null: {key!r}"
            )
        return key

    # -- row-level checks ----------------------------------------------------
    def check_not_null(self, table: "Table", row: dict[str, Any]) -> None:
        for column in table.schema.columns:
            if not column.nullable and row[column.name] is None:
                raise NotNullError(table.schema.name, column.name)

    def check_checks(self, table: "Table", row: dict[str, Any]) -> None:
        """Column CHECK constraints (null values are exempt, as in SQL)."""
        for column in table.schema.columns:
            if column.check is None:
                continue
            value = row[column.name]
            if value is not None and not column.check(value):
                raise CheckError(
                    table.schema.name, column.name,
                    column.constraint_name, value,
                )

    def check_unique(
        self, table: "Table", row: dict[str, Any], *, ignore_rowid: int | None = None
    ) -> None:
        """PK and unique-set enforcement (null components skip unique,
        mirroring SQL where NULL never equals NULL)."""
        schema = table.schema
        groups = (schema.primary_key, *schema.unique)
        for columns in groups:
            key = tuple(row[c] for c in columns)
            if columns != schema.primary_key and any(v is None for v in key):
                continue
            index = table.indexes.hash_index_on(columns)
            assert index is not None, f"missing key index on {columns!r}"
            holders = index.lookup(key)
            if ignore_rowid is not None:
                holders -= {ignore_rowid}
            if holders:
                raise DuplicateKeyError(schema.name, columns, key)

    def check_foreign_keys(self, table: "Table", row: dict[str, Any]) -> None:
        for fk in table.schema.foreign_keys:
            key = self._fk_key(fk, row)
            if key is None:
                continue
            if not self._parent_has_key(fk, key):
                raise ForeignKeyError(
                    f"table {table.schema.name!r}: foreign key "
                    f"{fk.columns!r} -> {fk.parent_table!r}"
                    f"{fk.parent_columns!r} has no parent row for {key!r}"
                )

    def check_insert(self, table: "Table", row: dict[str, Any]) -> None:
        self.check_not_null(table, row)
        self.check_checks(table, row)
        self.check_unique(table, row)
        self.check_foreign_keys(table, row)

    def check_update(
        self, table: "Table", rowid: int, new_row: dict[str, Any]
    ) -> None:
        self.check_not_null(table, new_row)
        self.check_checks(table, new_row)
        self.check_unique(table, new_row, ignore_rowid=rowid)
        self.check_foreign_keys(table, new_row)

    # -- referential actions --------------------------------------------------
    def referencing_children(
        self, parent_name: str, parent_row: dict[str, Any]
    ) -> list[tuple["Table", ForeignKey, int]]:
        """All (child_table, fk, child_rowid) referencing ``parent_row``."""
        hits: list[tuple["Table", ForeignKey, int]] = []
        for child in self._tables.values():
            for fk in child.schema.foreign_keys:
                if fk.parent_table != parent_name:
                    continue
                key = tuple(parent_row[c] for c in fk.parent_columns)
                index = child.indexes.hash_index_on(fk.columns)
                if index is not None:
                    rowids = index.lookup(key)
                else:  # pragma: no cover - FKs always get an index
                    rowids = frozenset(
                        rid
                        for rid, row in child.items()
                        if tuple(row[c] for c in fk.columns) == key
                    )
                hits.extend((child, fk, rid) for rid in rowids)
        return hits
