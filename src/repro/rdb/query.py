"""Query execution: filtered scans, index selection, joins, aggregates.

The planner is intentionally small: if the WHERE clause binds all columns
of some hash index through top-level equality conjuncts, probe that index
and filter the residue; otherwise scan the heap.  ORDER BY sorts the
result (a sorted index accelerates the common "range over one column"
case via :func:`range_scan`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.rdb.errors import UnknownColumnError
from repro.rdb.predicate import Expr, equality_bindings
from repro.rdb.table import Table

__all__ = ["SelectPlan", "execute_select", "range_scan", "join_rows", "aggregate"]


@dataclass(frozen=True, slots=True)
class SelectPlan:
    """How a select will run — exposed for tests and EXPLAIN-style output."""

    table: str
    access_path: str  # "index:<name>" or "scan"
    estimated_candidates: int


def plan_select(table: Table, where: Expr | None) -> tuple[SelectPlan, Iterable[int]]:
    """Choose an access path; returns (plan, candidate rowids)."""
    if where is not None:
        bindings = equality_bindings(where)
        index = table.indexes.best_hash_index(frozenset(bindings))
        if index is not None:
            key = tuple(bindings[c] for c in index.columns)
            rowids = index.lookup(key)
            plan = SelectPlan(
                table=table.schema.name,
                access_path=f"index:{index.name}",
                estimated_candidates=len(rowids),
            )
            return plan, rowids
    plan = SelectPlan(
        table=table.schema.name, access_path="scan", estimated_candidates=len(table)
    )
    return plan, [rowid for rowid, _ in table.items()]


def execute_select(
    table: Table,
    where: Expr | None = None,
    order_by: str | Sequence[str] | None = None,
    descending: bool = False,
    limit: int | None = None,
    offset: int = 0,
    columns: Sequence[str] | None = None,
    distinct: bool = False,
) -> list[dict[str, Any]]:
    """Run a select and return copied row dicts (projected if requested).

    ``distinct`` removes duplicate result rows after projection (first
    occurrence wins, before LIMIT/OFFSET are applied), matching SQL's
    SELECT DISTINCT over the projected columns.
    """
    if columns is not None:
        for name in columns:
            if not table.schema.has_column(name):
                raise UnknownColumnError(table.schema.name, name)
    _plan, rowids = plan_select(table, where)
    rows: list[dict[str, Any]] = []
    for rowid in rowids:
        row = table.get(rowid)
        if row is None:  # pragma: no cover - rowids come from live structures
            continue
        if where is None or where.eval(row):
            rows.append(row)
    if order_by is not None:
        keys = (order_by,) if isinstance(order_by, str) else tuple(order_by)
        for name in keys:
            if not table.schema.has_column(name):
                raise UnknownColumnError(table.schema.name, name)
        # None sorts first (ascending) via the (is-not-none, value) trick.
        rows.sort(
            key=lambda r: tuple((r[k] is not None, r[k]) for k in keys),
            reverse=descending,
        )
    elif descending:
        rows.reverse()
    if columns is None:
        out = [dict(row) for row in rows]
    else:
        out = [{name: row[name] for name in columns} for row in rows]
    if distinct:
        seen: set[tuple] = set()
        deduped = []
        for row in out:
            key = tuple(_hashable(row[name]) for name in sorted(row))
            if key not in seen:
                seen.add(key)
                deduped.append(row)
        out = deduped
    if offset:
        out = out[offset:]
    if limit is not None:
        out = out[:limit]
    return out


def _hashable(value: Any) -> Any:
    """Stable hashable form of a stored value (JSON columns hold lists
    and dicts, which must participate in DISTINCT)."""
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    return value


def range_scan(
    table: Table,
    column: str,
    low: Any = None,
    high: Any = None,
    *,
    include_low: bool = True,
    include_high: bool = True,
) -> list[dict[str, Any]]:
    """Range query using a sorted index when available, else a scan."""
    if not table.schema.has_column(column):
        raise UnknownColumnError(table.schema.name, column)
    index = table.indexes.sorted_index_on(column)
    if index is not None:
        return [
            dict(table.get(rowid))  # type: ignore[arg-type]
            for rowid in index.range(
                low, high, include_low=include_low, include_high=include_high
            )
        ]
    out: list[dict[str, Any]] = []
    for row in table.rows():
        value = row[column]
        if value is None:
            continue
        if low is not None and (value < low or (value == low and not include_low)):
            continue
        if high is not None and (value > high or (value == high and not include_high)):
            continue
        out.append(dict(row))
    return out


def join_rows(
    left_rows: Iterable[dict[str, Any]],
    right_rows: Iterable[dict[str, Any]],
    on: Sequence[tuple[str, str]],
    *,
    left_prefix: str = "l",
    right_prefix: str = "r",
    kind: str = "inner",
) -> list[dict[str, Any]]:
    """Hash join of two row iterables on (left_col, right_col) pairs.

    Output rows carry prefixed keys (``"<prefix>.<column>"``) so name
    collisions between the inputs are harmless.  ``kind`` is ``"inner"``
    or ``"left"`` (left-outer: unmatched left rows appear with ``None``
    right columns).
    """
    if kind not in ("inner", "left"):
        raise ValueError(f"join kind must be 'inner' or 'left', got {kind!r}")
    right_list = list(right_rows)
    buckets: dict[tuple, list[dict[str, Any]]] = {}
    for row in right_list:
        key = tuple(row[rc] for _lc, rc in on)
        buckets.setdefault(key, []).append(row)
    right_columns: set[str] = set()
    for row in right_list:
        right_columns.update(row)
    out: list[dict[str, Any]] = []
    for left in left_rows:
        key = tuple(left[lc] for lc, _rc in on)
        matches = buckets.get(key, []) if None not in key else []
        if matches:
            for right in matches:
                merged = {f"{left_prefix}.{k}": v for k, v in left.items()}
                merged.update({f"{right_prefix}.{k}": v for k, v in right.items()})
                out.append(merged)
        elif kind == "left":
            merged = {f"{left_prefix}.{k}": v for k, v in left.items()}
            merged.update({f"{right_prefix}.{k}": None for k in right_columns})
            out.append(merged)
    return out


_AGGREGATES: dict[str, Callable[[list[Any]], Any]] = {
    "count": len,
    "sum": lambda values: sum(values) if values else 0,
    "avg": lambda values: (sum(values) / len(values)) if values else None,
    "min": lambda values: min(values) if values else None,
    "max": lambda values: max(values) if values else None,
}


def aggregate(
    rows: Iterable[dict[str, Any]],
    spec: dict[str, tuple[str, str | None]],
    group_by: Sequence[str] | None = None,
) -> list[dict[str, Any]]:
    """Grouped aggregation.

    ``spec`` maps output names to ``(function, column)`` where function is
    one of count/sum/avg/min/max and column is ``None`` for ``count(*)``.
    Null column values are excluded from every aggregate except
    ``count(*)``, matching SQL.

    >>> aggregate([{"a": 1}, {"a": 3}], {"n": ("count", None), "m": ("max", "a")})
    [{'n': 2, 'm': 3}]
    """
    for out_name, (fn_name, _column) in spec.items():
        if fn_name not in _AGGREGATES:
            raise ValueError(f"unknown aggregate {fn_name!r} for {out_name!r}")
    groups: dict[tuple, list[dict[str, Any]]] = {}
    group_cols = tuple(group_by) if group_by else ()
    for row in rows:
        key = tuple(row[c] for c in group_cols)
        groups.setdefault(key, []).append(row)
    if not groups and not group_cols:
        groups[()] = []
    out: list[dict[str, Any]] = []
    for key in sorted(groups, key=lambda k: tuple((v is not None, v) for v in k)):
        bucket = groups[key]
        result: dict[str, Any] = dict(zip(group_cols, key))
        for out_name, (fn_name, column) in spec.items():
            if column is None:
                values: list[Any] = bucket
            else:
                values = [row[column] for row in bucket if row[column] is not None]
            result[out_name] = _AGGREGATES[fn_name](values)
        out.append(result)
    return out
