"""Query execution: cost-based access-path selection, joins, aggregates.

The planner is cost-based over incrementally-maintained statistics
(:mod:`repro.rdb.stats`).  For a WHERE clause it costs every access
path whose preconditions hold and picks the cheapest:

* **hash probe** — a hash index fully covered by top-level equality
  conjuncts; expected rows = ``entries / distinct_keys`` (selectivity),
  so among several candidate indexes the most selective wins;
* **sorted-range pushdown** — a top-level comparison conjunct (``<``,
  ``<=``, ``>``, ``>=``, or a BETWEEN-shaped pair) over a column with a
  sorted index probes :meth:`SortedIndex.range` instead of the heap;
* **heap scan** — always available, cost = row count; candidates are
  yielded lazily so a LIMIT-bounded select stops early.

The residual WHERE filter is always re-applied, so any access path
yielding a superset of matching rows is correct.  ORDER BY + LIMIT
streams through a bounded heap (:func:`heapq.nsmallest`/``nlargest``)
instead of sorting every matching row.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.obs.instrument import OBS
from repro.rdb.errors import UnknownColumnError
from repro.rdb.predicate import Expr, equality_bindings, range_bounds
from repro.rdb.stats import TableStatistics
from repro.rdb.table import Table

__all__ = ["SelectPlan", "execute_select", "range_scan", "join_rows", "aggregate"]


@dataclass(frozen=True, slots=True)
class SelectPlan:
    """How a select will run — exposed for tests and EXPLAIN-style output.

    ``access_path`` is ``"index:<name>"`` (hash probe or sorted-range
    pushdown) or ``"scan"``.  ``estimated_cost`` is the planner's row
    estimate for the chosen path; ``chosen_conjuncts`` are the WHERE
    conjuncts the path consumed; ``pushdown`` describes a range pushed
    into a sorted index (``None`` otherwise).
    """

    table: str
    access_path: str
    estimated_candidates: int
    estimated_cost: float = 0.0
    chosen_conjuncts: tuple[str, ...] = ()
    pushdown: str | None = None

    def describe(self) -> str:
        """One-line EXPLAIN rendering."""
        parts = [
            f"{self.table}: {self.access_path} "
            f"(~{self.estimated_candidates} rows, cost {self.estimated_cost:g})"
        ]
        if self.chosen_conjuncts:
            parts.append("using " + " AND ".join(self.chosen_conjuncts))
        if self.pushdown:
            parts.append(f"pushdown {self.pushdown}")
        return " ".join(parts)


@dataclass(slots=True)
class _Candidate:
    """One costed access path under consideration."""

    cost: float
    access_path: str
    rowids: Callable[[], Iterable[int]]
    estimated: int
    conjuncts: tuple[str, ...] = ()
    pushdown: str | None = None


def plan_select(
    table: Table, where: Expr | None
) -> tuple[SelectPlan, Iterable[int]]:
    """Choose the cheapest access path; returns (plan, candidate rowids).

    Candidate row ids are produced lazily (index probes return their
    snapshot, scans yield from the heap), so callers that stop early —
    LIMIT without ORDER BY — never touch the rest of the table.
    """
    stats = table.statistics()
    row_count = stats.row_count
    best = _Candidate(
        cost=float(row_count),
        access_path="scan",
        rowids=lambda: (rowid for rowid, _ in table.items()),
        estimated=row_count,
    )
    if where is not None:
        for candidate in _index_candidates(table, where, stats):
            # Strictly cheaper wins; on a tie an index path beats the
            # scan (it can't be worse, and EXPLAIN output stays stable
            # for tiny tables).
            if candidate.cost < best.cost or (
                candidate.cost == best.cost and best.access_path == "scan"
            ):
                best = candidate
    plan = SelectPlan(
        table=table.schema.name,
        access_path=best.access_path,
        estimated_candidates=best.estimated,
        estimated_cost=best.cost,
        chosen_conjuncts=best.conjuncts,
        pushdown=best.pushdown,
    )
    return plan, best.rowids()


def _index_candidates(
    table: Table, where: Expr, stats: "TableStatistics"
) -> Iterator[_Candidate]:
    """Cost every index-backed access path the WHERE clause enables."""
    row_count = stats.row_count
    bindings = equality_bindings(where)
    if bindings:
        bound = frozenset(bindings)
        for index in table.indexes.candidate_hash_indexes(bound):
            key = tuple(bindings[c] for c in index.columns)
            index_stats = stats.index(index.name)
            expected = index_stats.rows_per_key if index_stats else row_count
            # Exact probe counts are O(1), so sharpen the estimate; the
            # selectivity figure still breaks ties among candidates that
            # happen to probe equally (and is what EXPLAIN reports when
            # the probe is empty).
            exact = index.count(key)
            yield _Candidate(
                cost=min(expected, row_count) if exact else 0.0,
                access_path=f"index:{index.name}",
                rowids=lambda index=index, key=key: index.lookup(key),
                estimated=exact,
                conjuncts=tuple(
                    f"{c} == {bindings[c]!r}" for c in index.columns
                ),
            )
    for column, bound_spec in range_bounds(where).items():
        index = table.indexes.sorted_index_on(column)
        if index is None:
            continue
        estimated = index.estimate_range(
            bound_spec.low,
            bound_spec.high,
            include_low=bound_spec.include_low,
            include_high=bound_spec.include_high,
        )
        low_bracket = "[" if bound_spec.include_low else "("
        high_bracket = "]" if bound_spec.include_high else ")"
        yield _Candidate(
            cost=float(estimated),
            access_path=f"index:{index.name}",
            rowids=lambda index=index, b=bound_spec: index.range(
                b.low, b.high,
                include_low=b.include_low, include_high=b.include_high,
            ),
            estimated=estimated,
            conjuncts=tuple(bound_spec.conjuncts),
            pushdown=(
                f"{column} in {low_bracket}{bound_spec.low!r}, "
                f"{bound_spec.high!r}{high_bracket}"
            ),
        )


def execute_select(
    table: Table,
    where: Expr | None = None,
    order_by: str | Sequence[str] | None = None,
    descending: bool = False,
    limit: int | None = None,
    offset: int = 0,
    columns: Sequence[str] | None = None,
    distinct: bool = False,
) -> list[dict[str, Any]]:
    """Run a select and return copied row dicts (projected if requested).

    ``distinct`` removes duplicate result rows after projection (first
    occurrence wins, before LIMIT/OFFSET are applied), matching SQL's
    SELECT DISTINCT over the projected columns.
    """
    if columns is not None:
        for name in columns:
            if not table.schema.has_column(name):
                raise UnknownColumnError(table.schema.name, name)
    _plan, rowids = plan_select(table, where)
    counted: _CountingIterator | None = None
    handles: tuple | None = None
    scanned = 0
    if OBS.enabled:
        handles = _obs_handles(table.schema.name, _plan.access_path)
        handles[0].inc()
        if limit is not None and order_by is None:
            # The only lazy early-exit path: count rows actually
            # examined (a full-scan figure would overstate the work).
            counted = _CountingIterator(rowids)
            rowids = counted
        elif _plan.access_path == "scan":
            # Full consumption of the heap: the row count is exact, and
            # a per-row counting wrapper would tax every row scanned.
            scanned = _plan.estimated_candidates
        elif hasattr(rowids, "__len__"):
            scanned = len(rowids)  # type: ignore[arg-type]  # probe snapshot
        else:
            # Sorted-range pushdown yields lazily and its cardinality
            # is only estimated — count what it actually yields.
            counted = _CountingIterator(rowids)
            rowids = counted
    matching = _matching_rows(table, rowids, where)
    rows: Iterable[dict[str, Any]]
    if order_by is not None:
        keys = (order_by,) if isinstance(order_by, str) else tuple(order_by)
        for name in keys:
            if not table.schema.has_column(name):
                raise UnknownColumnError(table.schema.name, name)

        # None sorts first (ascending) via the (is-not-none, value) trick.
        def sort_key(r: dict[str, Any]) -> tuple:
            return tuple((r[k] is not None, r[k]) for k in keys)

        if limit is not None and not distinct:
            # Streaming top-k: nsmallest/nlargest are documented as
            # sorted(...)[:k] (stable on ties), so results match a full
            # sort exactly while holding only limit+offset rows.
            top = limit + offset
            if descending:
                rows = heapq.nlargest(top, matching, key=sort_key)
            else:
                rows = heapq.nsmallest(top, matching, key=sort_key)
        else:
            rows = sorted(matching, key=sort_key, reverse=descending)
    elif descending:
        reversed_rows = list(matching)
        reversed_rows.reverse()
        rows = reversed_rows
    else:
        rows = matching  # stays lazy: LIMIT stops the scan early
    out: list[dict[str, Any]] = []
    seen: set[tuple] = set()
    needed = None if limit is None else limit + offset
    for row in rows:
        projected = (
            dict(row) if columns is None
            else {name: row[name] for name in columns}
        )
        if distinct:
            key = tuple(_hashable(projected[name]) for name in sorted(projected))
            if key in seen:
                continue
            seen.add(key)
        out.append(projected)
        if needed is not None and len(out) >= needed:
            break
    if offset:
        out = out[offset:]
    if limit is not None:
        out = out[:limit]
    if handles is not None and OBS.enabled:
        handles[1].inc(counted.count if counted is not None else scanned)
        handles[2].inc(len(out))
    return out


#: (registry, {(table, path): (plan, rows_scanned, rows_returned)}) —
#: handles re-resolved whenever the active registry object changes, so
#: the steady-state enabled cost per select is three dict hits.
_OBS_HANDLES: list = [None, {}]


def _obs_handles(table_name: str, access_path: str) -> tuple:
    registry = OBS.registry
    if _OBS_HANDLES[0] is not registry:
        _OBS_HANDLES[0] = registry
        _OBS_HANDLES[1] = {}
    cache = _OBS_HANDLES[1]
    key = (table_name, access_path)
    handles = cache.get(key)
    if handles is None:
        assert registry is not None
        handles = cache[key] = (
            registry.counter("rdb.plan", table=table_name, path=access_path),
            registry.counter("rdb.rows_scanned", table=table_name),
            registry.counter("rdb.rows_returned", table=table_name),
        )
    return handles


class _CountingIterator:
    """Counts candidate rowids as the access path yields them.

    Only interposed when observability is enabled AND the select can
    stop early (LIMIT without ORDER BY), so large scans never pay a
    per-row dispatch; stays lazy, so bounded scans still stop early
    (and the count reflects rows actually examined, not the table
    size).
    """

    __slots__ = ("_it", "count")

    def __init__(self, iterable: Iterable[int]) -> None:
        self._it = iter(iterable)
        self.count = 0

    def __iter__(self) -> "_CountingIterator":
        return self

    def __next__(self) -> int:
        value = next(self._it)
        self.count += 1
        return value


def _matching_rows(
    table: Table, rowids: Iterable[int], where: Expr | None
) -> Iterator[dict[str, Any]]:
    """Lazily yield candidate rows that pass the residual filter."""
    for rowid in rowids:
        row = table.get(rowid)
        if row is None:  # pragma: no cover - rowids come from live structures
            continue
        if where is None or where.eval(row):
            yield row


def _hashable(value: Any) -> Any:
    """Stable hashable form of a stored value (JSON columns hold lists
    and dicts, which must participate in DISTINCT)."""
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    return value


def range_scan(
    table: Table,
    column: str,
    low: Any = None,
    high: Any = None,
    *,
    include_low: bool = True,
    include_high: bool = True,
) -> list[dict[str, Any]]:
    """Range query using a sorted index when available, else a scan."""
    if not table.schema.has_column(column):
        raise UnknownColumnError(table.schema.name, column)
    index = table.indexes.sorted_index_on(column)
    if index is not None:
        return [
            dict(table.get(rowid))  # type: ignore[arg-type]
            for rowid in index.range(
                low, high, include_low=include_low, include_high=include_high
            )
        ]
    out: list[dict[str, Any]] = []
    for row in table.rows():
        value = row[column]
        if value is None:
            continue
        if low is not None and (value < low or (value == low and not include_low)):
            continue
        if high is not None and (value > high or (value == high and not include_high)):
            continue
        out.append(dict(row))
    return out


def join_rows(
    left_rows: Iterable[dict[str, Any]],
    right_rows: Iterable[dict[str, Any]],
    on: Sequence[tuple[str, str]],
    *,
    left_prefix: str = "l",
    right_prefix: str = "r",
    kind: str = "inner",
) -> list[dict[str, Any]]:
    """Hash join of two row iterables on (left_col, right_col) pairs.

    Output rows carry prefixed keys (``"<prefix>.<column>"``) so name
    collisions between the inputs are harmless.  ``kind`` is ``"inner"``
    or ``"left"`` (left-outer: unmatched left rows appear with ``None``
    right columns).
    """
    if kind not in ("inner", "left"):
        raise ValueError(f"join kind must be 'inner' or 'left', got {kind!r}")
    right_list = list(right_rows)
    buckets: dict[tuple, list[dict[str, Any]]] = {}
    for row in right_list:
        key = tuple(row[rc] for _lc, rc in on)
        buckets.setdefault(key, []).append(row)
    right_columns: set[str] = set()
    for row in right_list:
        right_columns.update(row)
    out: list[dict[str, Any]] = []
    for left in left_rows:
        key = tuple(left[lc] for lc, _rc in on)
        matches = buckets.get(key, []) if None not in key else []
        if matches:
            for right in matches:
                merged = {f"{left_prefix}.{k}": v for k, v in left.items()}
                merged.update({f"{right_prefix}.{k}": v for k, v in right.items()})
                out.append(merged)
        elif kind == "left":
            merged = {f"{left_prefix}.{k}": v for k, v in left.items()}
            merged.update({f"{right_prefix}.{k}": None for k in right_columns})
            out.append(merged)
    return out


_AGGREGATES: dict[str, Callable[[list[Any]], Any]] = {
    "count": len,
    "sum": lambda values: sum(values) if values else 0,
    "avg": lambda values: (sum(values) / len(values)) if values else None,
    "min": lambda values: min(values) if values else None,
    "max": lambda values: max(values) if values else None,
}


def aggregate(
    rows: Iterable[dict[str, Any]],
    spec: dict[str, tuple[str, str | None]],
    group_by: Sequence[str] | None = None,
) -> list[dict[str, Any]]:
    """Grouped aggregation.

    ``spec`` maps output names to ``(function, column)`` where function is
    one of count/sum/avg/min/max and column is ``None`` for ``count(*)``.
    Null column values are excluded from every aggregate except
    ``count(*)``, matching SQL.

    >>> aggregate([{"a": 1}, {"a": 3}], {"n": ("count", None), "m": ("max", "a")})
    [{'n': 2, 'm': 3}]
    """
    for out_name, (fn_name, _column) in spec.items():
        if fn_name not in _AGGREGATES:
            raise ValueError(f"unknown aggregate {fn_name!r} for {out_name!r}")
    groups: dict[tuple, list[dict[str, Any]]] = {}
    group_cols = tuple(group_by) if group_by else ()
    for row in rows:
        key = tuple(row[c] for c in group_cols)
        groups.setdefault(key, []).append(row)
    if not groups and not group_cols:
        groups[()] = []
    out: list[dict[str, Any]] = []
    for key in sorted(groups, key=lambda k: tuple((v is not None, v) for v in k)):
        bucket = groups[key]
        result: dict[str, Any] = dict(zip(group_cols, key))
        for out_name, (fn_name, column) in spec.items():
            if column is None:
                values: list[Any] = bucket
            else:
                values = [row[column] for row in bucket if row[column] is not None]
            result[out_name] = _AGGREGATES[fn_name](values)
        out.append(result)
    return out
