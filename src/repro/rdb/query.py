"""Query execution: cost-based access-path selection, joins, aggregates.

The planner is cost-based over incrementally-maintained statistics
(:mod:`repro.rdb.stats`).  For a WHERE clause it costs every access
path whose preconditions hold and picks the cheapest:

* **hash probe** — a hash index fully covered by top-level equality
  conjuncts; expected rows = ``entries / distinct_keys`` (selectivity),
  so among several candidate indexes the most selective wins;
* **sorted-range pushdown** — a top-level comparison conjunct (``<``,
  ``<=``, ``>``, ``>=``, or a BETWEEN-shaped pair) over a column with a
  sorted index probes :meth:`SortedIndex.range` instead of the heap;
* **heap scan** — always available, cost = row count; candidates are
  yielded lazily so a LIMIT-bounded select stops early.

The residual WHERE filter is always re-applied, so any access path
yielding a superset of matching rows is correct.  ORDER BY + LIMIT
streams through a bounded heap (:func:`heapq.nsmallest`/``nlargest``)
instead of sorting every matching row.

Execution is **compiled and batched** (:mod:`repro.rdb.compile`): the
WHERE tree is lowered to one generated filter function per statement and
rows are pulled in batches of :data:`~repro.rdb.compile.DEFAULT_BATCH`,
so the per-row cost is the comparisons themselves rather than tree
interpretation plus generator hops.  Observability tallies per batch,
not per row.  The ``REPRO_COMPILED_EXEC=0`` kill switch restores the
interpreted per-row pipeline (batch size 1, ``Expr.eval`` per row) for
differential testing; EXPLAIN reports which mode a statement ran under.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import islice
from operator import itemgetter
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.obs.instrument import OBS
from repro.rdb.compile import DEFAULT_BATCH, batch_filter, compiled_exec_enabled
from repro.rdb.errors import UnknownColumnError
from repro.rdb.predicate import Expr, col, equality_bindings, range_bounds
from repro.rdb.stats import TableStatistics
from repro.rdb.table import Table

__all__ = [
    "SelectPlan",
    "execute_select",
    "range_scan",
    "join_rows",
    "aggregate",
    "aggregate_table",
    "matching_view",
]


@dataclass(frozen=True, slots=True)
class SelectPlan:
    """How a select will run — exposed for tests and EXPLAIN-style output.

    ``access_path`` is ``"index:<name>"`` (hash probe or sorted-range
    pushdown) or ``"scan"``.  ``estimated_cost`` is the planner's row
    estimate for the chosen path; ``chosen_conjuncts`` are the WHERE
    conjuncts the path consumed; ``pushdown`` describes a range pushed
    into a sorted index (``None`` otherwise).  ``exec_mode`` is
    ``"compiled"`` (codegen'd batch filter) or ``"interpreted"`` (the
    ``REPRO_COMPILED_EXEC=0`` fallback), with ``batch_size`` rows pulled
    per executor step.
    """

    table: str
    access_path: str
    estimated_candidates: int
    estimated_cost: float = 0.0
    chosen_conjuncts: tuple[str, ...] = ()
    pushdown: str | None = None
    exec_mode: str = "compiled"
    batch_size: int = DEFAULT_BATCH

    def describe(self) -> str:
        """One-line EXPLAIN rendering."""
        parts = [
            f"{self.table}: {self.access_path} "
            f"(~{self.estimated_candidates} rows, cost {self.estimated_cost:g})"
        ]
        if self.chosen_conjuncts:
            parts.append("using " + " AND ".join(self.chosen_conjuncts))
        if self.pushdown:
            parts.append(f"pushdown {self.pushdown}")
        parts.append(f"exec={self.exec_mode} batch={self.batch_size}")
        return " ".join(parts)


@dataclass(slots=True)
class _Candidate:
    """One costed access path under consideration."""

    cost: float
    access_path: str
    rowids: Callable[[], Iterable[int]]
    estimated: int
    conjuncts: tuple[str, ...] = ()
    pushdown: str | None = None


def plan_select(
    table: Table, where: Expr | None
) -> tuple[SelectPlan, Iterable[int]]:
    """Choose the cheapest access path; returns (plan, candidate rowids).

    Candidate row ids are produced lazily (index probes return their
    snapshot, scans yield from the heap), so callers that stop early —
    LIMIT without ORDER BY — never touch the rest of the table.
    """
    stats = table.statistics()
    row_count = stats.row_count
    best = _Candidate(
        cost=float(row_count),
        access_path="scan",
        rowids=lambda: (rowid for rowid, _ in table.items()),
        estimated=row_count,
    )
    if where is not None:
        for candidate in _index_candidates(table, where, stats):
            # Strictly cheaper wins; on a tie an index path beats the
            # scan (it can't be worse, and EXPLAIN output stays stable
            # for tiny tables).
            if candidate.cost < best.cost or (
                candidate.cost == best.cost and best.access_path == "scan"
            ):
                best = candidate
    compiled = compiled_exec_enabled()
    plan = SelectPlan(
        table=table.schema.name,
        access_path=best.access_path,
        estimated_candidates=best.estimated,
        estimated_cost=best.cost,
        chosen_conjuncts=best.conjuncts,
        pushdown=best.pushdown,
        exec_mode="compiled" if compiled else "interpreted",
        batch_size=DEFAULT_BATCH if compiled else 1,
    )
    return plan, best.rowids()


def _index_candidates(
    table: Table, where: Expr, stats: "TableStatistics"
) -> Iterator[_Candidate]:
    """Cost every index-backed access path the WHERE clause enables."""
    row_count = stats.row_count
    bindings = equality_bindings(where)
    if bindings:
        bound = frozenset(bindings)
        for index in table.indexes.candidate_hash_indexes(bound):
            key = tuple(bindings[c] for c in index.columns)
            index_stats = stats.index(index.name)
            expected = index_stats.rows_per_key if index_stats else row_count
            # Exact probe counts are O(1), so sharpen the estimate; the
            # selectivity figure still breaks ties among candidates that
            # happen to probe equally (and is what EXPLAIN reports when
            # the probe is empty).
            exact = index.count(key)
            yield _Candidate(
                cost=min(expected, row_count) if exact else 0.0,
                access_path=f"index:{index.name}",
                rowids=lambda index=index, key=key: index.lookup(key),
                estimated=exact,
                conjuncts=tuple(
                    f"{c} == {bindings[c]!r}" for c in index.columns
                ),
            )
    for column, bound_spec in range_bounds(where).items():
        index = table.indexes.sorted_index_on(column)
        if index is None:
            continue
        estimated = index.estimate_range(
            bound_spec.low,
            bound_spec.high,
            include_low=bound_spec.include_low,
            include_high=bound_spec.include_high,
        )
        low_bracket = "[" if bound_spec.include_low else "("
        high_bracket = "]" if bound_spec.include_high else ")"
        yield _Candidate(
            cost=float(estimated),
            access_path=f"index:{index.name}",
            rowids=lambda index=index, b=bound_spec: index.range(
                b.low, b.high,
                include_low=b.include_low, include_high=b.include_high,
            ),
            estimated=estimated,
            conjuncts=tuple(bound_spec.conjuncts),
            pushdown=(
                f"{column} in {low_bracket}{bound_spec.low!r}, "
                f"{bound_spec.high!r}{high_bracket}"
            ),
        )


def execute_select(
    table: Table,
    where: Expr | None = None,
    order_by: str | Sequence[str] | None = None,
    descending: bool = False,
    limit: int | None = None,
    offset: int = 0,
    columns: Sequence[str] | None = None,
    distinct: bool = False,
) -> list[dict[str, Any]]:
    """Run a select and return copied row dicts (projected if requested).

    ``distinct`` removes duplicate result rows after projection (first
    occurrence wins, before LIMIT/OFFSET are applied), matching SQL's
    SELECT DISTINCT over the projected columns.
    """
    if columns is not None:
        for name in columns:
            if not table.schema.has_column(name):
                raise UnknownColumnError(table.schema.name, name)
    plan, rowids = plan_select(table, where)
    handles: tuple | None = None
    counts = [0, 0]  # rows examined, batches pulled
    if OBS.enabled:
        handles = _obs_handles(table.schema.name, plan.access_path)
        handles[0].inc()
    if (
        plan.exec_mode == "compiled"
        and order_by is None
        and not descending
        and not distinct
    ):
        # Hot path (no reorder, no dedup): batches extend the result
        # list directly and projection is one comprehension — no
        # per-row generator resumption between filter and output.
        # Interpreted mode keeps the per-row generator pipeline below,
        # preserving the pre-compilation executor as the differential
        # baseline.
        needed = None if limit is None else limit + offset
        matched = _collect_matching(table, plan, rowids, where, counts, needed)
        if needed is not None:
            matched = matched[:needed]
        if columns is None:
            out = [dict(row) for row in matched]
        else:
            out = [{name: row[name] for name in columns} for row in matched]
        if offset:
            out = out[offset:]
        if limit is not None:
            out = out[:limit]
        if handles is not None and OBS.enabled:
            handles[1].inc(counts[0])
            handles[2].inc(len(out))
            handles[3].inc(counts[1])
        return out
    matching = _matching_rows(table, plan, rowids, where, counts)
    rows: Iterable[dict[str, Any]]
    if order_by is not None:
        keys = (order_by,) if isinstance(order_by, str) else tuple(order_by)
        for name in keys:
            if not table.schema.has_column(name):
                raise UnknownColumnError(table.schema.name, name)

        # None sorts first (ascending) via the (is-not-none, value) trick.
        def sort_key(r: dict[str, Any]) -> tuple:
            return tuple((r[k] is not None, r[k]) for k in keys)

        if limit is not None and not distinct:
            # Streaming top-k: nsmallest/nlargest are documented as
            # sorted(...)[:k] (stable on ties), so results match a full
            # sort exactly while holding only limit+offset rows.
            top = limit + offset
            if descending:
                rows = heapq.nlargest(top, matching, key=sort_key)
            else:
                rows = heapq.nsmallest(top, matching, key=sort_key)
        else:
            rows = sorted(matching, key=sort_key, reverse=descending)
    elif descending:
        reversed_rows = list(matching)
        reversed_rows.reverse()
        rows = reversed_rows
    else:
        rows = matching  # stays lazy: LIMIT stops the batch pulls early
    out: list[dict[str, Any]] = []
    seen: set[tuple] = set()
    needed = None if limit is None else limit + offset
    for row in rows:
        projected = (
            dict(row) if columns is None
            else {name: row[name] for name in columns}
        )
        if distinct:
            key = tuple(_hashable(projected[name]) for name in sorted(projected))
            if key in seen:
                continue
            seen.add(key)
        out.append(projected)
        if needed is not None and len(out) >= needed:
            break
    if offset:
        out = out[offset:]
    if limit is not None:
        out = out[:limit]
    if handles is not None and OBS.enabled:
        handles[1].inc(counts[0])
        handles[2].inc(len(out))
        handles[3].inc(counts[1])
    return out


#: (registry, {(table, path): (plan, rows_scanned, rows_returned,
#: batches)}) — handles re-resolved whenever the active registry object
#: changes, so the steady-state enabled cost per select is four dict hits.
_OBS_HANDLES: list = [None, {}]


def _obs_handles(table_name: str, access_path: str) -> tuple:
    registry = OBS.registry
    if _OBS_HANDLES[0] is not registry:
        _OBS_HANDLES[0] = registry
        _OBS_HANDLES[1] = {}
    cache = _OBS_HANDLES[1]
    key = (table_name, access_path)
    handles = cache.get(key)
    if handles is None:
        assert registry is not None
        handles = cache[key] = (
            registry.counter("rdb.plan", table=table_name, path=access_path),
            registry.counter("rdb.rows_scanned", table=table_name),
            registry.counter("rdb.rows_returned", table=table_name),
            registry.counter("rdb.batches", table=table_name),
        )
    return handles


def _row_batches(
    table: Table, rowids: Iterable[int], size: int
) -> Iterator[list[dict[str, Any]]]:
    """Materialize candidate rowids into row-list batches."""
    get = table.get
    it = iter(rowids)
    while True:
        chunk = list(islice(it, size))
        if not chunk:
            return
        yield [row for rowid in chunk if (row := get(rowid)) is not None]


def _candidate_batches(
    table: Table, plan: SelectPlan, rowids: Iterable[int]
) -> Iterator[list[dict[str, Any]]]:
    """Candidate rows for a planned access path, as row-list batches."""
    if plan.access_path == "scan":
        # Scan straight off the heap snapshot: no per-row rowid hop,
        # no per-row table.get().
        return table.rows_batches(plan.batch_size)
    return _row_batches(table, rowids, plan.batch_size)


def _collect_matching(
    table: Table,
    plan: SelectPlan,
    rowids: Iterable[int],
    where: Expr | None,
    counts: list[int],
    needed: int | None,
) -> list[dict[str, Any]]:
    """Matching rows as one list: filtered batches extend it in place.

    The list-wise twin of :func:`_matching_rows` for selects that
    consume every matching row in heap order — no generator frame is
    resumed per row.  Stops pulling batches once ``needed`` rows have
    matched (LIMIT+OFFSET bound; ``None`` collects everything).

    An unbounded full scan reads every row regardless, so it takes the
    heap snapshot as a single batch: one fused filter call, no slicing.
    """
    if needed is None and plan.access_path == "scan":
        rows = table.rows_list()
        counts[0] += len(rows)
        counts[1] += 1
        if where is None:
            return rows
        if plan.exec_mode == "compiled":
            return batch_filter(where)(rows)
        evaluate = where.eval
        return [row for row in rows if evaluate(row)]
    out: list[dict[str, Any]] = []
    extend = out.extend
    batches = _candidate_batches(table, plan, rowids)
    if where is None:
        for batch in batches:
            counts[0] += len(batch)
            counts[1] += 1
            extend(batch)
            if needed is not None and len(out) >= needed:
                break
    elif plan.exec_mode == "compiled":
        matching = batch_filter(where)
        for batch in batches:
            counts[0] += len(batch)
            counts[1] += 1
            extend(matching(batch))
            if needed is not None and len(out) >= needed:
                break
    else:
        evaluate = where.eval
        append = out.append
        for batch in batches:
            counts[0] += len(batch)
            counts[1] += 1
            for row in batch:
                if evaluate(row):
                    append(row)
            if needed is not None and len(out) >= needed:
                break
    return out


def _matching_rows(
    table: Table,
    plan: SelectPlan,
    rowids: Iterable[int],
    where: Expr | None,
    counts: list[int],
) -> Iterator[dict[str, Any]]:
    """Yield candidate rows that pass the WHERE filter, batch by batch.

    ``counts`` is a two-slot tally ([rows examined, batches pulled]) the
    caller flushes to observability after consumption — two integer adds
    per *batch* replace the per-row counting iterator the interpreted
    executor used, which is what takes enabled-obs scan overhead under
    1%.  Stays lazy across batches, so LIMIT without ORDER BY stops
    pulling once it has enough rows.
    """
    batches = _candidate_batches(table, plan, rowids)
    if where is None:
        for batch in batches:
            counts[0] += len(batch)
            counts[1] += 1
            yield from batch
    elif plan.exec_mode == "compiled":
        matching = batch_filter(where)
        for batch in batches:
            counts[0] += len(batch)
            counts[1] += 1
            yield from matching(batch)
    else:
        evaluate = where.eval
        for batch in batches:
            counts[0] += len(batch)
            counts[1] += 1
            for row in batch:
                if evaluate(row):
                    yield row


def _hashable(value: Any) -> Any:
    """Stable hashable form of a stored value (JSON columns hold lists
    and dicts, which must participate in DISTINCT)."""
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    return value


def range_scan(
    table: Table,
    column: str,
    low: Any = None,
    high: Any = None,
    *,
    include_low: bool = True,
    include_high: bool = True,
) -> list[dict[str, Any]]:
    """Range query using a sorted index when available, else a scan."""
    if not table.schema.has_column(column):
        raise UnknownColumnError(table.schema.name, column)
    index = table.indexes.sorted_index_on(column)
    if index is not None:
        return [
            dict(table.get(rowid))  # type: ignore[arg-type]
            for rowid in index.range(
                low, high, include_low=include_low, include_high=include_high
            )
        ]
    if compiled_exec_enabled():
        # Lower the bounds to a predicate tree and run it through the
        # compiled batch filter — same null/ordering semantics as the
        # interpreted loop below (None keys excluded, unorderable
        # values raise), one generated comparison chain per batch row.
        where = col(column).not_null()
        if low is not None:
            where = where & (
                col(column) >= low if include_low else col(column) > low
            )
        if high is not None:
            where = where & (
                col(column) <= high if include_high else col(column) < high
            )
        matching = batch_filter(where)
        return [dict(row) for row in matching(table.rows_list())]
    out: list[dict[str, Any]] = []
    for row in table.rows():
        value = row[column]
        if value is None:
            continue
        if low is not None and (value < low or (value == low and not include_low)):
            continue
        if high is not None and (value > high or (value == high and not include_high)):
            continue
        out.append(dict(row))
    return out


def _join_key_fns(
    on: Sequence[tuple[str, str]],
) -> tuple[Callable, Callable, Callable[[Any], bool]]:
    """(left key, right key, key-has-null) extractors for a join spec."""
    if not on:
        return (lambda row: ()), (lambda row: ()), (lambda key: False)
    if len(on) == 1:
        lc, rc = on[0]
        return itemgetter(lc), itemgetter(rc), (lambda key: key is None)
    left = itemgetter(*[lc for lc, _rc in on])
    right = itemgetter(*[rc for _lc, rc in on])
    return left, right, (lambda key: None in key)


def _prefixed_names(
    prefix: str, cache: dict[tuple, tuple[str, ...]], keys: tuple[str, ...]
) -> tuple[str, ...]:
    """``("<prefix>.<col>", ...)`` for a row's key shape, cached.

    Rows from one table all share a key shape, so the f-string
    formatting runs once per shape; every merged output row is then one
    C-speed ``dict(zip(names, values))``.
    """
    names = cache.get(keys)
    if names is None:
        names = cache[keys] = tuple(f"{prefix}.{k}" for k in keys)
    return names


def join_rows(
    left_rows: Iterable[dict[str, Any]],
    right_rows: Iterable[dict[str, Any]],
    on: Sequence[tuple[str, str]],
    *,
    left_prefix: str = "l",
    right_prefix: str = "r",
    kind: str = "inner",
) -> list[dict[str, Any]]:
    """Hash join of two row iterables on (left_col, right_col) pairs.

    Output rows carry prefixed keys (``"<prefix>.<column>"``) so name
    collisions between the inputs are harmless.  ``kind`` is ``"inner"``
    or ``"left"`` (left-outer: unmatched left rows appear with ``None``
    right columns).

    The vectorized form decomposes every row into (key shape, value
    tuple) so a merged output row is a single C-level ``dict(zip(...))``
    over cached prefixed-name tuples — no per-column formatting, no
    intermediate dicts.  The ``REPRO_COMPILED_EXEC=0`` kill switch
    restores the per-row interpreted merge loop.
    """
    if kind not in ("inner", "left"):
        raise ValueError(f"join kind must be 'inner' or 'left', got {kind!r}")
    if not compiled_exec_enabled():
        return _join_rows_interpreted(
            left_rows, right_rows, on,
            left_prefix=left_prefix, right_prefix=right_prefix, kind=kind,
        )
    left_key, right_key, key_has_null = _join_key_fns(on)
    right_cache: dict[tuple, tuple[str, ...]] = {}
    buckets: dict[Any, list[tuple[tuple[str, ...], tuple]]] = {}
    bucket_for = buckets.setdefault
    right_columns: set[str] = set()
    for row in right_rows:
        right_columns.update(row)
        names = _prefixed_names(right_prefix, right_cache, tuple(row))
        bucket_for(right_key(row), []).append((names, tuple(row.values())))
    null_names = tuple(f"{right_prefix}.{k}" for k in right_columns)
    null_values = (None,) * len(null_names)
    left_cache: dict[tuple, tuple[str, ...]] = {}
    combined: dict[tuple, tuple[str, ...]] = {}
    get_bucket = buckets.get
    no_matches: list[tuple[tuple[str, ...], tuple]] = []
    out: list[dict[str, Any]] = []
    append = out.append
    for left in left_rows:
        key = left_key(left)
        matches = no_matches if key_has_null(key) else get_bucket(key, no_matches)
        if not matches:
            if kind != "left":
                continue
            matches = ((null_names, null_values),)
        left_keys = tuple(left)
        left_values = tuple(left.values())
        for right_names, right_values in matches:
            shape = combined.get(left_keys)
            if shape is None or shape[0] is not right_names:
                # Combined-name tuples cached per (left shape, right
                # shape); one right shape per left shape is the common
                # case, so the hot probe is a single dict hit.
                left_names = _prefixed_names(left_prefix, left_cache, left_keys)
                shape = combined[left_keys] = (
                    right_names, left_names + right_names
                )
            append(dict(zip(shape[1], left_values + right_values)))
    return out


def _join_rows_interpreted(
    left_rows: Iterable[dict[str, Any]],
    right_rows: Iterable[dict[str, Any]],
    on: Sequence[tuple[str, str]],
    *,
    left_prefix: str = "l",
    right_prefix: str = "r",
    kind: str = "inner",
) -> list[dict[str, Any]]:
    """The pre-vectorization hash join, kept verbatim for the kill
    switch: the differential suite pins ``join_rows`` to this output."""
    right_list = list(right_rows)
    buckets: dict[tuple, list[dict[str, Any]]] = {}
    for row in right_list:
        key = tuple(row[rc] for _lc, rc in on)
        buckets.setdefault(key, []).append(row)
    right_columns: set[str] = set()
    for row in right_list:
        right_columns.update(row)
    out: list[dict[str, Any]] = []
    for left in left_rows:
        key = tuple(left[lc] for lc, _rc in on)
        matches = buckets.get(key, []) if None not in key else []
        if matches:
            for right in matches:
                merged = {f"{left_prefix}.{k}": v for k, v in left.items()}
                merged.update({f"{right_prefix}.{k}": v for k, v in right.items()})
                out.append(merged)
        elif kind == "left":
            merged = {f"{left_prefix}.{k}": v for k, v in left.items()}
            merged.update({f"{right_prefix}.{k}": None for k in right_columns})
            out.append(merged)
    return out


_AGGREGATES: dict[str, Callable[[list[Any]], Any]] = {
    "count": len,
    "sum": lambda values: sum(values) if values else 0,
    "avg": lambda values: (sum(values) / len(values)) if values else None,
    "min": lambda values: min(values) if values else None,
    "max": lambda values: max(values) if values else None,
}


def aggregate(
    rows: Iterable[dict[str, Any]],
    spec: dict[str, tuple[str, str | None]],
    group_by: Sequence[str] | None = None,
) -> list[dict[str, Any]]:
    """Grouped aggregation.

    ``spec`` maps output names to ``(function, column)`` where function is
    one of count/sum/avg/min/max and column is ``None`` for ``count(*)``.
    Null column values are excluded from every aggregate except
    ``count(*)``, matching SQL.

    >>> aggregate([{"a": 1}, {"a": 3}], {"n": ("count", None), "m": ("max", "a")})
    [{'n': 2, 'm': 3}]
    """
    for out_name, (fn_name, _column) in spec.items():
        if fn_name not in _AGGREGATES:
            raise ValueError(f"unknown aggregate {fn_name!r} for {out_name!r}")
    groups: dict[tuple, list[dict[str, Any]]] = {}
    group_cols = tuple(group_by) if group_by else ()
    for row in rows:
        key = tuple(row[c] for c in group_cols)
        groups.setdefault(key, []).append(row)
    if not groups and not group_cols:
        groups[()] = []
    out: list[dict[str, Any]] = []
    for key in sorted(groups, key=lambda k: tuple((v is not None, v) for v in k)):
        bucket = groups[key]
        result: dict[str, Any] = dict(zip(group_cols, key))
        for out_name, (fn_name, column) in spec.items():
            if column is None:
                values: list[Any] = bucket
            else:
                values = [row[column] for row in bucket if row[column] is not None]
            result[out_name] = _AGGREGATES[fn_name](values)
        out.append(result)
    return out


def matching_view(
    table: Table, where: Expr | None = None
) -> list[dict[str, Any]]:
    """Matching rows as live references — the executor feed for
    read-only consumers (joins, aggregates) that build fresh output
    dicts anyway, so the per-row defensive copy a select makes would be
    pure waste.  Callers must not mutate the returned rows.

    Runs the same planned, batched, observed pipeline as
    :func:`execute_select`.
    """
    plan, rowids = plan_select(table, where)
    handles: tuple | None = None
    counts = [0, 0]
    if OBS.enabled:
        handles = _obs_handles(table.schema.name, plan.access_path)
        handles[0].inc()
    rows = _collect_matching(table, plan, rowids, where, counts, None)
    if handles is not None and OBS.enabled:
        handles[1].inc(counts[0])
        handles[2].inc(len(rows))
        handles[3].inc(counts[1])
    return rows


def aggregate_table(
    table: Table,
    spec: dict[str, tuple[str, str | None]],
    where: Expr | None = None,
    group_by: Sequence[str] | None = None,
) -> list[dict[str, Any]]:
    """Aggregate straight off a table through the batched executor.

    Equivalent to ``aggregate(execute_select(table, where), spec,
    group_by)`` but grouped over the no-copy :func:`matching_view` —
    aggregation only reads column values, so live rows are safe.
    """
    return aggregate(matching_view(table, where), spec, group_by=group_by)
