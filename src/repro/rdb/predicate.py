"""A composable predicate / expression mini-language.

Queries filter rows with expression trees built from :func:`col` and
:func:`lit`::

    from repro.rdb import col

    where = (col("author") == "shih") & col("version").ge(2)
    rows = db.select("scripts", where=where)

Expressions support comparisons, boolean algebra (``&``, ``|``, ``~``),
``is_null``/``not_null``, ``isin``, ``between``, ``like`` (SQL ``%``/``_``
wildcards) and ``contains`` for JSON list columns.  Evaluation is
null-aware in the SQL sense: comparisons against ``None`` are false
rather than raising.
"""

from __future__ import annotations

import functools
import re
from typing import Any, Callable, Iterable

__all__ = [
    "Expr",
    "col",
    "lit",
    "RangeBound",
    "equality_bindings",
    "range_bounds",
    "predicate_cache_key",
]


class Expr:
    """A node in a predicate expression tree.

    Subclasses implement :meth:`eval` over a row mapping and
    :meth:`columns` for planner use (index selection inspects equality
    predicates on indexed columns).
    """

    def eval(self, row: dict[str, Any]) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def columns(self) -> frozenset[str]:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- boolean algebra -------------------------------------------------
    def __and__(self, other: "Expr") -> "Expr":
        return And(self, _as_expr(other))

    def __or__(self, other: "Expr") -> "Expr":
        return Or(self, _as_expr(other))

    def __invert__(self) -> "Expr":
        return Not(self)

    # -- comparisons -----------------------------------------------------
    def __eq__(self, other: object) -> "Expr":  # type: ignore[override]
        return Compare(self, _as_expr(other), "==")

    def __ne__(self, other: object) -> "Expr":  # type: ignore[override]
        return Compare(self, _as_expr(other), "!=")

    def __lt__(self, other: object) -> "Expr":
        return Compare(self, _as_expr(other), "<")

    def __le__(self, other: object) -> "Expr":
        return Compare(self, _as_expr(other), "<=")

    def __gt__(self, other: object) -> "Expr":
        return Compare(self, _as_expr(other), ">")

    def __ge__(self, other: object) -> "Expr":
        return Compare(self, _as_expr(other), ">=")

    # Named aliases keep call sites readable when operator overloading
    # would be ambiguous (e.g. inside comprehensions).
    def eq(self, other: object) -> "Expr":
        return self == other

    def ne(self, other: object) -> "Expr":
        return self != other

    def lt(self, other: object) -> "Expr":
        return self < other

    def le(self, other: object) -> "Expr":
        return self <= other

    def gt(self, other: object) -> "Expr":
        return self > other

    def ge(self, other: object) -> "Expr":
        return self >= other

    # -- SQL-ish extras ----------------------------------------------------
    def is_null(self) -> "Expr":
        return IsNull(self, expect_null=True)

    def not_null(self) -> "Expr":
        return IsNull(self, expect_null=False)

    def isin(self, values: Iterable[Any]) -> "Expr":
        return In(self, frozenset(values))

    def between(self, low: Any, high: Any) -> "Expr":
        """Inclusive range check, null-aware."""
        return (self >= low) & (self <= high)

    def like(self, pattern: str) -> "Expr":
        """SQL LIKE with ``%`` (any run) and ``_`` (single char)."""
        return Like(self, pattern)

    def contains(self, item: Any) -> "Expr":
        """Membership test for JSON-list or text columns."""
        return Contains(self, item)

    def apply(self, fn: Callable[[Any], Any], label: str = "apply") -> "Expr":
        """Escape hatch: arbitrary function of this expression's value."""
        return Apply(self, fn, label)

    # Exprs are structural; using == for comparison building means they
    # must hash by identity so they can live in sets during planning.
    def __hash__(self) -> int:  # pragma: no cover - trivial
        return id(self)

    def __bool__(self) -> bool:
        raise TypeError(
            "Expr has no truth value; combine predicates with & | ~ "
            "(not `and`/`or`/`not`)"
        )


class ColumnRef(Expr):
    """Reference to a column's value in the row under evaluation."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def eval(self, row: dict[str, Any]) -> Any:
        return row[self.name]

    def columns(self) -> frozenset[str]:
        return frozenset((self.name,))

    def __repr__(self) -> str:
        return f"col({self.name!r})"


class Literal(Expr):
    """A constant value."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def eval(self, row: dict[str, Any]) -> Any:
        return self.value

    def columns(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Compare(Expr):
    """Binary comparison; SQL-style null semantics (null compares false,
    except ``!=`` where a single null yields true only if the other side
    is non-null... we keep it simple: any null operand makes the
    comparison false, matching SQL's UNKNOWN treated as not-matching)."""

    __slots__ = ("left", "right", "op")

    def __init__(self, left: Expr, right: Expr, op: str) -> None:
        self.left = left
        self.right = right
        self.op = op

    def eval(self, row: dict[str, Any]) -> bool:
        a = self.left.eval(row)
        b = self.right.eval(row)
        if a is None or b is None:
            return False
        return _OPS[self.op](a, b)

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class And(Expr):
    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr) -> None:
        self.left = left
        self.right = right

    def eval(self, row: dict[str, Any]) -> bool:
        return bool(self.left.eval(row)) and bool(self.right.eval(row))

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} & {self.right!r})"


class Or(Expr):
    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr) -> None:
        self.left = left
        self.right = right

    def eval(self, row: dict[str, Any]) -> bool:
        return bool(self.left.eval(row)) or bool(self.right.eval(row))

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} | {self.right!r})"


class Not(Expr):
    __slots__ = ("inner",)

    def __init__(self, inner: Expr) -> None:
        self.inner = inner

    def eval(self, row: dict[str, Any]) -> bool:
        return not bool(self.inner.eval(row))

    def columns(self) -> frozenset[str]:
        return self.inner.columns()

    def __repr__(self) -> str:
        return f"~{self.inner!r}"


class IsNull(Expr):
    __slots__ = ("inner", "expect_null")

    def __init__(self, inner: Expr, expect_null: bool) -> None:
        self.inner = inner
        self.expect_null = expect_null

    def eval(self, row: dict[str, Any]) -> bool:
        return (self.inner.eval(row) is None) == self.expect_null

    def columns(self) -> frozenset[str]:
        return self.inner.columns()

    def __repr__(self) -> str:
        suffix = "is_null" if self.expect_null else "not_null"
        return f"{self.inner!r}.{suffix}()"


class In(Expr):
    __slots__ = ("inner", "values")

    def __init__(self, inner: Expr, values: frozenset) -> None:
        self.inner = inner
        self.values = values

    def eval(self, row: dict[str, Any]) -> bool:
        value = self.inner.eval(row)
        if value is None:
            return False
        try:
            return value in self.values
        except TypeError:
            return False

    def columns(self) -> frozenset[str]:
        return self.inner.columns()

    def __repr__(self) -> str:
        return f"{self.inner!r}.isin({sorted(map(repr, self.values))})"


class Like(Expr):
    __slots__ = ("inner", "pattern", "_regex")

    def __init__(self, inner: Expr, pattern: str) -> None:
        self.inner = inner
        self.pattern = pattern
        self._regex = _like_to_regex(pattern)

    def eval(self, row: dict[str, Any]) -> bool:
        value = self.inner.eval(row)
        if not isinstance(value, str):
            return False
        return self._regex.match(value) is not None

    def columns(self) -> frozenset[str]:
        return self.inner.columns()

    def __repr__(self) -> str:
        return f"{self.inner!r}.like({self.pattern!r})"


class Contains(Expr):
    __slots__ = ("inner", "item")

    def __init__(self, inner: Expr, item: Any) -> None:
        self.inner = inner
        self.item = item

    def eval(self, row: dict[str, Any]) -> bool:
        value = self.inner.eval(row)
        if value is None:
            return False
        try:
            return self.item in value
        except TypeError:
            return False

    def columns(self) -> frozenset[str]:
        return self.inner.columns()

    def __repr__(self) -> str:
        return f"{self.inner!r}.contains({self.item!r})"


class Apply(Expr):
    __slots__ = ("inner", "fn", "label")

    def __init__(self, inner: Expr, fn: Callable[[Any], Any], label: str) -> None:
        self.inner = inner
        self.fn = fn
        self.label = label

    def eval(self, row: dict[str, Any]) -> Any:
        return self.fn(self.inner.eval(row))

    def columns(self) -> frozenset[str]:
        return self.inner.columns()

    def __repr__(self) -> str:
        return f"{self.inner!r}.apply(<{self.label}>)"


@functools.lru_cache(maxsize=256)
def _like_to_regex(pattern: str) -> re.Pattern[str]:
    """Translate a SQL LIKE pattern to an anchored regex.

    Cached: statements are often rebuilt with the same LIKE pattern
    (templated queries, retried requests), and ``re.compile`` dwarfs
    the cost of constructing the rest of the expression tree.
    """
    out: list[str] = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("".join(out) + r"\Z", re.DOTALL)


def col(name: str) -> ColumnRef:
    """Reference a column by name in a predicate expression."""
    return ColumnRef(name)


def lit(value: Any) -> Literal:
    """Wrap a constant in a predicate expression."""
    return Literal(value)


def _as_expr(value: object) -> Expr:
    return value if isinstance(value, Expr) else Literal(value)


class RangeBound:
    """Accumulated comparison bounds on one column, from top-level
    AND conjuncts.  ``conjuncts`` records the source comparisons (as
    reprs) for EXPLAIN output."""

    __slots__ = ("column", "low", "high", "include_low", "include_high",
                 "conjuncts")

    def __init__(self, column: str) -> None:
        self.column = column
        self.low: Any = None
        self.high: Any = None
        self.include_low = True
        self.include_high = True
        self.conjuncts: list[str] = []

    def narrow_low(self, value: Any, inclusive: bool, conjunct: str) -> None:
        if self.low is None or value > self.low or (
            value == self.low and not inclusive
        ):
            self.low = value
            self.include_low = inclusive
        self.conjuncts.append(conjunct)

    def narrow_high(self, value: Any, inclusive: bool, conjunct: str) -> None:
        if self.high is None or value < self.high or (
            value == self.high and not inclusive
        ):
            self.high = value
            self.include_high = inclusive
        self.conjuncts.append(conjunct)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lo = "(" if not self.include_low else "["
        hi = ")" if not self.include_high else "]"
        return f"RangeBound({self.column}: {lo}{self.low!r}, {self.high!r}{hi})"


# op -> (is_lower_bound, inclusive), as seen with the column on the LEFT.
_RANGE_OPS = {
    ">": (True, False),
    ">=": (True, True),
    "<": (False, False),
    "<=": (False, True),
}
# Flip when the literal is on the left (``lit(5) < col("x")`` == ``x > 5``).
_FLIPPED = {">": "<", ">=": "<=", "<": ">", "<=": ">="}


def range_bounds(expr: Expr) -> dict[str, RangeBound]:
    """Extract per-column comparison bounds from the top-level AND chain.

    Collects ``column <op> literal`` conjuncts for ``<``, ``<=``, ``>``,
    ``>=`` (BETWEEN-shaped pairs tighten both ends of one bound).  Only
    conjunctions are walked — an OR branch can't guarantee the bound
    holds — and ``None`` literals are skipped (they compare false
    everywhere, so they give the planner nothing usable).  Used for
    range-predicate pushdown into sorted indexes; candidates from a
    pushed-down bound are a superset of matching rows, so the residual
    filter preserves exactness.
    """
    bounds: dict[str, RangeBound] = {}
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, And):
            stack.append(node.left)
            stack.append(node.right)
            continue
        if not isinstance(node, Compare) or node.op not in _RANGE_OPS:
            continue
        left, right = node.left, node.right
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            column, value, op = left.name, right.value, node.op
        elif isinstance(right, ColumnRef) and isinstance(left, Literal):
            column, value, op = right.name, left.value, _FLIPPED[node.op]
        else:
            continue
        if value is None:
            continue
        bound = bounds.setdefault(column, RangeBound(column))
        is_lower, inclusive = _RANGE_OPS[op]
        conjunct = f"{column} {op} {value!r}"
        if is_lower:
            bound.narrow_low(value, inclusive, conjunct)
        else:
            bound.narrow_high(value, inclusive, conjunct)
    return bounds


def predicate_cache_key(expr: Expr | None) -> str | None:
    """A stable structural key for result caching, or ``None`` when the
    predicate embeds opaque callables (:class:`Apply`) and therefore
    cannot be keyed safely.

    Two structurally identical trees produce the same key; reprs of
    every node type are deterministic (``In`` sorts its value reprs).
    """
    if expr is None:
        return ""
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Apply):
            return None
        for slot in getattr(type(node), "__slots__", ()):
            child = getattr(node, slot, None)
            if isinstance(child, Expr):
                stack.append(child)
    return repr(expr)


def equality_bindings(expr: Expr) -> dict[str, Any]:
    """Extract ``column == literal`` bindings from the top-level AND chain.

    Used by the query planner to pick a hash index: walks conjunctions
    only (an OR branch can't guarantee the binding holds) and collects
    comparisons of a column against a literal.
    """
    bindings: dict[str, Any] = {}
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, And):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, Compare) and node.op == "==":
            left, right = node.left, node.right
            if isinstance(left, ColumnRef) and isinstance(right, Literal):
                bindings[left.name] = right.value
            elif isinstance(right, ColumnRef) and isinstance(left, Literal):
                bindings[right.name] = left.value
    return bindings
