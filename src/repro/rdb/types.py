"""Column types, columns and table schemas.

A :class:`Schema` is a declarative description of one table: named typed
columns, a primary key, optional unique constraints and foreign keys.
Values are plain Python objects; :func:`ColumnType.validate` performs
type checking and the mild coercions (int -> float) a SQL engine would.
"""

from __future__ import annotations

import datetime as _dt
import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.rdb.errors import SchemaError
from repro.util.validation import check_identifier

if TYPE_CHECKING:
    from repro.rdb.constraints import ForeignKey

__all__ = ["ColumnType", "Column", "Schema"]


class ColumnType(enum.Enum):
    """Supported column types.

    ``JSON`` stores lists/dicts of JSON-safe values and is used for the
    multi-valued attributes the paper's tables carry (e.g. the list of
    "bad URLs" in a bug report).  ``BYTES`` stores raw blobs — the engine
    keeps only small ones; large multimedia lives in the BLOB store.
    """

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    BOOL = "bool"
    DATETIME = "datetime"
    JSON = "json"
    BYTES = "bytes"

    def validate(self, value: Any, *, column: str) -> Any:
        """Check (and mildly coerce) ``value`` for this type.

        Returns the stored representation.  Raises :class:`TypeError` on
        mismatch.  ``None`` is handled by the caller (nullability is a
        column property, not a type property).
        """
        if self is ColumnType.INT:
            # bool is an int subclass; reject it to avoid silent surprises.
            if isinstance(value, bool) or not isinstance(value, int):
                raise TypeError(f"column {column!r} expects int, got {value!r}")
            return value
        if self is ColumnType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeError(f"column {column!r} expects float, got {value!r}")
            return float(value)
        if self is ColumnType.TEXT:
            if not isinstance(value, str):
                raise TypeError(f"column {column!r} expects str, got {value!r}")
            return value
        if self is ColumnType.BOOL:
            if not isinstance(value, bool):
                raise TypeError(f"column {column!r} expects bool, got {value!r}")
            return value
        if self is ColumnType.DATETIME:
            if not isinstance(value, _dt.datetime):
                raise TypeError(
                    f"column {column!r} expects datetime, got {value!r}"
                )
            return value
        if self is ColumnType.JSON:
            _check_json(value, column)
            return value
        if self is ColumnType.BYTES:
            if not isinstance(value, (bytes, bytearray)):
                raise TypeError(f"column {column!r} expects bytes, got {value!r}")
            return bytes(value)
        raise AssertionError(f"unhandled column type {self!r}")


def _check_json(value: Any, column: str, _depth: int = 0) -> None:
    """Recursively validate that ``value`` is JSON-representable."""
    if _depth > 32:
        raise TypeError(f"column {column!r}: JSON value nested too deeply")
    if value is None or isinstance(value, (str, bool)):
        return
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return
    if isinstance(value, (list, tuple)):
        for item in value:
            _check_json(item, column, _depth + 1)
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"column {column!r}: JSON object keys must be str, got {key!r}"
                )
            _check_json(item, column, _depth + 1)
        return
    raise TypeError(f"column {column!r} expects a JSON value, got {value!r}")


@dataclass(frozen=True, slots=True)
class Column:
    """One column of a table schema.

    ``check`` is an optional CHECK constraint: a predicate over the
    (non-null) column value; rows violating it are rejected with
    :class:`~repro.rdb.errors.CheckError`.  ``check_label`` names the
    constraint in error messages (defaults to ``check_<column>``).
    """

    name: str
    type: ColumnType
    nullable: bool = True
    default: Any = None
    check: Callable[[Any], bool] | None = None
    check_label: str | None = None

    def __post_init__(self) -> None:
        check_identifier(self.name, "column name")
        if self.default is not None:
            # Validate the default eagerly so schema errors surface at
            # CREATE TABLE time rather than on the first insert.
            self.type.validate(self.default, column=self.name)
            if self.check is not None and not self.check(self.default):
                raise SchemaError(
                    f"column {self.name!r}: default {self.default!r} "
                    "violates its own CHECK constraint"
                )

    @property
    def constraint_name(self) -> str:
        return self.check_label or f"check_{self.name}"


@dataclass(frozen=True)
class Schema:
    """A table schema: columns, primary key, unique sets, foreign keys."""

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...]
    unique: tuple[tuple[str, ...], ...] = ()
    foreign_keys: tuple["ForeignKey", ...] = ()
    _by_name: dict[str, Column] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        check_identifier(self.name, "table name")
        if not self.columns:
            raise SchemaError(f"table {self.name!r} must have at least one column")
        by_name: dict[str, Column] = {}
        for column in self.columns:
            if column.name in by_name:
                raise SchemaError(
                    f"table {self.name!r} defines column {column.name!r} twice"
                )
            by_name[column.name] = column
        object.__setattr__(self, "_by_name", by_name)
        if not self.primary_key:
            raise SchemaError(f"table {self.name!r} must declare a primary key")
        for group in (self.primary_key, *self.unique):
            for column_name in group:
                if column_name not in by_name:
                    raise SchemaError(
                        f"table {self.name!r}: key column {column_name!r} "
                        "is not a column of the table"
                    )
        for pk_col in self.primary_key:
            if by_name[pk_col].nullable:
                raise SchemaError(
                    f"table {self.name!r}: primary-key column {pk_col!r} "
                    "must be declared nullable=False"
                )
        for fk in self.foreign_keys:
            for column_name in fk.columns:
                if column_name not in by_name:
                    raise SchemaError(
                        f"table {self.name!r}: foreign-key column "
                        f"{column_name!r} is not a column of the table"
                    )

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def column(self, name: str) -> Column:
        """Look up a column by name; raises :class:`SchemaError` if absent."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def normalize_row(self, values: dict[str, Any]) -> dict[str, Any]:
        """Validate ``values`` against the schema and fill defaults.

        Returns a fresh dict with exactly one entry per schema column.
        Unknown keys raise; missing keys take the column default (which
        may be ``None``).  NOT NULL enforcement happens later in the
        constraint checker so it participates in the error hierarchy.
        """
        for key in values:
            if key not in self._by_name:
                raise SchemaError(
                    f"table {self.name!r} has no column {key!r}"
                )
        row: dict[str, Any] = {}
        for column in self.columns:
            if column.name in values:
                value = values[column.name]
            else:
                value = column.default
            if value is not None:
                value = column.type.validate(value, column=column.name)
            row[column.name] = value
        return row

    def key_of(self, row: dict[str, Any], columns: tuple[str, ...]) -> tuple:
        """Extract the tuple key for ``columns`` from a normalized row."""
        return tuple(row[name] for name in columns)

    def primary_key_of(self, row: dict[str, Any]) -> tuple:
        """Extract the primary-key tuple from a normalized row."""
        return self.key_of(row, self.primary_key)
