"""Row-level triggers.

Triggers are the engine hook that :mod:`repro.core.integrity` uses to
implement the paper's referential-integrity diagram: when a source object
(a row) is updated, an AFTER UPDATE trigger raises the alert messages that
tell users which dependent objects need refreshing.

A trigger is a callback registered for one (table, event, timing).
BEFORE triggers run before constraint checks and may veto the mutation by
raising; AFTER triggers observe the applied change.
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["TriggerEvent", "TriggerTiming", "TriggerContext", "TriggerRegistry"]


class TriggerEvent(enum.Enum):
    """Which mutation a trigger watches."""

    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"


class TriggerTiming(enum.Enum):
    """BEFORE triggers may veto; AFTER triggers observe."""

    BEFORE = "before"
    AFTER = "after"


@dataclass(frozen=True, slots=True)
class TriggerContext:
    """What a trigger callback sees.

    ``old_row`` is ``None`` for INSERT; ``new_row`` is ``None`` for
    DELETE.  Rows are copies — mutating them does not alter the table.
    """

    table: str
    event: TriggerEvent
    timing: TriggerTiming
    old_row: dict[str, Any] | None
    new_row: dict[str, Any] | None


TriggerFn = Callable[[TriggerContext], None]


class TriggerRegistry:
    """Registry and dispatcher for row-level triggers."""

    def __init__(self) -> None:
        self._triggers: dict[
            tuple[str, TriggerEvent, TriggerTiming], list[tuple[str, TriggerFn]]
        ] = {}

    def register(
        self,
        name: str,
        table: str,
        event: TriggerEvent,
        timing: TriggerTiming,
        fn: TriggerFn,
    ) -> None:
        """Register ``fn``; trigger names must be unique per (table, event,
        timing) so they can be dropped."""
        key = (table, event, timing)
        existing = self._triggers.setdefault(key, [])
        if any(existing_name == name for existing_name, _ in existing):
            raise ValueError(
                f"trigger {name!r} already registered for {key!r}"
            )
        existing.append((name, fn))

    def drop(self, name: str, table: str) -> bool:
        """Remove trigger ``name`` from ``table``; returns True if found."""
        found = False
        for key, entries in self._triggers.items():
            if key[0] != table:
                continue
            kept = [(n, f) for n, f in entries if n != name]
            if len(kept) != len(entries):
                self._triggers[key] = kept
                found = True
        return found

    def fire(
        self,
        table: str,
        event: TriggerEvent,
        timing: TriggerTiming,
        old_row: dict[str, Any] | None,
        new_row: dict[str, Any] | None,
    ) -> None:
        entries = self._triggers.get((table, event, timing))
        if not entries:
            return
        context = TriggerContext(
            table=table,
            event=event,
            timing=timing,
            old_row=dict(old_row) if old_row is not None else None,
            new_row=dict(new_row) if new_row is not None else None,
        )
        for _name, fn in entries:
            fn(context)

    def dispatcher(
        self, table: str, event: TriggerEvent, timing: TriggerTiming
    ) -> Callable[[dict[str, Any] | None, dict[str, Any] | None], None] | None:
        """A prebound ``fire(old_row, new_row)`` for a multi-row loop.

        ``None`` when nothing is registered for the slot, so bulk
        statements skip the registry lookup (and the call entirely) per
        row.  Resolved per statement: registrations made while the
        statement runs are picked up by the next statement, exactly as
        the per-row :meth:`fire` lookups behaved for the slot.
        """
        if not self._triggers.get((table, event, timing)):
            return None
        return functools.partial(self.fire, table, event, timing)

    def names_for(self, table: str) -> list[str]:
        """All trigger names registered on ``table`` (for introspection)."""
        names: list[str] = []
        for (tbl, _event, _timing), entries in self._triggers.items():
            if tbl == table:
                names.extend(name for name, _fn in entries)
        return sorted(set(names))
