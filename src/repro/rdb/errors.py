"""Exception hierarchy for the relational engine.

All engine errors derive from :class:`RdbError` so callers can catch the
whole family; constraint violations further derive from
:class:`ConstraintError` so integrity code can distinguish them from
schema or transaction misuse.
"""

from __future__ import annotations

__all__ = [
    "RdbError",
    "SchemaError",
    "UnknownTableError",
    "UnknownColumnError",
    "ConstraintError",
    "DuplicateKeyError",
    "NotNullError",
    "ForeignKeyError",
    "CheckError",
    "TransactionError",
    "JournalCorruptError",
]


class RdbError(Exception):
    """Base class for all relational-engine errors."""


class SchemaError(RdbError):
    """A schema definition is invalid (bad column, duplicate table, ...)."""


class UnknownTableError(SchemaError):
    """A statement referenced a table that does not exist."""

    def __init__(self, table: str) -> None:
        super().__init__(f"unknown table: {table!r}")
        self.table = table


class UnknownColumnError(SchemaError):
    """A statement referenced a column that does not exist."""

    def __init__(self, table: str, column: str) -> None:
        super().__init__(f"unknown column {column!r} in table {table!r}")
        self.table = table
        self.column = column


class ConstraintError(RdbError):
    """Base class for integrity-constraint violations."""


class DuplicateKeyError(ConstraintError):
    """Primary-key or unique-constraint violation."""

    def __init__(self, table: str, columns: tuple[str, ...], key: object) -> None:
        super().__init__(
            f"duplicate key {key!r} for ({', '.join(columns)}) in table {table!r}"
        )
        self.table = table
        self.columns = columns
        self.key = key


class NotNullError(ConstraintError):
    """A NOT NULL column received a null value."""

    def __init__(self, table: str, column: str) -> None:
        super().__init__(f"column {column!r} of table {table!r} may not be null")
        self.table = table
        self.column = column


class ForeignKeyError(ConstraintError):
    """A foreign-key reference is dangling or a restricted parent row
    would be orphaned by an update/delete."""

    def __init__(self, message: str) -> None:
        super().__init__(message)


class CheckError(ConstraintError):
    """A column CHECK constraint rejected a value."""

    def __init__(self, table: str, column: str, constraint: str, value: object) -> None:
        super().__init__(
            f"table {table!r}: value {value!r} for column {column!r} "
            f"violates CHECK constraint {constraint!r}"
        )
        self.table = table
        self.column = column
        self.constraint = constraint
        self.value = value


class TransactionError(RdbError):
    """Transaction API misuse (commit without begin, unknown savepoint)."""


class JournalCorruptError(RdbError):
    """The journal is damaged *before* its final record.

    A torn final record is the expected signature of a crash mid-append
    and is tolerated silently; corruption anywhere earlier means bytes
    that were acknowledged as durable have been altered or lost, which
    recovery must surface rather than silently truncate the history at
    the damage point.  ``offset`` is the byte position of the damaged
    record, ``reason`` the parse failure observed there.  Callers that
    prefer availability over strictness can re-run recovery in salvage
    mode, which skips damaged records and keeps going.
    """

    def __init__(self, path: object, offset: int, reason: str) -> None:
        super().__init__(
            f"journal {str(path)!r} corrupt at byte {offset}: {reason} "
            f"(valid records follow the damage; pass salvage=True to skip it)"
        )
        self.path = str(path)
        self.offset = offset
        self.reason = reason
