"""The database catalog: table registry and DDL-level validation.

The catalog owns schema-level invariants that span tables — e.g. every
foreign key must point at the parent's primary key or a declared unique
set (so FK lookups are exact-match and indexable).
"""

from __future__ import annotations

from typing import Iterator

from repro.rdb.errors import SchemaError, UnknownTableError
from repro.rdb.table import Table
from repro.rdb.types import Schema

__all__ = ["Catalog"]


class Catalog:
    """Registry of live tables for one database."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    @property
    def tables(self) -> dict[str, Table]:
        """Live name -> table mapping (shared with the constraint checker)."""
        return self._tables

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[str]:
        return iter(self._tables)

    def names(self) -> list[str]:
        return sorted(self._tables)

    def get(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def create_table(self, schema: Schema) -> Table:
        """Validate ``schema`` against the catalog and register its table.

        Foreign keys may reference tables created later only if
        self-referential; otherwise the parent must already exist so the
        key-target check below can run.  (The document-database schemas in
        :mod:`repro.core.schema` are declared in dependency order.)
        """
        if schema.name in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        for fk in schema.foreign_keys:
            if fk.parent_table == schema.name:
                parent_schema = schema
            else:
                parent = self._tables.get(fk.parent_table)
                if parent is None:
                    raise SchemaError(
                        f"table {schema.name!r}: foreign key references "
                        f"unknown table {fk.parent_table!r}"
                    )
                parent_schema = parent.schema
            targets = (parent_schema.primary_key, *parent_schema.unique)
            if fk.parent_columns not in targets:
                raise SchemaError(
                    f"table {schema.name!r}: foreign key must target the "
                    f"primary key or a unique set of {fk.parent_table!r}; "
                    f"{fk.parent_columns!r} is neither"
                )
            for column_name in fk.parent_columns:
                if not parent_schema.has_column(column_name):
                    raise SchemaError(
                        f"table {schema.name!r}: foreign key references "
                        f"unknown column {fk.parent_table}.{column_name}"
                    )
        table = Table(schema)
        self._tables[schema.name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Drop a table; refuses while other tables hold FKs into it."""
        if name not in self._tables:
            raise UnknownTableError(name)
        for other_name, other in self._tables.items():
            if other_name == name:
                continue
            for fk in other.schema.foreign_keys:
                if fk.parent_table == name:
                    raise SchemaError(
                        f"cannot drop {name!r}: table {other_name!r} "
                        "references it"
                    )
        del self._tables[name]
