"""Undo-log transactions with savepoints.

The engine records the inverse of every applied mutation in the active
transaction's undo log; ``rollback`` replays the log backwards.  Without
an explicit ``begin`` the engine autocommits each statement, but still
routes it through a one-statement transaction so a multi-row statement
(e.g. a CASCADE delete) is atomic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.rdb.errors import TransactionError

if TYPE_CHECKING:
    from repro.rdb.table import Table

__all__ = ["UndoRecord", "Transaction", "TransactionManager"]


@dataclass(frozen=True, slots=True)
class UndoRecord:
    """One inverse operation.

    ``kind`` is the *forward* operation; undo applies its inverse:
    ``insert`` -> delete the rowid, ``update`` -> restore ``old_row``,
    ``delete`` -> reinsert ``old_row`` under the same rowid.
    """

    kind: str  # "insert" | "update" | "delete"
    table: "Table"
    rowid: int
    old_row: dict[str, Any] | None

    def undo(self) -> None:
        if self.kind == "insert":
            self.table.apply_delete(self.rowid)
        elif self.kind == "update":
            assert self.old_row is not None
            self.table.apply_update(self.rowid, self.old_row)
        elif self.kind == "delete":
            assert self.old_row is not None
            # Reinsert at the original rowid to keep later undo records
            # (which reference rowids) coherent; apply_insert would mint a
            # fresh rowid.  The paired insert_row keeps indexes + stats true.
            # repro-analysis: ignore[index-invariant] -- rowid-stable reinsert
            self.table._rows[self.rowid] = self.old_row
            self.table.indexes.insert_row(self.old_row, self.rowid)
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown undo kind {self.kind!r}")


@dataclass
class Transaction:
    """An open transaction: its undo log and named savepoints."""

    txn_id: int
    undo_log: list[UndoRecord] = field(default_factory=list)
    savepoints: dict[str, int] = field(default_factory=dict)

    def record(self, record: UndoRecord) -> None:
        self.undo_log.append(record)

    def savepoint(self, name: str) -> None:
        self.savepoints[name] = len(self.undo_log)

    def rollback_to(self, name: str) -> None:
        try:
            mark = self.savepoints[name]
        except KeyError:
            raise TransactionError(f"unknown savepoint {name!r}") from None
        while len(self.undo_log) > mark:
            self.undo_log.pop().undo()
        # Later savepoints are invalidated by rolling back past them.
        self.savepoints = {
            sp_name: pos
            for sp_name, pos in self.savepoints.items()
            if pos <= mark
        }

    def rollback_all(self) -> None:
        while self.undo_log:
            self.undo_log.pop().undo()
        self.savepoints.clear()


class TransactionManager:
    """Owns the (single) active transaction of a Database.

    The engine is single-threaded by design — concurrency in the paper's
    system is handled at the object level by :mod:`repro.core.locking`,
    not by the storage engine — so one active transaction suffices.
    """

    def __init__(self, on_commit: Callable[[Transaction], None] | None = None) -> None:
        self._active: Transaction | None = None
        self._next_id = 1
        self._on_commit = on_commit
        self.commits = 0
        self.rollbacks = 0

    @property
    def active(self) -> Transaction | None:
        return self._active

    @property
    def in_transaction(self) -> bool:
        return self._active is not None

    def begin(self) -> Transaction:
        if self._active is not None:
            raise TransactionError(
                "a transaction is already active (use savepoints for nesting)"
            )
        self._active = Transaction(self._next_id)
        self._next_id += 1
        return self._active

    def commit(self) -> None:
        if self._active is None:
            raise TransactionError("commit without begin")
        txn = self._active
        # Durability first: the commit hook journals the transaction, and
        # a journal-append failure (disk full, simulated crash) must leave
        # the transaction open so the caller can still roll it back —
        # nothing may become "committed" that was never made durable.
        if self._on_commit is not None:
            self._on_commit(txn)
        self._active = None
        self.commits += 1

    def rollback(self) -> None:
        if self._active is None:
            raise TransactionError("rollback without begin")
        txn = self._active
        txn.rollback_all()
        self._active = None
        self.rollbacks += 1

    def advance_past(self, txn_id: int) -> None:
        """Ensure future transaction ids are greater than ``txn_id``.

        Called after journal replay so a recovered engine never reissues
        an id that already appears in the journal it will append to.
        """
        if txn_id >= self._next_id:
            self._next_id = txn_id + 1

    def record(self, record: UndoRecord) -> None:
        """Record an undo entry if a transaction is open (no-op otherwise:
        autocommitted statements manage their own scratch transaction)."""
        if self._active is not None:
            self._active.record(record)
