"""The :class:`Database` facade — the engine's public API.

Binds the catalog, constraint checker, trigger registry, transaction
manager and (optionally) a write-ahead journal into the interface the
rest of the reproduction programs against::

    db = Database("mmu")
    db.create_table(schema)
    db.insert("scripts", {"script_name": "cs101", ...})
    rows = db.select("scripts", where=col("author") == "shih")
    with db.transaction():
        db.update_pk("scripts", ("cs101",), {"version": 2})

Statements outside an explicit transaction autocommit atomically (a
CASCADE delete either fully applies or fully rolls back).
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Iterator, Sequence

from repro.obs.instrument import OBS
from repro.rdb.catalog import Catalog
from repro.rdb.constraints import Action, ConstraintChecker, ForeignKey
from repro.rdb.errors import (
    ForeignKeyError,
    RdbError,
    SchemaError,
    TransactionError,
)
from repro.rdb.compile import batch_filter, compiled_exec_enabled, predicate_fn
from repro.rdb.predicate import Expr
from repro.rdb.query import (
    aggregate_table,
    execute_select,
    join_rows,
    matching_view,
    plan_select,
    range_scan,
)
from repro.rdb.table import Table
from repro.rdb.transaction import Transaction, TransactionManager, UndoRecord
from repro.rdb.triggers import TriggerEvent, TriggerRegistry, TriggerTiming
from repro.rdb.types import Schema
from repro.rdb.wal import (
    Journal,
    RecoveryStats,
    decode_row,
    encode_row,
    read_snapshot_info,
    write_snapshot,
)
from repro.util.validation import check_identifier

__all__ = ["Database"]


def _as_pk(pk: Any) -> tuple:
    """Normalize a scalar or sequence primary key into a tuple."""
    if isinstance(pk, tuple):
        return pk
    if isinstance(pk, list):
        return tuple(pk)
    return (pk,)


class Database:
    """An in-memory relational database with optional journaling."""

    def __init__(self, name: str = "db") -> None:
        check_identifier(name, "database name")
        self.name = name
        self._catalog = Catalog()
        self._checker = ConstraintChecker(self._catalog.tables)
        self._triggers = TriggerRegistry()
        self._txn = TransactionManager(on_commit=self._flush_wal)
        self._journal: Journal | None = None
        self._wal_buffer: list[list[Any]] = []
        self._wal_savepoints: dict[str, int] = {}
        self.statements = 0
        self._obs_cache: dict[str, Any] | None = None
        self._txn_began_at: float | None = None
        #: Filled in by :meth:`recover`; None for a fresh database.
        self.recovery_stats: RecoveryStats | None = None

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_table(self, schema: Schema) -> None:
        """Create a table from ``schema`` (see :class:`repro.rdb.Schema`)."""
        self._catalog.create_table(schema)

    def drop_table(self, name: str) -> None:
        """Drop a table (refused while other tables reference it)."""
        self._catalog.drop_table(name)

    def table_names(self) -> list[str]:
        """Sorted names of all tables."""
        return self._catalog.names()

    def table(self, name: str) -> Table:
        """Access the underlying table object (tests, planners)."""
        return self._catalog.get(name)

    def schema(self, name: str) -> Schema:
        """The schema of one table."""
        return self._catalog.get(name).schema

    def create_hash_index(self, table: str, name: str, columns: Sequence[str]) -> None:
        """Create a secondary hash (equality) index."""
        self._catalog.get(table).create_hash_index(name, tuple(columns))

    def create_sorted_index(self, table: str, name: str, column: str) -> None:
        """Create a secondary sorted (range) index."""
        self._catalog.get(table).create_sorted_index(name, column)

    # ------------------------------------------------------------------
    # Triggers
    # ------------------------------------------------------------------
    def register_trigger(
        self,
        name: str,
        table: str,
        event: TriggerEvent,
        timing: TriggerTiming,
        fn: Callable,
    ) -> None:
        """Register a row-level trigger; ``fn(ctx: TriggerContext)``."""
        self._catalog.get(table)  # raise early on unknown table
        self._triggers.register(name, table, event, timing, fn)

    def drop_trigger(self, name: str, table: str) -> bool:
        """Remove a trigger; returns False when it was not registered."""
        return self._triggers.drop(name, table)

    def triggers_on(self, table: str) -> list[str]:
        """Names of the triggers registered on ``table``."""
        return self._triggers.names_for(table)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def begin(self) -> None:
        """Open an explicit transaction."""
        self._txn.begin()
        if OBS.enabled:
            self._txn_began_at = OBS.clock()

    def commit(self) -> None:
        """Commit the explicit transaction (journals its ops)."""
        self._txn.commit()
        self._observe_txn("commit")

    def rollback(self) -> None:
        """Roll back the explicit transaction (undoes its ops)."""
        self._txn.rollback()
        self._wal_buffer.clear()
        self._wal_savepoints.clear()
        self._observe_txn("rollback")

    def savepoint(self, name: str) -> None:
        """Mark a named savepoint inside the open transaction."""
        if self._txn.active is None:
            raise TransactionError("savepoint outside a transaction")
        self._txn.active.savepoint(name)
        self._wal_savepoints[name] = len(self._wal_buffer)

    def rollback_to(self, name: str) -> None:
        """Undo everything back to a savepoint (transaction stays open)."""
        if self._txn.active is None:
            raise TransactionError("rollback_to outside a transaction")
        self._txn.active.rollback_to(name)
        # Drop the journal entries for the ops that were just undone so
        # the committed WAL matches the surviving effects.
        mark = self._wal_savepoints.get(name, 0)
        del self._wal_buffer[mark:]
        self._wal_savepoints = {
            sp: pos for sp, pos in self._wal_savepoints.items() if pos <= mark
        }

    def pending_wal_ops(self) -> list[list[Any]]:
        """Encoded replay ops of the open transaction (copy).

        The two-phase-commit prepare hook: a sharding participant runs
        the transaction's statements (constraints checked, triggers
        fired), then journals this op list inside its PREPARE record —
        the exact bytes a normal commit would have appended — so a
        post-crash commit decision can replay the prepared effects.
        """
        if not self._txn.in_transaction:
            raise TransactionError("pending_wal_ops outside a transaction")
        return [list(op) for op in self._wal_buffer]

    def commit_prepared(self) -> None:
        """Commit the open transaction *without* journaling its ops.

        The counterpart of :meth:`pending_wal_ops`: by the time a 2PC
        participant learns the commit decision, the transaction's ops
        are already durable inside its journaled PREPARE record, and
        the decision itself is journaled as a COMMIT record.  Appending
        a regular transaction frame too would double-apply on replay,
        so the WAL buffer is discarded before the engine commit.
        """
        if not self._txn.in_transaction:
            raise TransactionError("commit_prepared outside a transaction")
        self._wal_buffer.clear()
        self._wal_savepoints.clear()
        self._txn.commit()
        self._observe_txn("commit")

    @property
    def in_transaction(self) -> bool:
        return self._txn.in_transaction

    @contextlib.contextmanager
    def transaction(self) -> Iterator[None]:
        """``with db.transaction():`` — commit on success, rollback on error."""
        self.begin()
        try:
            yield
        except BaseException:
            self.rollback()
            raise
        else:
            try:
                self.commit()
            except BaseException:
                # A failed journal append leaves the transaction open
                # (durability-first commit); undo its effects so the
                # in-memory state matches the journal before re-raising.
                self.rollback()
                raise

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def insert(self, table_name: str, values: dict[str, Any]) -> tuple:
        """Insert one row; returns its primary-key tuple."""
        table = self._catalog.get(table_name)
        row = table.schema.normalize_row(values)
        if OBS.enabled:
            self._obs()["insert"].inc()
        with self._statement():
            self._triggers.fire(
                table_name, TriggerEvent.INSERT, TriggerTiming.BEFORE, None, row
            )
            self._checker.check_insert(table, row)
            rowid = table.apply_insert(row)
            self._txn.record(UndoRecord("insert", table, rowid, None))
            self._wal_buffer.append(["insert", table_name, encode_row(row)])
            self._triggers.fire(
                table_name, TriggerEvent.INSERT, TriggerTiming.AFTER, None, row
            )
        return table.schema.primary_key_of(row)

    def insert_many(
        self, table_name: str, rows: Sequence[dict[str, Any]]
    ) -> list[tuple]:
        """Insert several rows atomically; returns their PK tuples.

        The batched twin of :meth:`insert`: rows are normalized up
        front, trigger dispatchers and constraint/undo/journal handles
        are resolved once, and the per-row loop only does the work that
        must stay per-row — constraint checks consult the live indexes,
        so each row must be checked after its predecessors landed.
        """
        table = self._catalog.get(table_name)
        normalize = table.schema.normalize_row
        normalized = [normalize(values) for values in rows]
        if OBS.enabled and normalized:
            self._obs()["insert"].inc(len(normalized))
        before = self._triggers.dispatcher(
            table_name, TriggerEvent.INSERT, TriggerTiming.BEFORE
        )
        after = self._triggers.dispatcher(
            table_name, TriggerEvent.INSERT, TriggerTiming.AFTER
        )
        check_insert = self._checker.check_insert
        apply_insert = table.apply_insert
        record = self._txn.record
        wal_append = self._wal_buffer.append
        pk_of = table.schema.primary_key_of
        pks: list[tuple] = []
        append_pk = pks.append
        with self._statement():
            # One statement wrapper for the whole batch; the statement
            # counter still advances once per row plus the wrapper,
            # matching the per-row form this replaces.
            self.statements += len(normalized)
            for row in normalized:
                if before is not None:
                    before(None, row)
                check_insert(table, row)
                rowid = apply_insert(row)
                record(UndoRecord("insert", table, rowid, None))
                wal_append(["insert", table_name, encode_row(row)])
                if after is not None:
                    after(None, row)
                append_pk(pk_of(row))
        return pks

    def upsert(self, table_name: str, values: dict[str, Any]) -> bool:
        """Insert, or update the existing row with the same primary key.

        Returns True when a new row was created, False on update.  The
        values must include every primary-key column.
        """
        table = self._catalog.get(table_name)
        schema = table.schema
        try:
            pk = tuple(values[c] for c in schema.primary_key)
        except KeyError as exc:
            raise SchemaError(
                f"upsert into {table_name!r} needs primary-key column "
                f"{exc.args[0]!r}"
            ) from None
        with self._statement():
            if table.rowid_for_pk(pk) is None:
                self.insert(table_name, values)
                return True
            changes = {
                k: v for k, v in values.items()
                if k not in schema.primary_key
            }
            if changes:
                self.update_pk(table_name, pk, changes)
            return False

    def get(self, table_name: str, pk: Any) -> dict[str, Any] | None:
        """Fetch one row by primary key (scalar or tuple); None if absent."""
        table = self._catalog.get(table_name)
        row = table.row_for_pk(_as_pk(pk))
        return dict(row) if row is not None else None

    def exists(self, table_name: str, pk: Any) -> bool:
        """True when a row with primary key ``pk`` exists."""
        return self.get(table_name, pk) is not None

    def count(self, table_name: str, where: Expr | None = None) -> int:
        """Count rows matching ``where`` (all rows when None)."""
        table = self._catalog.get(table_name)
        if where is None:
            return len(table)
        if compiled_exec_enabled():
            return len(batch_filter(where)(table.rows_list()))
        return sum(1 for row in table.rows() if where.eval(row))

    def select(
        self,
        table_name: str,
        where: Expr | None = None,
        order_by: str | Sequence[str] | None = None,
        descending: bool = False,
        limit: int | None = None,
        offset: int = 0,
        columns: Sequence[str] | None = None,
        distinct: bool = False,
    ) -> list[dict[str, Any]]:
        """Select rows; see :func:`repro.rdb.query.execute_select`."""
        table = self._catalog.get(table_name)
        if OBS.enabled:
            self._obs()["select"].inc()
        return execute_select(
            table,
            where=where,
            order_by=order_by,
            descending=descending,
            limit=limit,
            offset=offset,
            columns=columns,
            distinct=distinct,
        )

    def explain(self, table_name: str, where: Expr | None = None) -> str:
        """Describe the access path a select would use (cost, conjuncts,
        range pushdown)."""
        return self.explain_plan(table_name, where).describe()

    def explain_plan(self, table_name: str, where: Expr | None = None):
        """The :class:`~repro.rdb.query.SelectPlan` a select would use
        (programmatic EXPLAIN for tests, benchmarks and plan guards)."""
        table = self._catalog.get(table_name)
        plan, _ = plan_select(table, where)
        return plan

    def statistics(self, table_name: str):
        """Planner statistics snapshot for one table."""
        return self._catalog.get(table_name).statistics()

    def range(
        self,
        table_name: str,
        column: str,
        low: Any = None,
        high: Any = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[dict[str, Any]]:
        """Range query over one column (sorted-index accelerated)."""
        return range_scan(
            self._catalog.get(table_name),
            column,
            low,
            high,
            include_low=include_low,
            include_high=include_high,
        )

    def join(
        self,
        left_table: str,
        right_table: str,
        on: Sequence[tuple[str, str]],
        *,
        where_left: Expr | None = None,
        where_right: Expr | None = None,
        kind: str = "inner",
    ) -> list[dict[str, Any]]:
        """Join two tables; output keys are ``"l.<col>"`` / ``"r.<col>"``."""
        if not compiled_exec_enabled():
            left_rows = self.select(left_table, where=where_left)
            right_rows = self.select(right_table, where=where_right)
            return join_rows(left_rows, right_rows, on, kind=kind)
        # Compiled path: feed the join from no-copy matching views — the
        # merge builds fresh prefixed dicts, so the defensive copies a
        # select makes for each side would be pure waste.
        left = self._catalog.get(left_table)
        right = self._catalog.get(right_table)
        if OBS.enabled:
            self._obs()["select"].inc(2)
        return join_rows(
            matching_view(left, where_left),
            matching_view(right, where_right),
            on,
            kind=kind,
        )

    def aggregate(
        self,
        table_name: str,
        spec: dict[str, tuple[str, str | None]],
        where: Expr | None = None,
        group_by: Sequence[str] | None = None,
    ) -> list[dict[str, Any]]:
        """Grouped aggregation; see :func:`repro.rdb.query.aggregate`."""
        table = self._catalog.get(table_name)
        if OBS.enabled:
            self._obs()["select"].inc()
        return aggregate_table(table, spec, where=where, group_by=group_by)

    def update(
        self,
        table_name: str,
        changes: dict[str, Any],
        where: Expr | None = None,
    ) -> int:
        """Update matching rows; returns the count updated.

        Referenced-key changes follow each child FK's ``on_update``
        action (RESTRICT / CASCADE / SET NULL).
        """
        table = self._catalog.get(table_name)
        target_rowids = self._matching_rowids(table, where)
        if OBS.enabled:
            self._obs()["update"].inc()
        with self._statement():
            for rowid in target_rowids:
                self._update_rowid(table, rowid, changes)
        return len(target_rowids)

    def update_pk(self, table_name: str, pk: Any, changes: dict[str, Any]) -> bool:
        """Update the row with primary key ``pk``; False if absent."""
        table = self._catalog.get(table_name)
        rowid = table.rowid_for_pk(_as_pk(pk))
        if rowid is None:
            return False
        if OBS.enabled:
            self._obs()["update"].inc()
        with self._statement():
            self._update_rowid(table, rowid, changes)
        return True

    def delete(self, table_name: str, where: Expr | None = None) -> int:
        """Delete matching rows (honouring referential actions)."""
        table = self._catalog.get(table_name)
        target_rowids = self._matching_rowids(table, where)
        if OBS.enabled:
            self._obs()["delete"].inc()
        with self._statement():
            deleted = 0
            for rowid in target_rowids:
                if table.get(rowid) is not None:  # may be cascade-deleted
                    self._delete_rowid(table, rowid, _seen=set())
                    deleted += 1
        return deleted

    def delete_pk(self, table_name: str, pk: Any) -> bool:
        """Delete the row with primary key ``pk``; False if absent."""
        table = self._catalog.get(table_name)
        rowid = table.rowid_for_pk(_as_pk(pk))
        if rowid is None:
            return False
        if OBS.enabled:
            self._obs()["delete"].inc()
        with self._statement():
            self._delete_rowid(table, rowid, _seen=set())
        return True

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def attach_journal(self, journal: Journal) -> None:
        """Journal every committed statement from now on."""
        self._journal = journal

    @property
    def journal(self) -> Journal | None:
        """The attached journal, if any (replication reads its LSNs)."""
        return self._journal

    def snapshot(self, path: str) -> None:
        """Dump all rows to ``path`` and checkpoint the journal (if any).

        The snapshot records the journal's last applied LSN as a
        watermark and the journal truncation is staged through an
        atomic marker file, so a crash at any point in the sequence can
        neither lose committed transactions nor double-apply them on
        recovery.
        """
        if self.in_transaction:
            raise TransactionError("cannot snapshot inside a transaction")
        started = OBS.clock() if OBS.enabled else None
        dump = {
            name: [dict(row) for row in self._catalog.get(name).rows()]
            for name in self._catalog.names()
        }
        last_lsn = self._journal.last_lsn if self._journal is not None else 0
        write_snapshot(path, dump, last_lsn=last_lsn)
        if self._journal is not None:
            self._journal.checkpoint(last_lsn)
        if started is not None and OBS.enabled and OBS.registry is not None:
            OBS.registry.histogram("wal.checkpoint_seconds").observe(
                OBS.clock() - started
            )

    def apply_replicated(self, record: dict[str, Any]) -> None:
        """Apply one journal record shipped from a replication primary.

        The follower-side twin of journal replay during
        :meth:`recover`: ops are applied verbatim with no constraint
        re-checks and no trigger re-fires (the primary already did
        both before journaling), and nothing is re-journaled here —
        the replication layer persists the shipped frame bytes to the
        follower's own journal before calling this, so crash recovery
        and live apply see the identical history.
        """
        if self.in_transaction:
            raise TransactionError(
                "cannot apply replicated records inside a transaction"
            )
        for op in record["ops"]:
            self._replay_op(op)
        if isinstance(record.get("txn"), int):
            self._txn.advance_past(record["txn"])

    @classmethod
    def recover(
        cls,
        name: str,
        schemas: Sequence[Schema],
        *,
        snapshot_path: str | None = None,
        journal_path: str | None = None,
        salvage: bool = False,
    ) -> "Database":
        """Rebuild a database from a snapshot plus journal replay.

        Schemas must be supplied in dependency order (parents first), the
        same order used to create the original database.  Replay trusts
        the log: constraints were checked before the ops were journaled,
        and triggers do not re-fire.

        Only journal records above the snapshot's LSN watermark are
        replayed, so a journal that survived a crash between snapshot
        and truncation cannot double-apply transactions.  A torn final
        journal record is tolerated; earlier corruption raises
        :class:`~repro.rdb.errors.JournalCorruptError` unless
        ``salvage`` is set, in which case damaged records are skipped.
        What happened is recorded on the returned database as
        ``recovery_stats`` and mirrored into ``repro.obs`` counters
        when instrumentation is on.
        """
        import os

        db = cls(name)
        for schema in schemas:
            db.create_table(schema)
        stats = RecoveryStats(salvaged=salvage)
        watermark = 0
        if snapshot_path is not None and os.path.exists(snapshot_path):
            tables, watermark = read_snapshot_info(snapshot_path)
            for table_name, rows in tables.items():
                table = db._catalog.get(table_name)
                normalize = table.schema.normalize_row
                # repro-analysis: ignore[mutation-outside-transaction] -- snapshot rows were committed before being dumped; replay needs no undo log
                table.apply_insert_many([normalize(row) for row in rows])
        stats.watermark = watermark
        max_txn_id = 0
        if journal_path is not None:
            for record in Journal.read(
                journal_path, salvage=salvage, start_lsn=watermark,
                stats=stats,
            ):
                for op in record["ops"]:
                    db._replay_op(op)
                if isinstance(record["txn"], int):
                    max_txn_id = max(max_txn_id, record["txn"])
        db._txn.advance_past(max_txn_id)
        db.recovery_stats = stats
        if OBS.enabled and OBS.registry is not None:
            registry = OBS.registry
            if stats.records_recovered:
                registry.counter("wal.records_recovered").inc(
                    stats.records_recovered
                )
            if stats.torn_tails:
                registry.counter("wal.torn_tails").inc(stats.torn_tails)
            if stats.checksum_failures:
                registry.counter("wal.checksum_failures").inc(
                    stats.checksum_failures
                )
        return db

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    @property
    def commits(self) -> int:
        return self._txn.commits

    @property
    def rollbacks(self) -> int:
        return self._txn.rollbacks

    def stats(self) -> dict[str, Any]:
        """Engine counters and per-table row counts."""
        return {
            "name": self.name,
            "tables": {
                name: len(self._catalog.get(name)) for name in self._catalog.names()
            },
            "statements": self.statements,
            "commits": self.commits,
            "rollbacks": self.rollbacks,
            "journaled_records": (
                self._journal.records_written if self._journal else 0
            ),
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _obs(self) -> dict[str, Any]:
        """Cached metric handles, re-resolved when the registry changes.

        Steady-state instrumented cost is one dict hit plus an integer
        add; only the first statement after enable() pays the lookups.
        """
        registry = OBS.registry
        cache = self._obs_cache
        if cache is None or cache["registry"] is not registry:
            assert registry is not None
            cache = self._obs_cache = {
                "registry": registry,
                "insert": registry.counter("rdb.statements", kind="insert"),
                "update": registry.counter("rdb.statements", kind="update"),
                "delete": registry.counter("rdb.statements", kind="delete"),
                "select": registry.counter("rdb.statements", kind="select"),
                "statement_seconds": registry.histogram(
                    "rdb.statement_seconds"
                ),
                "commit": registry.histogram(
                    "rdb.txn_seconds", outcome="commit"
                ),
                "rollback": registry.histogram(
                    "rdb.txn_seconds", outcome="rollback"
                ),
            }
        return cache

    def _observe_txn(self, outcome: str) -> None:
        began = self._txn_began_at
        self._txn_began_at = None
        if began is not None and OBS.enabled:
            self._obs()[outcome].observe(OBS.clock() - began)

    @contextlib.contextmanager
    def _statement(self) -> Iterator[None]:
        """Wrap a statement: reuse the open transaction, or autocommit a
        scratch one so multi-row statements stay atomic."""
        self.statements += 1
        started_at = OBS.clock() if OBS.enabled else None
        try:
            if self._txn.in_transaction:
                yield
                return
            self._txn.begin()
            try:
                yield
            except BaseException:
                self._txn.rollback()
                self._wal_buffer.clear()
                raise
            else:
                try:
                    self._txn.commit()
                except BaseException:
                    self._txn.rollback()
                    self._wal_buffer.clear()
                    raise
        finally:
            if started_at is not None and OBS.enabled:
                self._obs()["statement_seconds"].observe(
                    OBS.clock() - started_at
                )

    @staticmethod
    def _matching_rowids(table: Table, where: Expr | None) -> list[int]:
        """Rowids matching ``where``, snapshotted before mutation starts.

        Uses the compiled predicate closure (or ``Expr.eval`` under the
        ``REPRO_COMPILED_EXEC=0`` kill switch) so bulk UPDATE/DELETE
        target selection runs at compiled-filter speed.
        """
        items = list(table.items())
        predicate = predicate_fn(where)
        if predicate is None:
            return [rowid for rowid, _row in items]
        return [rowid for rowid, row in items if predicate(row)]

    def _update_rowid(
        self, table: Table, rowid: int, changes: dict[str, Any]
    ) -> None:
        old_row = table.get(rowid)
        assert old_row is not None
        new_row = dict(old_row)
        for key, value in changes.items():
            column = table.schema.column(key)  # raises on unknown column
            if value is not None:
                value = column.type.validate(value, column=key)
            new_row[key] = value
        table_name = table.schema.name
        self._triggers.fire(
            table_name, TriggerEvent.UPDATE, TriggerTiming.BEFORE, old_row, new_row
        )
        self._checker.check_update(table, rowid, new_row)
        old_pk = table.schema.primary_key_of(old_row)
        key_changed = any(
            old_row[c] != new_row[c]
            for group in (table.schema.primary_key, *table.schema.unique)
            for c in group
        )
        snapshot = dict(old_row)
        table.apply_update(rowid, new_row)
        self._txn.record(UndoRecord("update", table, rowid, snapshot))
        self._wal_buffer.append(
            [
                "update",
                table_name,
                [encode_row({"v": v})["v"] for v in old_pk],
                encode_row({k: new_row[k] for k in changes}),
            ]
        )
        # Referential ON UPDATE actions run after the parent row changed
        # so cascaded children validate against the *new* key; a RESTRICT
        # raise aborts the whole statement (the scratch transaction rolls
        # the parent change back).
        if key_changed:
            self._apply_on_update_actions(table, snapshot, new_row)
        self._triggers.fire(
            table_name, TriggerEvent.UPDATE, TriggerTiming.AFTER, snapshot, new_row
        )

    def _apply_on_update_actions(
        self, parent: Table, old_row: dict[str, Any], new_row: dict[str, Any]
    ) -> None:
        parent_name = parent.schema.name
        for child, fk, child_rowid in self._checker.referencing_children(
            parent_name, old_row
        ):
            # Only act if the columns this FK targets actually changed.
            if all(old_row[c] == new_row[c] for c in fk.parent_columns):
                continue
            if fk.on_update is Action.RESTRICT:
                raise ForeignKeyError(
                    f"cannot update key of {parent_name!r}: row is referenced "
                    f"by {child.schema.name!r} (ON UPDATE RESTRICT)"
                )
            if fk.on_update is Action.CASCADE:
                child_changes = {
                    cc: new_row[pc] for cc, pc in zip(fk.columns, fk.parent_columns)
                }
            else:  # SET_NULL
                child_changes = {cc: None for cc in fk.columns}
            self._update_rowid(child, child_rowid, child_changes)

    def _delete_rowid(
        self, table: Table, rowid: int, _seen: set[tuple[str, int]]
    ) -> None:
        key = (table.schema.name, rowid)
        if key in _seen:
            return
        _seen.add(key)
        row = table.get(rowid)
        if row is None:
            return
        table_name = table.schema.name
        self._triggers.fire(
            table_name, TriggerEvent.DELETE, TriggerTiming.BEFORE, row, None
        )
        for child, fk, child_rowid in self._checker.referencing_children(
            table_name, row
        ):
            if (child.schema.name, child_rowid) in _seen:
                continue
            if fk.on_delete is Action.RESTRICT:
                raise ForeignKeyError(
                    f"cannot delete from {table_name!r}: row is referenced by "
                    f"{child.schema.name!r} (ON DELETE RESTRICT)"
                )
            if fk.on_delete is Action.CASCADE:
                self._delete_rowid(child, child_rowid, _seen)
            else:  # SET_NULL
                self._update_rowid(
                    child, child_rowid, {cc: None for cc in fk.columns}
                )
        pk = table.schema.primary_key_of(row)
        snapshot = dict(row)
        table.apply_delete(rowid)
        self._txn.record(UndoRecord("delete", table, rowid, snapshot))
        self._wal_buffer.append(
            ["delete", table_name, [encode_row({"v": v})["v"] for v in pk]]
        )
        self._triggers.fire(
            table_name, TriggerEvent.DELETE, TriggerTiming.AFTER, snapshot, None
        )

    def _flush_wal(self, txn: Transaction) -> None:
        if self._journal is not None and self._wal_buffer:
            self._journal.append(txn.txn_id, self._wal_buffer)
        self._wal_buffer = []
        self._wal_savepoints = {}

    # Journal replay applies ops that committed before they were journaled.
    # repro-analysis: ignore[mutation-outside-transaction] -- no undo log on replay
    def _replay_op(self, op: list[Any]) -> None:
        kind = op[0]
        table = self._catalog.get(op[1])
        if kind == "insert":
            table.apply_insert(table.schema.normalize_row(decode_row(op[2])))
        elif kind == "update":
            pk = tuple(decode_row({"v": v})["v"] for v in op[2])
            rowid = table.rowid_for_pk(pk)
            if rowid is not None:
                old = table.get(rowid)
                assert old is not None
                new_row = dict(old)
                new_row.update(decode_row(op[3]))
                table.apply_update(rowid, new_row)
        elif kind == "delete":
            pk = tuple(decode_row({"v": v})["v"] for v in op[2])
            rowid = table.rowid_for_pk(pk)
            if rowid is not None:
                table.apply_delete(rowid)
        else:  # pragma: no cover - defensive
            raise RdbError(f"unknown journal op {kind!r}")
