"""Heap table storage with automatic key indexes.

A :class:`Table` stores normalized rows in a dict keyed by a
monotonically increasing row id, and maintains an :class:`IndexSet`
containing (at minimum) a hash index on the primary key, one per unique
set, and one per foreign key's child columns (so referential-action
lookups are O(1)).  The table applies mutations mechanically; constraint
checking and trigger firing belong to the engine layer.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.rdb.index import HashIndex, IndexSet, SortedIndex
from repro.rdb.stats import TableStatistics, collect_statistics
from repro.rdb.types import Schema

__all__ = ["Table"]

PK_INDEX_NAME = "__pk__"


class Table:
    """One relational table: schema + heap rows + indexes."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._rows: dict[int, dict[str, Any]] = {}
        self._next_rowid = 1
        self.indexes = IndexSet()
        self.indexes.add_hash(HashIndex(PK_INDEX_NAME, schema.primary_key))
        for pos, columns in enumerate(schema.unique):
            if self.indexes.hash_index_on(columns) is None:
                self.indexes.add_hash(HashIndex(f"__unique_{pos}__", columns))
        for pos, fk in enumerate(schema.foreign_keys):
            if self.indexes.hash_index_on(fk.columns) is None:
                self.indexes.add_hash(HashIndex(f"__fk_{pos}__", fk.columns))

    # -- introspection ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[dict[str, Any]]:
        """Iterate row dicts (live references; callers must not mutate)."""
        return iter(self._rows.values())

    def items(self) -> Iterator[tuple[int, dict[str, Any]]]:
        return iter(self._rows.items())

    def rows_list(self) -> list[dict[str, Any]]:
        """The heap as one row-reference snapshot (pointer copies only).

        The single-batch form of :meth:`rows_batches` for consumers that
        read every row anyway — a full-scan filter runs as one fused
        comprehension over it.  Rows are live references; callers must
        not mutate them.
        """
        return list(self._rows.values())

    def rows_batches(self, size: int = 256) -> Iterator[list[dict[str, Any]]]:
        """Yield the heap as row-dict batches for the vectorized executor.

        Snapshots the heap's row references once (pointer copies only),
        then yields list slices — no per-row generator hop, and the
        batches stay stable if the table mutates mid-iteration.  Rows
        are live references; callers must not mutate them.
        """
        values = list(self._rows.values())
        for start in range(0, len(values), size):
            yield values[start:start + size]

    def column_array(self, name: str) -> list[Any]:
        """All values of one column, in heap (insertion) order.

        The columnar view for scan-shaped analytics: one list the caller
        can run C-speed reductions over instead of touching row dicts.
        """
        self.schema.column(name)  # raises on unknown column
        return [row[name] for row in self._rows.values()]

    def get(self, rowid: int) -> dict[str, Any] | None:
        return self._rows.get(rowid)

    def statistics(self) -> TableStatistics:
        """Planner statistics snapshot (row count, per-index counters)."""
        return collect_statistics(self)

    def rowid_for_pk(self, key: tuple) -> int | None:
        """Row id holding primary key ``key``, or None."""
        index = self.indexes.hash_index_on(self.schema.primary_key)
        assert index is not None
        holders = index.lookup(key)
        if not holders:
            return None
        # PK uniqueness is enforced before rows land, so at most one.
        return next(iter(holders))

    def row_for_pk(self, key: tuple) -> dict[str, Any] | None:
        rowid = self.rowid_for_pk(key)
        return None if rowid is None else self._rows[rowid]

    # -- secondary index management ---------------------------------------
    def create_hash_index(self, name: str, columns: tuple[str, ...]) -> None:
        """Create (and backfill) a named hash index."""
        for column in columns:
            self.schema.column(column)  # raises on unknown column
        index = HashIndex(name, columns)
        insert = index.insert
        for rowid, row in self._rows.items():
            insert(tuple(row[c] for c in columns), rowid)
        self.indexes.add_hash(index)

    def create_sorted_index(self, name: str, column: str) -> None:
        """Create (and backfill) a named sorted index on one column."""
        self.schema.column(column)
        index = SortedIndex(name, column)
        index.bulk_load(
            (row[column], rowid) for rowid, row in self._rows.items()
        )
        self.indexes.add_sorted(index)

    # -- raw mutations (no constraint checks) -------------------------------
    def apply_insert(self, row: dict[str, Any]) -> int:
        """Store a normalized row; returns the new row id."""
        rowid = self._next_rowid
        self._next_rowid += 1
        self._rows[rowid] = row
        self.indexes.insert_row(row, rowid)
        return rowid

    def apply_insert_many(self, rows: list[dict[str, Any]]) -> list[int]:
        """Store normalized rows in bulk; returns their row ids.

        The trusted bulk twin of :meth:`apply_insert` for replay paths
        (snapshot load, index backfill): heap stores and index
        maintenance run as batched loops with per-statement overhead
        amortized.  Constraint checking still belongs to the engine,
        which must keep per-row check→apply ordering (uniqueness checks
        consult live indexes), so DML does not route through this.
        """
        store = self._rows
        next_rowid = self._next_rowid
        rowids = []
        append = rowids.append
        for row in rows:
            store[next_rowid] = row
            append(next_rowid)
            next_rowid += 1
        self._next_rowid = next_rowid
        self.indexes.insert_rows(zip(rows, rowids))
        return rowids

    def apply_update(self, rowid: int, new_row: dict[str, Any]) -> dict[str, Any]:
        """Replace the row at ``rowid``; returns the old row."""
        old_row = self._rows[rowid]
        self.indexes.remove_row(old_row, rowid)
        self._rows[rowid] = new_row
        self.indexes.insert_row(new_row, rowid)
        return old_row

    def apply_delete(self, rowid: int) -> dict[str, Any]:
        """Remove the row at ``rowid``; returns it."""
        row = self._rows.pop(rowid)
        self.indexes.remove_row(row, rowid)
        return row
