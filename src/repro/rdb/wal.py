"""Crash-consistent write-ahead journal and snapshot recovery.

Durability model: the engine buffers the logical operations of the
active transaction and, at commit, appends them to the journal as one
*framed* record.  A crash loses at most the transactions that were not
yet forced to stable storage by the active :class:`SyncPolicy`.

Journal format v2 (framed)::

    MAGIC(4) | length u32 | lsn u64 | crc32 u32 | payload (UTF-8 JSON)

* ``length`` is the payload byte count, ``lsn`` a monotonically
  increasing log sequence number, and the CRC covers the length and LSN
  fields plus the payload, so a flipped bit anywhere in a frame is
  detected.
* The reader distinguishes a **torn tail** (damage in the final record:
  the expected signature of a crash mid-append — tolerated, counted)
  from **mid-file corruption** (damage with intact records after it:
  acknowledged history was altered — a strict
  :class:`~repro.rdb.errors.JournalCorruptError`, or scan-forward
  recovery in salvage mode).
* Legacy v1 journals (one JSON object per text line) are read
  transparently, including files that mix v1 lines with v2 frames.
* Besides committed-transaction and checkpoint payloads, a frame may
  carry a two-phase-commit protocol record (``{"2pc": ...}``) — the
  prepare/commit/abort votes of :mod:`repro.sharding`.  They share the
  LSN sequence; :meth:`Journal.read` skips them (single-node recovery
  is unchanged) while :meth:`Journal.read_records` yields all kinds.

Checkpointing: :func:`write_snapshot` records the journal's last
applied LSN as a watermark; recovery replays only records above it, so
a crash between snapshot and journal truncation can never double-apply
transactions.  The truncation itself is staged through an atomically
written ``.ckpt`` marker file that :class:`Journal` completes on the
next open, making snapshot→truncate idempotent across crashes.

Values are encoded JSON-safe: ``datetime`` as ``{"$dt": iso}``,
``bytes`` as ``{"$b64": ...}``; a genuine user dict whose only key is
one of the markers is wrapped as ``{"$esc": {...}}`` so it round-trips
unchanged.
"""

from __future__ import annotations

import base64
import datetime as _dt
import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, BinaryIO, Callable, Iterator

from repro.obs.instrument import OBS
from repro.rdb.errors import JournalCorruptError

__all__ = [
    "encode_value",
    "decode_value",
    "SyncPolicy",
    "RecoveryStats",
    "WalFrame",
    "read_frames",
    "parse_frame",
    "JournalTailer",
    "Journal",
    "write_snapshot",
    "read_snapshot",
    "read_snapshot_info",
]

#: Frame magic for journal format v2.
MAGIC = b"WJ2\x00"
_HEADER = struct.Struct("<IQ")  # payload length, lsn
_CRC = struct.Struct("<I")

#: Key marking a v2 snapshot payload ("$" can never start a table name).
_SNAPSHOT_KEY = "$snapshot"

#: Reserved single-key dict shapes the value codec must escape.
_MARKER_KEYS = ({"$dt"}, {"$b64"}, {"$esc"})


# ---------------------------------------------------------------------------
# Value codec
# ---------------------------------------------------------------------------
def encode_value(value: Any) -> Any:
    """Encode one stored value into a JSON-safe form."""
    if isinstance(value, _dt.datetime):
        return {"$dt": value.isoformat()}
    if isinstance(value, (bytes, bytearray)):
        return {"$b64": base64.b64encode(bytes(value)).decode("ascii")}
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        if set(value) in _MARKER_KEYS:
            # A user dict that *looks like* a codec marker: wrap it so
            # decode does not mistake it for a datetime/bytes envelope.
            return {"$esc": {k: encode_value(v) for k, v in value.items()}}
        return {k: encode_value(v) for k, v in value.items()}
    return value


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict):
        keys = set(value)
        if keys == {"$esc"} and isinstance(value["$esc"], dict):
            return {k: decode_value(v) for k, v in value["$esc"].items()}
        if keys == {"$dt"} and isinstance(value["$dt"], str):
            return _dt.datetime.fromisoformat(value["$dt"])
        if keys == {"$b64"} and isinstance(value["$b64"], str):
            return base64.b64decode(value["$b64"])
        return {k: decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


def encode_row(row: dict[str, Any]) -> dict[str, Any]:
    return {k: encode_value(v) for k, v in row.items()}


def decode_row(row: dict[str, Any]) -> dict[str, Any]:
    return {k: decode_value(v) for k, v in row.items()}


# ---------------------------------------------------------------------------
# Sync policy
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SyncPolicy:
    """When the journal forces written records to stable storage.

    * ``none`` — flush to the OS only (the historical fsync-less mode;
      a machine crash may lose flushed-but-unsynced transactions);
    * ``commit`` — fsync after every committed transaction (the acked
      ⇒ durable guarantee the crash harness verifies);
    * ``interval-N`` — group commit: one fsync per N appended records,
      amortizing the sync cost across a batch.

    ``fsync`` is injectable so tests and the crash harness can count or
    intercept sync points deterministically.
    """

    mode: str
    interval: int = 0
    fsync: Callable[[int], None] = os.fsync

    def __post_init__(self) -> None:
        if self.mode not in ("none", "commit", "interval"):
            raise ValueError(f"unknown sync mode {self.mode!r}")
        if self.mode == "interval" and self.interval < 1:
            raise ValueError("interval sync needs interval >= 1")

    @classmethod
    def none(cls) -> "SyncPolicy":
        """Flush-only durability (no fsync)."""
        return cls("none")

    @classmethod
    def commit(cls) -> "SyncPolicy":
        """fsync every committed transaction."""
        return cls("commit")

    @classmethod
    def every(cls, n: int) -> "SyncPolicy":
        """Group commit: fsync once per ``n`` records."""
        return cls("interval", int(n))

    @classmethod
    def parse(cls, spec: "SyncPolicy | str") -> "SyncPolicy":
        """Accept a policy object, ``"none"``, ``"commit"`` or
        ``"interval-N"``."""
        if isinstance(spec, SyncPolicy):
            return spec
        text = str(spec).strip().lower()
        if text == "none":
            return cls.none()
        if text == "commit":
            return cls.commit()
        if text.startswith("interval-"):
            return cls.every(int(text[len("interval-"):]))
        raise ValueError(
            f"unknown sync policy {spec!r} "
            f"(expected 'none', 'commit' or 'interval-N')"
        )

    @property
    def name(self) -> str:
        """Canonical spelling (``none`` / ``commit`` / ``interval-N``)."""
        if self.mode == "interval":
            return f"interval-{self.interval}"
        return self.mode

    def due(self, pending: int) -> bool:
        """True when ``pending`` unsynced records require an fsync now."""
        if self.mode == "commit":
            return pending >= 1
        if self.mode == "interval":
            return pending >= self.interval
        return False


# ---------------------------------------------------------------------------
# Recovery statistics
# ---------------------------------------------------------------------------
@dataclass
class RecoveryStats:
    """What one journal read / recovery pass observed.

    Filled in by :meth:`Journal.read` (pass an instance via ``stats=``)
    and attached to recovered databases as ``db.recovery_stats``.
    """

    records_recovered: int = 0
    records_skipped_watermark: int = 0
    torn_tails: int = 0
    checksum_failures: int = 0
    bytes_skipped: int = 0
    last_lsn: int = 0
    watermark: int = 0
    salvaged: bool = False

    def as_dict(self) -> dict[str, int | bool]:
        """Plain-dict view for reports and protocol responses."""
        return {
            "records_recovered": self.records_recovered,
            "records_skipped_watermark": self.records_skipped_watermark,
            "torn_tails": self.torn_tails,
            "checksum_failures": self.checksum_failures,
            "bytes_skipped": self.bytes_skipped,
            "last_lsn": self.last_lsn,
            "watermark": self.watermark,
            "salvaged": self.salvaged,
        }


# ---------------------------------------------------------------------------
# Frame-level reader
# ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class _Entry:
    """One parsed journal record and its byte extent."""

    kind: str  # "txn" | "ckpt" | "2pc"
    lsn: int
    start: int
    end: int
    txn_id: int | None = None
    ops: list[Any] | None = None
    #: decoded payload of a ``2pc`` record (prepare/commit/abort/decision)
    payload: dict[str, Any] | None = None


def _frame(lsn: int, payload: bytes) -> bytes:
    """Build one v2 frame around ``payload``."""
    header = _HEADER.pack(len(payload), lsn)
    crc = zlib.crc32(payload, zlib.crc32(header))
    return MAGIC + header + _CRC.pack(crc) + payload


def _parse_frame(
    data: bytes, pos: int, last_lsn: int
) -> tuple[_Entry | None, int, str | None]:
    """Parse a v2 frame at ``pos``; returns (entry, next_pos, problem)."""
    header_start = pos + len(MAGIC)
    crc_start = header_start + _HEADER.size
    payload_start = crc_start + _CRC.size
    if payload_start > len(data):
        return None, pos, "torn frame header"
    length, lsn = _HEADER.unpack_from(data, header_start)
    (crc,) = _CRC.unpack_from(data, crc_start)
    payload_end = payload_start + length
    if payload_end > len(data):
        return None, pos, "frame extends past end of file"
    payload = data[payload_start:payload_end]
    expected = zlib.crc32(payload, zlib.crc32(data[header_start:crc_start]))
    if crc != expected:
        return None, pos, "checksum mismatch"
    try:
        obj = json.loads(payload.decode("utf-8"))
    except ValueError:
        return None, pos, "checksummed payload is not valid JSON"
    if isinstance(obj, dict) and set(obj) == {"ckpt"}:
        if lsn < last_lsn:
            return None, pos, f"checkpoint LSN went backwards ({lsn})"
        entry = _Entry("ckpt", lsn, pos, payload_end)
        return entry, payload_end, None
    if isinstance(obj, dict) and "2pc" in obj:
        # Two-phase-commit protocol record (prepare/commit/abort on a
        # participant, decision/end on a coordinator).
        if lsn <= last_lsn:
            return None, pos, f"LSN went backwards ({lsn} after {last_lsn})"
        entry = _Entry("2pc", lsn, pos, payload_end, payload=obj)
        return entry, payload_end, None
    if not (isinstance(obj, dict) and "txn" in obj and "ops" in obj):
        return None, pos, "payload is not a transaction record"
    if lsn <= last_lsn:
        return None, pos, f"LSN went backwards ({lsn} after {last_lsn})"
    entry = _Entry("txn", lsn, pos, payload_end, obj["txn"], obj["ops"])
    return entry, payload_end, None


def _parse_v1_line(
    data: bytes, pos: int, last_lsn: int
) -> tuple[_Entry | None, int, str | None]:
    """Parse a legacy v1 JSON line at ``pos``.

    v1 records carry no LSN on disk; they are assigned implicit
    sequential LSNs so the watermark protocol covers legacy journals.
    """
    newline = data.find(b"\n", pos)
    end = len(data) if newline == -1 else newline + 1
    raw = data[pos:end].strip()
    if not raw:
        return None, end, None  # blank line / trailing whitespace
    try:
        obj = json.loads(raw.decode("utf-8"))
    except ValueError:
        return None, pos, ("torn line" if newline == -1 else
                           "unparseable line")
    if not (isinstance(obj, dict) and "txn" in obj and "ops" in obj):
        return None, pos, "line is not a transaction record"
    entry = _Entry("txn", last_lsn + 1, pos, end, obj["txn"], obj["ops"])
    return entry, end, None


def _has_later_record(data: bytes, pos: int) -> bool:
    """Is there plausibly valid journal content after the damage at
    ``pos``?  True ⇒ mid-file corruption; False ⇒ torn tail."""
    if data.find(MAGIC, pos + 1) != -1:
        return True
    newline = data.find(b"\n", pos)
    if newline == -1:
        return False
    for line in data[newline + 1:].split(b"\n"):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except ValueError:
            continue
        if isinstance(obj, dict) and "txn" in obj and "ops" in obj:
            return True
    return False


def _next_candidate(data: bytes, pos: int) -> int:
    """First offset after ``pos`` where a record could plausibly start."""
    candidates = []
    magic = data.find(MAGIC, pos + 1)
    if magic != -1:
        candidates.append(magic)
    newline = data.find(b"\n", pos)
    if newline != -1 and newline + 1 > pos:
        candidates.append(newline + 1)
    return min(candidates) if candidates else len(data)


def _scan_entries(
    data: bytes,
    *,
    salvage: bool,
    stats: RecoveryStats,
    path: object = "<journal>",
) -> Iterator[_Entry]:
    """Yield every readable record, classifying damage on the way.

    Torn tail (damage in the final record): tolerated, counted, stop.
    Mid-file corruption: :class:`JournalCorruptError` in strict mode; in
    salvage mode the reader scans forward to the next plausible record
    boundary and keeps going.
    """
    pos = 0
    last_lsn = 0
    size = len(data)
    while pos < size:
        if data.startswith(MAGIC, pos):
            entry, next_pos, problem = _parse_frame(data, pos, last_lsn)
        else:
            entry, next_pos, problem = _parse_v1_line(data, pos, last_lsn)
        if problem is None:
            if entry is not None:
                last_lsn = entry.lsn
                yield entry
            pos = next_pos
            continue
        if _has_later_record(data, pos):
            if not salvage:
                raise JournalCorruptError(path, pos, problem)
            skip_to = _next_candidate(data, pos)
            stats.checksum_failures += 1
            stats.bytes_skipped += skip_to - pos
            pos = skip_to
            continue
        stats.torn_tails += 1
        stats.bytes_skipped += size - pos
        return


# ---------------------------------------------------------------------------
# Frame streaming (replication substrate)
# ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class WalFrame:
    """One complete journal frame, parsed *and* in wire form.

    ``data`` is the exact v2 frame bytes (legacy v1 lines are re-framed
    on read), so a frame can be shipped to a follower and appended to
    its local journal verbatim — the CRC travels with it end to end.
    """

    kind: str  # "txn" | "ckpt" | "2pc"
    lsn: int
    txn_id: int | None
    ops: list[Any] | None
    data: bytes
    #: decoded 2PC protocol payload (``kind == "2pc"`` only)
    payload: dict[str, Any] | None = None

    def record(self) -> dict[str, Any]:
        """The replay-shaped dict (same shape :meth:`Journal.read` yields)."""
        if self.kind == "2pc":
            return {"2pc": self.payload, "lsn": self.lsn}
        return {"txn": self.txn_id, "ops": self.ops, "lsn": self.lsn}


def _entry_frame(entry: _Entry, data: bytes) -> WalFrame:
    """Build a :class:`WalFrame` for ``entry`` parsed out of ``data``."""
    raw = data[entry.start:entry.end]
    if not raw.startswith(MAGIC):
        # Legacy v1 line: re-frame as v2 so consumers ship one format.
        if entry.kind == "ckpt":  # pragma: no cover - v1 had no ckpt
            payload = json.dumps({"ckpt": entry.lsn},
                                 separators=(",", ":")).encode("utf-8")
        else:
            payload = json.dumps({"txn": entry.txn_id, "ops": entry.ops},
                                 separators=(",", ":")).encode("utf-8")
        raw = _frame(entry.lsn, payload)
    return WalFrame(entry.kind, entry.lsn, entry.txn_id, entry.ops, raw,
                    entry.payload)


def read_frames(
    path: str | os.PathLike[str],
    *,
    from_lsn: int = 0,
    stats: RecoveryStats | None = None,
) -> Iterator[WalFrame]:
    """Yield every complete frame with ``lsn > from_lsn``, in order.

    The resumable form of :meth:`Journal.read`: callers remember the
    last LSN they consumed and pass it back to continue where they
    stopped.  Checkpoint frames are yielded too (their LSN is the
    checkpoint watermark) so consumers can detect epoch boundaries.  A
    torn final frame — the signature of reading concurrently with an
    append — is never yielded; mid-file corruption raises
    :class:`~repro.rdb.errors.JournalCorruptError`.
    """
    path = Path(path)
    if stats is None:
        stats = RecoveryStats()
    if not path.exists():
        return
    data = path.read_bytes()
    for entry in _scan_entries(data, salvage=False, stats=stats, path=path):
        if entry.lsn <= from_lsn:
            if entry.kind == "txn":
                stats.records_skipped_watermark += 1
            continue
        yield _entry_frame(entry, data)


def parse_frame(data: bytes) -> WalFrame:
    """Parse one standalone v2 frame (e.g. shipped over the network).

    The CRC is verified, so a frame that survived the trip parses to
    exactly what the primary journaled; damage raises
    :class:`~repro.rdb.errors.JournalCorruptError`.
    """
    if not data.startswith(MAGIC):
        raise JournalCorruptError("<frame>", 0, "missing frame magic")
    entry, _end, problem = _parse_frame(data, 0, 0)
    if problem is not None or entry is None:
        raise JournalCorruptError("<frame>", 0, problem or "unparseable")
    return WalFrame(entry.kind, entry.lsn, entry.txn_id, entry.ops,
                    data[entry.start:entry.end], entry.payload)


class JournalTailer:
    """Incrementally follow a live journal without whole-file replay.

    Keeps the byte offset of the last complete frame consumed, so each
    :meth:`poll` reads only the bytes appended since.  Two liveness
    properties the replication layer depends on:

    * **never a torn frame** — a frame still being appended (header or
      payload short of its declared length, or CRC not yet valid) is
      left for the next poll rather than yielded;
    * **epoch restarts survive** — when the journal is checkpointed
      (the file is atomically rewritten to a single checkpoint frame)
      the tailer detects the rewrite, rescans from the top and resumes
      above ``last_lsn``, so frames are never re-yielded or lost.

    Mid-file corruption in newly appended bytes raises
    :class:`~repro.rdb.errors.JournalCorruptError` — a shipping primary
    must not stream damaged history.
    """

    #: bytes of the file head used to detect an atomic rewrite
    _TOKEN_LEN = len(MAGIC) + _HEADER.size + _CRC.size

    def __init__(
        self, path: str | os.PathLike[str], *, from_lsn: int = 0
    ) -> None:
        self.path = Path(path)
        self.last_lsn = from_lsn
        self._pos = 0
        self._head_token = b""

    def poll(self) -> list[WalFrame]:
        """All complete frames appended since the last poll."""
        if not self.path.exists():
            return []
        size = self.path.stat().st_size
        with self.path.open("rb") as fh:
            head = fh.read(self._TOKEN_LEN)
            if size < self._pos or head != self._head_token:
                # The file was rewritten under us (checkpoint/compaction)
                # or this is the first poll: rescan from the top.  The
                # last_lsn filter below deduplicates anything re-read.
                self._pos = 0
                self._head_token = head
            fh.seek(self._pos)
            data = fh.read()
        frames: list[WalFrame] = []
        pos = 0
        scan_lsn = 0  # monotonicity is re-checked against last_lsn below
        while pos < len(data):
            if data.startswith(MAGIC, pos):
                entry, next_pos, problem = _parse_frame(data, pos, scan_lsn)
            else:
                entry, next_pos, problem = _parse_v1_line(data, pos, scan_lsn)
            if problem is not None:
                if _has_later_record(data, pos):
                    raise JournalCorruptError(
                        self.path, self._pos + pos, problem
                    )
                break  # torn tail: an append in flight — retry next poll
            if entry is None:  # blank v1 line
                pos = next_pos
                continue
            scan_lsn = entry.lsn
            if entry.lsn > self.last_lsn:
                frames.append(_entry_frame(entry, data))
                self.last_lsn = entry.lsn
            pos = next_pos
        self._pos += pos
        return frames


# ---------------------------------------------------------------------------
# Journal
# ---------------------------------------------------------------------------
class Journal:
    """An append-only, checksummed file of committed transactions.

    Each committed transaction is one v2 frame whose JSON payload is
    ``{"txn": id, "ops": [op, ...]}`` where an op is
    ``["insert", table, row]``, ``["update", table, pk, changes]`` or
    ``["delete", table, pk]`` with pk as a list.  Opening an existing
    journal resumes its LSN sequence, completes any checkpoint that a
    crash interrupted (via the ``.ckpt`` marker file), and trims a torn
    tail so later appends never bury valid frames behind garbage.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        sync: "SyncPolicy | str" = "none",
        salvage: bool = False,
        file_wrapper: Callable[[BinaryIO], BinaryIO] | None = None,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.sync_policy = SyncPolicy.parse(sync)
        self._file_wrapper = file_wrapper
        self.records_written = 0
        self.last_lsn = 0
        self._pending_sync = 0
        #: What the open-time scan of an existing file observed.
        self.open_stats = RecoveryStats(salvaged=salvage)
        self._fh: BinaryIO | None = None

        marker = self._marker_path()
        if marker.exists():
            # A crash interrupted snapshot→truncate after the marker was
            # durably written: every record at or below the marker LSN is
            # already in the snapshot, so finish the truncation now.
            watermark = int(
                json.loads(marker.read_text(encoding="utf-8"))["last_lsn"]
            )
            self._rewrite(watermark, [])
            marker.unlink()
            self.last_lsn = watermark
        elif self.path.exists() and self.path.stat().st_size > 0:
            data = self.path.read_bytes()
            entries = list(
                _scan_entries(
                    data, salvage=salvage, stats=self.open_stats,
                    path=self.path,
                )
            )
            if entries:
                self.last_lsn = entries[-1].lsn
            if salvage and (self.open_stats.checksum_failures
                            or self.open_stats.torn_tails):
                # Compact: rewrite only the surviving records (re-framed
                # as v2) so the damage cannot resurface on a later read.
                base = 0
                txn_entries = []
                for entry in entries:
                    if entry.kind == "ckpt":
                        base = entry.lsn
                    else:
                        txn_entries.append(entry)
                self._rewrite(base, txn_entries)
            else:
                valid_end = entries[-1].end if entries else 0
                if valid_end < len(data):
                    # Torn tail from a crash mid-append: trim it so the
                    # file ends on a record boundary again.
                    with self.path.open("r+b") as fh:
                        fh.truncate(valid_end)
        self._fh = self._open("ab")

    # -- byte-level helpers --------------------------------------------------
    def _marker_path(self) -> Path:
        return self.path.with_name(self.path.name + ".ckpt")

    def _open(self, mode: str) -> BinaryIO:
        fh = self.path.open(mode)
        if self._file_wrapper is not None:
            fh = self._file_wrapper(fh)
        return fh

    def _rewrite(self, base_lsn: int, entries: list[_Entry]) -> None:
        """Replace the file with a checkpoint frame plus ``entries``."""
        fh = self._open("wb")
        try:
            payload = json.dumps({"ckpt": base_lsn},
                                 separators=(",", ":")).encode("utf-8")
            fh.write(_frame(base_lsn, payload))
            for entry in entries:
                if entry.kind == "2pc":
                    record: dict[str, Any] = entry.payload or {}
                else:
                    record = {"txn": entry.txn_id, "ops": entry.ops}
                body = json.dumps(
                    record, separators=(",", ":"),
                ).encode("utf-8")
                fh.write(_frame(entry.lsn, body))
            fh.flush()
            os.fsync(fh.fileno())
        finally:
            fh.close()

    # -- public API ----------------------------------------------------------
    def append(self, txn_id: int, ops: list[list[Any]]) -> int:
        """Append one committed transaction's ops; returns its LSN."""
        assert self._fh is not None
        lsn = self.last_lsn + 1
        payload = json.dumps({"txn": txn_id, "ops": ops},
                             separators=(",", ":")).encode("utf-8")
        self._fh.write(_frame(lsn, payload))
        self._fh.flush()
        self.last_lsn = lsn
        self.records_written += 1
        self._pending_sync += 1
        if self.sync_policy.due(self._pending_sync):
            self.sync()
        return lsn

    def append_2pc(self, payload: dict[str, Any]) -> int:
        """Append one two-phase-commit protocol record; returns its LSN.

        ``payload`` must carry the ``"2pc"`` discriminator key (e.g.
        ``{"2pc": "prepare", "gtxn": ..., "ops": [...]}``).  The record
        is **always forced to stable storage** before this returns,
        whatever the journal's sync policy: a participant's vote and a
        coordinator's commit decision are only meaningful once durable,
        so 2PC records cannot ride a lazy group-commit window.
        """
        assert self._fh is not None
        if "2pc" not in payload:
            raise ValueError("2pc record payload must carry the '2pc' key")
        lsn = self.last_lsn + 1
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        self._fh.write(_frame(lsn, body))
        self._fh.flush()
        self.last_lsn = lsn
        self.records_written += 1
        self._pending_sync += 1
        self.sync()
        return lsn

    def append_raw(self, lsn: int, data: bytes) -> int:
        """Append one pre-built frame verbatim, adopting its LSN.

        The replication follower's append path: frames arrive from the
        primary already framed and checksummed (:class:`WalFrame.data`)
        and are written byte-for-byte, so the follower's journal is a
        prefix-identical copy of the primary's and the same recovery
        machinery applies after a follower crash.  The LSN must advance
        the local sequence.
        """
        assert self._fh is not None
        if lsn <= self.last_lsn:
            raise ValueError(
                f"append_raw LSN {lsn} does not advance past {self.last_lsn}"
            )
        self._fh.write(data)
        self._fh.flush()
        self.last_lsn = lsn
        self.records_written += 1
        self._pending_sync += 1
        if self.sync_policy.due(self._pending_sync):
            self.sync()
        return lsn

    def sync(self) -> None:
        """Force buffered records to stable storage (one fsync batch)."""
        assert self._fh is not None
        if self._pending_sync == 0:
            return
        self._fh.flush()
        self.sync_policy.fsync(self._fh.fileno())
        self._pending_sync = 0
        if OBS.enabled and OBS.registry is not None:
            OBS.registry.counter(
                "wal.sync_batches", policy=self.sync_policy.name
            ).inc()

    def tell(self) -> int:
        """Current end offset of the journal file in bytes."""
        assert self._fh is not None
        return self._fh.tell()

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            if self.sync_policy.mode != "none":
                self.sync()
            self._fh.close()

    def checkpoint(self, last_lsn: int | None = None) -> None:
        """Start a fresh journal epoch above ``last_lsn`` (default: the
        last appended LSN).

        The sequence is crash-safe: an atomically-replaced ``.ckpt``
        marker records the watermark *before* the file is truncated, and
        a half-done checkpoint is completed on the next open.  The new
        epoch begins with a checkpoint frame carrying the watermark so
        the LSN sequence stays monotonic across truncations.
        """
        assert self._fh is not None
        if last_lsn is None:
            last_lsn = self.last_lsn
        marker = self._marker_path()
        tmp = marker.with_name(marker.name + ".tmp")
        with tmp.open("wb") as fh:
            fh.write(json.dumps({"last_lsn": last_lsn}).encode("utf-8"))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, marker)
        self._fh.close()
        self._rewrite(last_lsn, [])
        self._fh = self._open("ab")
        marker.unlink()
        self.records_written = 0
        self._pending_sync = 0
        self.last_lsn = max(self.last_lsn, last_lsn)

    def truncate(self) -> None:
        """Discard all journal contents (used after a snapshot).

        Implemented as :meth:`checkpoint` at the current LSN, so the
        sequence is atomic with respect to crashes and the LSN sequence
        keeps increasing.
        """
        self.checkpoint(self.last_lsn)

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @staticmethod
    def read(
        path: str | os.PathLike[str],
        *,
        salvage: bool = False,
        start_lsn: int = 0,
        stats: RecoveryStats | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Yield committed transaction records above ``start_lsn``.

        Each yielded dict is ``{"txn": id, "ops": [...], "lsn": n}``.
        A torn final record (crash mid-append) is tolerated and counted;
        corruption before the final record raises
        :class:`~repro.rdb.errors.JournalCorruptError` unless
        ``salvage`` is set, in which case damaged records are skipped
        and counted in ``stats``.  Legacy v1 journals (JSON lines) are
        read transparently with implicit sequential LSNs.
        """
        path = Path(path)
        if stats is None:
            stats = RecoveryStats()
        stats.watermark = max(stats.watermark, start_lsn)
        stats.salvaged = stats.salvaged or salvage
        if not path.exists():
            return
        data = path.read_bytes()
        for entry in _scan_entries(data, salvage=salvage, stats=stats,
                                   path=path):
            stats.last_lsn = entry.lsn
            if entry.kind != "txn":
                continue
            if entry.lsn <= start_lsn:
                stats.records_skipped_watermark += 1
                continue
            stats.records_recovered += 1
            yield {"txn": entry.txn_id, "ops": entry.ops, "lsn": entry.lsn}

    @staticmethod
    def read_records(
        path: str | os.PathLike[str],
        *,
        salvage: bool = False,
        start_lsn: int = 0,
        stats: RecoveryStats | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Yield *every* record kind above ``start_lsn``, in LSN order.

        The 2PC-aware superset of :meth:`read`: transaction records
        yield ``{"kind": "txn", "txn": id, "ops": [...], "lsn": n}`` and
        protocol records yield ``{"kind": "2pc", "payload": {...},
        "lsn": n}``.  Participant and coordinator recovery need the
        interleaving — a prepared transaction's ops must be applied at
        the position of its commit record, not at its prepare — which
        the txn-only :meth:`read` view cannot express.  Damage handling
        matches :meth:`read`.
        """
        path = Path(path)
        if stats is None:
            stats = RecoveryStats()
        stats.watermark = max(stats.watermark, start_lsn)
        stats.salvaged = stats.salvaged or salvage
        if not path.exists():
            return
        data = path.read_bytes()
        for entry in _scan_entries(data, salvage=salvage, stats=stats,
                                   path=path):
            stats.last_lsn = entry.lsn
            if entry.kind == "ckpt":
                continue
            if entry.lsn <= start_lsn:
                stats.records_skipped_watermark += 1
                continue
            stats.records_recovered += 1
            if entry.kind == "2pc":
                yield {"kind": "2pc", "payload": entry.payload,
                       "lsn": entry.lsn}
            else:
                yield {"kind": "txn", "txn": entry.txn_id,
                       "ops": entry.ops, "lsn": entry.lsn}


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------
def write_snapshot(
    path: str | os.PathLike[str],
    tables: dict[str, list[dict[str, Any]]],
    *,
    last_lsn: int = 0,
) -> None:
    """Atomically dump ``{table: [row, ...]}`` plus the journal
    watermark to ``path``.

    ``last_lsn`` records the last journal LSN whose effects the
    snapshot contains; recovery replays only records above it, which is
    what makes the snapshot→truncate sequence immune to double-apply.
    The temporary file is fsynced before the atomic rename so a crash
    can never leave a half-written snapshot under the final name.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        _SNAPSHOT_KEY: 2,
        "last_lsn": int(last_lsn),
        "tables": {
            name: [encode_row(row) for row in rows]
            for name, rows in tables.items()
        },
    }
    tmp = path.with_suffix(path.suffix + ".tmp")
    with tmp.open("wb") as fh:
        fh.write(json.dumps(payload, separators=(",", ":")).encode("utf-8"))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def read_snapshot_info(
    path: str | os.PathLike[str],
) -> tuple[dict[str, list[dict[str, Any]]], int]:
    """Load a snapshot; returns ``(tables, last_applied_lsn)``.

    Legacy snapshots (a bare ``{table: rows}`` mapping) read with a
    watermark of 0, i.e. "replay the whole journal", which matches the
    pre-watermark semantics they were written under.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(payload, dict) and payload.get(_SNAPSHOT_KEY) == 2:
        raw_tables = payload["tables"]
        watermark = int(payload.get("last_lsn", 0))
    else:
        raw_tables = payload
        watermark = 0
    tables = {
        name: [decode_row(row) for row in rows]
        for name, rows in raw_tables.items()
    }
    return tables, watermark


def read_snapshot(
    path: str | os.PathLike[str],
) -> dict[str, list[dict[str, Any]]]:
    """Load just the tables of a snapshot written by
    :func:`write_snapshot` (either format)."""
    return read_snapshot_info(path)[0]
