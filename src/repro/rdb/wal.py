"""Write-ahead journal and snapshot recovery.

Durability model: the engine buffers the logical operations of the
active transaction and, at commit, appends them to the journal as one
JSON line (``{"txn": id, "ops": [...]}``).  A crash therefore loses at
most the uncommitted transaction.  A snapshot dumps every table's rows
to a JSON file and truncates the journal; recovery loads the snapshot
(if any) and replays committed journal lines in order.

Values are encoded JSON-safe: ``datetime`` as ``{"$dt": iso}``,
``bytes`` as ``{"$b64": ...}``; everything else the engine stores is
already JSON-representable.
"""

from __future__ import annotations

import base64
import datetime as _dt
import json
import os
from pathlib import Path
from typing import Any, Iterator

__all__ = ["encode_value", "decode_value", "Journal", "write_snapshot", "read_snapshot"]


def encode_value(value: Any) -> Any:
    """Encode one stored value into a JSON-safe form."""
    if isinstance(value, _dt.datetime):
        return {"$dt": value.isoformat()}
    if isinstance(value, (bytes, bytearray)):
        return {"$b64": base64.b64encode(bytes(value)).decode("ascii")}
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        return {k: encode_value(v) for k, v in value.items()}
    return value


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict):
        if set(value) == {"$dt"}:
            return _dt.datetime.fromisoformat(value["$dt"])
        if set(value) == {"$b64"}:
            return base64.b64decode(value["$b64"])
        return {k: decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


def encode_row(row: dict[str, Any]) -> dict[str, Any]:
    return {k: encode_value(v) for k, v in row.items()}


def decode_row(row: dict[str, Any]) -> dict[str, Any]:
    return {k: decode_value(v) for k, v in row.items()}


class Journal:
    """An append-only file of committed transactions.

    Each line is a JSON object ``{"txn": int, "ops": [op, ...]}`` where an
    op is ``["insert", table, row]``, ``["update", table, pk, changes]``
    or ``["delete", table, pk]`` with pk as a list.  Lines are written
    with an ``fsync``-less flush — adequate for a simulation substrate,
    and the recovery path tolerates a truncated trailing line.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")
        self.records_written = 0

    def append(self, txn_id: int, ops: list[list[Any]]) -> None:
        """Append one committed transaction's ops."""
        line = json.dumps({"txn": txn_id, "ops": ops}, separators=(",", ":"))
        self._fh.write(line + "\n")
        self._fh.flush()
        self.records_written += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def truncate(self) -> None:
        """Discard all journal contents (used after a snapshot)."""
        self._fh.close()
        self._fh = self.path.open("w", encoding="utf-8")
        self.records_written = 0

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @staticmethod
    def read(path: str | os.PathLike[str]) -> Iterator[dict[str, Any]]:
        """Yield committed transaction records; a torn final line (crash
        mid-append) is skipped silently."""
        path = Path(path)
        if not path.exists():
            return
        with path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    return  # torn tail — everything before it is intact


def write_snapshot(
    path: str | os.PathLike[str], tables: dict[str, list[dict[str, Any]]]
) -> None:
    """Atomically dump ``{table: [row, ...]}`` to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        name: [encode_row(row) for row in rows] for name, rows in tables.items()
    }
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, separators=(",", ":")), encoding="utf-8")
    os.replace(tmp, path)


def read_snapshot(path: str | os.PathLike[str]) -> dict[str, list[dict[str, Any]]]:
    """Load a snapshot written by :func:`write_snapshot`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return {
        name: [decode_row(row) for row in rows] for name, rows in payload.items()
    }
