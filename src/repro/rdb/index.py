"""Secondary indexes: hash (equality) and sorted (range).

Indexes map a key tuple (values of the indexed columns) to the set of
row ids holding that key.  The table maintains them on every mutation;
the query planner consults them through :class:`IndexSet`.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator

__all__ = ["HashIndex", "SortedIndex", "IndexSet"]


class HashIndex:
    """Equality index: key tuple -> set of row ids.

    ``None`` components are allowed in keys (SQL would exclude them from
    unique enforcement; uniqueness is handled by the constraint layer,
    not here, so the index simply stores what it is given).
    """

    __slots__ = ("name", "columns", "_map")

    def __init__(self, name: str, columns: tuple[str, ...]) -> None:
        if not columns:
            raise ValueError("an index needs at least one column")
        self.name = name
        self.columns = columns
        self._map: dict[tuple, set[int]] = {}

    def insert(self, key: tuple, rowid: int) -> None:
        self._map.setdefault(key, set()).add(rowid)

    def remove(self, key: tuple, rowid: int) -> None:
        rowids = self._map.get(key)
        if rowids is None:
            return
        rowids.discard(rowid)
        if not rowids:
            del self._map[key]

    def lookup(self, key: tuple) -> frozenset[int]:
        return frozenset(self._map.get(key, ()))

    def count(self, key: tuple) -> int:
        return len(self._map.get(key, ()))

    def keys(self) -> Iterator[tuple]:
        return iter(self._map)

    def __len__(self) -> int:
        return sum(len(v) for v in self._map.values())


class SortedIndex:
    """Range index over a single column, ``None`` keys excluded.

    Implemented as parallel sorted lists (keys / rowid lists) maintained
    with :mod:`bisect` — O(log n) lookup, O(n) worst-case insert, which is
    fine at the table sizes the document database reaches and keeps the
    implementation transparent.
    """

    __slots__ = ("name", "column", "_keys", "_rowids")

    def __init__(self, name: str, column: str) -> None:
        self.name = name
        self.column = column
        self._keys: list[Any] = []
        self._rowids: list[set[int]] = []

    def insert(self, key: Any, rowid: int) -> None:
        if key is None:
            return
        pos = bisect.bisect_left(self._keys, key)
        if pos < len(self._keys) and self._keys[pos] == key:
            self._rowids[pos].add(rowid)
        else:
            self._keys.insert(pos, key)
            self._rowids.insert(pos, {rowid})

    def remove(self, key: Any, rowid: int) -> None:
        if key is None:
            return
        pos = bisect.bisect_left(self._keys, key)
        if pos >= len(self._keys) or self._keys[pos] != key:
            return
        self._rowids[pos].discard(rowid)
        if not self._rowids[pos]:
            del self._keys[pos]
            del self._rowids[pos]

    def range(
        self,
        low: Any = None,
        high: Any = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[int]:
        """Yield row ids whose key falls in [low, high] (bounds optional)."""
        if low is None:
            start = 0
        elif include_low:
            start = bisect.bisect_left(self._keys, low)
        else:
            start = bisect.bisect_right(self._keys, low)
        if high is None:
            stop = len(self._keys)
        elif include_high:
            stop = bisect.bisect_right(self._keys, high)
        else:
            stop = bisect.bisect_left(self._keys, high)
        for pos in range(start, stop):
            yield from self._rowids[pos]

    def min_key(self) -> Any:
        return self._keys[0] if self._keys else None

    def max_key(self) -> Any:
        return self._keys[-1] if self._keys else None

    def __len__(self) -> int:
        return sum(len(s) for s in self._rowids)


class IndexSet:
    """All secondary indexes of one table, keyed by index name."""

    def __init__(self) -> None:
        self._hash: dict[str, HashIndex] = {}
        self._sorted: dict[str, SortedIndex] = {}

    # -- registration ------------------------------------------------------
    def add_hash(self, index: HashIndex) -> None:
        if index.name in self._hash or index.name in self._sorted:
            raise ValueError(f"duplicate index name {index.name!r}")
        self._hash[index.name] = index

    def add_sorted(self, index: SortedIndex) -> None:
        if index.name in self._hash or index.name in self._sorted:
            raise ValueError(f"duplicate index name {index.name!r}")
        self._sorted[index.name] = index

    @property
    def hash_indexes(self) -> Iterable[HashIndex]:
        return self._hash.values()

    @property
    def sorted_indexes(self) -> Iterable[SortedIndex]:
        return self._sorted.values()

    def hash_index_on(self, columns: tuple[str, ...]) -> HashIndex | None:
        """Find a hash index whose column tuple is exactly ``columns``."""
        for index in self._hash.values():
            if index.columns == columns:
                return index
        return None

    def best_hash_index(self, bound_columns: frozenset[str]) -> HashIndex | None:
        """Pick the widest hash index fully covered by equality bindings."""
        best: HashIndex | None = None
        for index in self._hash.values():
            if set(index.columns) <= bound_columns:
                if best is None or len(index.columns) > len(best.columns):
                    best = index
        return best

    def sorted_index_on(self, column: str) -> SortedIndex | None:
        for index in self._sorted.values():
            if index.column == column:
                return index
        return None

    # -- maintenance ---------------------------------------------------------
    def insert_row(self, row: dict[str, Any], rowid: int) -> None:
        for index in self._hash.values():
            index.insert(tuple(row[c] for c in index.columns), rowid)
        for index in self._sorted.values():
            index.insert(row[index.column], rowid)

    def remove_row(self, row: dict[str, Any], rowid: int) -> None:
        for index in self._hash.values():
            index.remove(tuple(row[c] for c in index.columns), rowid)
        for index in self._sorted.values():
            index.remove(row[index.column], rowid)
