"""Secondary indexes: hash (equality) and sorted (range).

Indexes map a key tuple (values of the indexed columns) to the set of
row ids holding that key.  The table maintains them on every mutation;
the query planner consults them through :class:`IndexSet`.

Both index kinds keep two O(1) statistics counters up to date on every
mutation — total entries and distinct keys — so the cost-based planner
(:mod:`repro.rdb.stats`, :mod:`repro.rdb.query`) can estimate
selectivity without touching the data.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Iterable, Iterator

__all__ = ["HashIndex", "SortedIndex", "IndexSet"]

_EMPTY: frozenset[int] = frozenset()


class HashIndex:
    """Equality index: key tuple -> set of row ids.

    ``None`` components are allowed in keys (SQL would exclude them from
    unique enforcement; uniqueness is handled by the constraint layer,
    not here, so the index simply stores what it is given).
    """

    __slots__ = ("name", "columns", "_map", "_frozen", "_entries")

    def __init__(self, name: str, columns: tuple[str, ...]) -> None:
        if not columns:
            raise ValueError("an index needs at least one column")
        self.name = name
        self.columns = columns
        self._map: dict[tuple, set[int]] = {}
        # Per-key frozenset cache so repeated probes of a hot key do not
        # re-allocate; invalidated on any mutation of that key.
        self._frozen: dict[tuple, frozenset[int]] = {}
        self._entries = 0

    def insert(self, key: tuple, rowid: int) -> None:
        bucket = self._map.setdefault(key, set())
        if rowid not in bucket:
            bucket.add(rowid)
            self._entries += 1
        self._frozen.pop(key, None)

    def remove(self, key: tuple, rowid: int) -> None:
        rowids = self._map.get(key)
        if rowids is None:
            return
        if rowid in rowids:
            rowids.discard(rowid)
            self._entries -= 1
            self._frozen.pop(key, None)
        if not rowids:
            del self._map[key]

    def lookup(self, key: tuple) -> frozenset[int]:
        """Row ids holding ``key`` as an immutable snapshot.

        The snapshot is cached per key until the next mutation of that
        key, so hot probes don't allocate; being a frozenset, the
        returned value can never alias later mutations.
        """
        cached = self._frozen.get(key)
        if cached is not None:
            return cached
        bucket = self._map.get(key)
        if bucket is None:
            return _EMPTY
        frozen = frozenset(bucket)
        self._frozen[key] = frozen
        return frozen

    def count(self, key: tuple) -> int:
        return len(self._map.get(key, ()))

    def keys(self) -> Iterator[tuple]:
        return iter(self._map)

    def distinct_keys(self) -> int:
        """Number of distinct key tuples currently stored (O(1))."""
        return len(self._map)

    def __len__(self) -> int:
        return self._entries


class SortedIndex:
    """Range index over a single column, ``None`` keys excluded.

    Implemented as parallel sorted lists (keys / rowid lists) maintained
    with :mod:`bisect` — O(log n) lookup, O(n) worst-case insert, which is
    fine at the table sizes the document database reaches and keeps the
    implementation transparent.
    """

    __slots__ = ("name", "column", "_keys", "_rowids", "_entries")

    def __init__(self, name: str, column: str) -> None:
        self.name = name
        self.column = column
        self._keys: list[Any] = []
        self._rowids: list[set[int]] = []
        self._entries = 0

    def insert(self, key: Any, rowid: int) -> None:
        if key is None:
            return
        pos = bisect.bisect_left(self._keys, key)
        if pos < len(self._keys) and self._keys[pos] == key:
            if rowid not in self._rowids[pos]:
                self._rowids[pos].add(rowid)
                self._entries += 1
        else:
            self._keys.insert(pos, key)
            self._rowids.insert(pos, {rowid})
            self._entries += 1

    def remove(self, key: Any, rowid: int) -> None:
        if key is None:
            return
        pos = bisect.bisect_left(self._keys, key)
        if pos >= len(self._keys) or self._keys[pos] != key:
            return
        if rowid in self._rowids[pos]:
            self._rowids[pos].discard(rowid)
            self._entries -= 1
        if not self._rowids[pos]:
            del self._keys[pos]
            del self._rowids[pos]

    def bulk_load(self, items: Iterable[tuple[Any, int]]) -> None:
        """Insert many (key, rowid) pairs in one sorted rebuild.

        Per-pair :meth:`insert` pays an O(n) list shift per new key;
        bulk load buckets the pairs in a dict, merges the existing
        parallel lists in, and rebuilds with one sort — O((n+m) log
        (n+m)) total.  ``None`` keys are excluded as on insert.
        """
        pending: dict[Any, set[int]] = {}
        for key, rowid in items:
            if key is None:
                continue
            pending.setdefault(key, set()).add(rowid)
        if not pending:
            return
        for key, rowids in zip(self._keys, self._rowids):
            existing = pending.get(key)
            if existing is None:
                pending[key] = rowids
            else:
                existing.update(rowids)
        keys = sorted(pending)
        self._keys = keys
        self._rowids = [pending[key] for key in keys]
        self._entries = sum(len(rowids) for rowids in self._rowids)

    def _bounds(
        self, low: Any, high: Any, include_low: bool, include_high: bool
    ) -> tuple[int, int]:
        """Key-list positions [start, stop) covered by the range."""
        if low is None:
            start = 0
        elif include_low:
            start = bisect.bisect_left(self._keys, low)
        else:
            start = bisect.bisect_right(self._keys, low)
        if high is None:
            stop = len(self._keys)
        elif include_high:
            stop = bisect.bisect_right(self._keys, high)
        else:
            stop = bisect.bisect_left(self._keys, high)
        return start, stop

    def range(
        self,
        low: Any = None,
        high: Any = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[int]:
        """Yield row ids whose key falls in [low, high] (bounds optional)."""
        start, stop = self._bounds(low, high, include_low, include_high)
        for pos in range(start, stop):
            yield from self._rowids[pos]

    def estimate_range(
        self,
        low: Any = None,
        high: Any = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> int:
        """Estimated row count in the range, from distinct-key positions.

        O(log n): assumes entries are spread evenly across distinct keys
        (``entries / distinct_keys`` rows per key).
        """
        start, stop = self._bounds(low, high, include_low, include_high)
        span = max(0, stop - start)
        if span == 0 or not self._keys:
            return 0
        return math.ceil(span * self._entries / len(self._keys))

    def min_key(self) -> Any:
        return self._keys[0] if self._keys else None

    def max_key(self) -> Any:
        return self._keys[-1] if self._keys else None

    def distinct_keys(self) -> int:
        """Number of distinct keys currently stored (O(1))."""
        return len(self._keys)

    def __len__(self) -> int:
        return self._entries


class IndexSet:
    """All secondary indexes of one table, keyed by index name."""

    def __init__(self) -> None:
        self._hash: dict[str, HashIndex] = {}
        self._sorted: dict[str, SortedIndex] = {}

    # -- registration ------------------------------------------------------
    def add_hash(self, index: HashIndex) -> None:
        if index.name in self._hash or index.name in self._sorted:
            raise ValueError(f"duplicate index name {index.name!r}")
        self._hash[index.name] = index

    def add_sorted(self, index: SortedIndex) -> None:
        if index.name in self._hash or index.name in self._sorted:
            raise ValueError(f"duplicate index name {index.name!r}")
        self._sorted[index.name] = index

    @property
    def hash_indexes(self) -> Iterable[HashIndex]:
        return self._hash.values()

    @property
    def sorted_indexes(self) -> Iterable[SortedIndex]:
        return self._sorted.values()

    def hash_index_on(self, columns: tuple[str, ...]) -> HashIndex | None:
        """Find a hash index whose column tuple is exactly ``columns``."""
        for index in self._hash.values():
            if index.columns == columns:
                return index
        return None

    def best_hash_index(self, bound_columns: frozenset[str]) -> HashIndex | None:
        """Pick the widest hash index fully covered by equality bindings."""
        best: HashIndex | None = None
        for index in self._hash.values():
            if set(index.columns) <= bound_columns:
                if best is None or len(index.columns) > len(best.columns):
                    best = index
        return best

    def candidate_hash_indexes(
        self, bound_columns: frozenset[str]
    ) -> list[HashIndex]:
        """Every hash index fully covered by the equality bindings."""
        return [
            index
            for index in self._hash.values()
            if set(index.columns) <= bound_columns
        ]

    def sorted_index_on(self, column: str) -> SortedIndex | None:
        for index in self._sorted.values():
            if index.column == column:
                return index
        return None

    # -- maintenance ---------------------------------------------------------
    def insert_row(self, row: dict[str, Any], rowid: int) -> None:
        for index in self._hash.values():
            index.insert(tuple(row[c] for c in index.columns), rowid)
        for index in self._sorted.values():
            index.insert(row[index.column], rowid)

    def insert_rows(
        self, pairs: Iterable[tuple[dict[str, Any], int]]
    ) -> None:
        """Index many (row, rowid) pairs with per-index batched loops.

        The bulk twin of :meth:`insert_row`: lookups are hoisted out of
        the row loop and sorted indexes take one :meth:`SortedIndex.
        bulk_load` rebuild instead of a bisect-insert per row.
        """
        pairs = list(pairs)
        for index in self._hash.values():
            columns = index.columns
            insert = index.insert
            for row, rowid in pairs:
                insert(tuple(row[c] for c in columns), rowid)
        for index in self._sorted.values():
            column = index.column
            index.bulk_load((row[column], rowid) for row, rowid in pairs)

    def remove_row(self, row: dict[str, Any], rowid: int) -> None:
        for index in self._hash.values():
            index.remove(tuple(row[c] for c in index.columns), rowid)
        for index in self._sorted.values():
            index.remove(row[index.column], rowid)
