"""Compiled predicate execution: lower ``Expr`` trees to one closure.

The interpreted path walks an :class:`~repro.rdb.predicate.Expr` tree
per row — five to ten Python method calls and dict hops for a two-term
conjunction.  This module lowers a tree to a **single Python function**
exactly once per statement:

* the primary strategy is **codegen**: the tree is rendered to the
  source of one function body (``def _compiled(r): return ...``) and
  compiled with :func:`compile`/``exec`` so the per-row cost collapses
  to one call frame plus inline comparisons;
* trees embedding opaque callables (:class:`~repro.rdb.predicate.Apply`
  nodes, or ``Expr`` subclasses this module has never heard of) fall
  back to **closure composition** — the same single-call shape without
  source generation.

Compiled callables are cached on the expression instance, so repeated
statements over the same predicate pay compilation once.  Semantics are
bit-identical to ``Expr.eval`` — both operands of a comparison are
evaluated before the SQL null check (a missing column raises KeyError
from either side, exactly as the interpreter does), boolean connectives
short-circuit exactly as the interpreter does, and hashability /
type-mismatch errors surface identically.  A Hypothesis differential
suite (``tests/rdb/test_compile_properties.py``) pins this equivalence.

Generated code runs under a restricted ``__builtins__`` whitelist
(:data:`_SAFE_BUILTINS`) so a compiled predicate can never capture I/O
or nondeterministic builtins; the ``codegen-namespace`` lint rule audits
this module for exactly that property.

Kill switch: setting ``REPRO_COMPILED_EXEC=0`` in the environment makes
:func:`predicate_fn` hand back the interpreted ``Expr.eval`` bound
method and the batched executor drop to batch size 1, restoring the
legacy per-row pipeline for differential testing.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Mapping

from repro.rdb import predicate as _p

__all__ = [
    "ENV_VAR",
    "DEFAULT_BATCH",
    "compiled_exec_enabled",
    "compiled_predicate",
    "batch_filter",
    "predicate_fn",
    "compile_mode",
    "compiled_source",
]

ENV_VAR = "REPRO_COMPILED_EXEC"

#: Rows pulled (and filtered) per batch by the vectorized executor.
DEFAULT_BATCH = 256

#: The only builtins generated code may reference.  Deliberately tiny:
#: no import machinery, no I/O, no reflection, no entropy sources.  The
#: ``codegen-namespace`` lint rule fails the build if this whitelist
#: ever grows a banned name.
_SAFE_BUILTINS: dict[str, Any] = {
    "bool": bool,
    "isinstance": isinstance,
    "str": str,
}

_COMPILED_ATTR = "_rdb_compiled"
_BATCH_ATTR = "_rdb_batch_filter"
_MODE_ATTR = "_rdb_compile_mode"
_SOURCE_ATTR = "_rdb_compile_source"


def compiled_exec_enabled() -> bool:
    """True unless the ``REPRO_COMPILED_EXEC=0`` kill switch is set."""
    return os.environ.get(ENV_VAR, "1") != "0"


class _Uncompilable(Exception):
    """Raised by codegen on nodes it cannot render to source."""


# ---------------------------------------------------------------------------
# Shared runtime helpers (hoisted into generated namespaces and reused by
# the closure-composition fallback).  Exact twins of the interpreted
# null/TypeError semantics in repro.rdb.predicate.
# ---------------------------------------------------------------------------
def _in_check(value: Any, values: frozenset) -> bool:
    if value is None:
        return False
    try:
        return value in values
    except TypeError:
        return False


def _contains_check(value: Any, item: Any) -> bool:
    if value is None:
        return False
    try:
        return item in value
    except TypeError:
        return False


# ---------------------------------------------------------------------------
# Codegen
# ---------------------------------------------------------------------------
#: Node types whose emitted source is guaranteed boolean-valued, so a
#: boolean context (AND/OR operand) can skip the ``bool()`` wrap the
#: interpreter applies — the wrap only matters for value-typed subtrees
#: (bare columns/literals), where truthiness must collapse to a bool.
_BOOL_TYPED = (
    _p.Compare,
    _p.And,
    _p.Or,
    _p.Not,
    _p.IsNull,
    _p.In,
    _p.Like,
    _p.Contains,
)

#: Literal types for which ``value == None``-style reflected comparison
#: is guaranteed False, letting ``==`` against such a literal skip the
#: explicit null guard (``None == lit`` is False either way).
_PLAIN_LITERALS = (bool, int, float, str, bytes, tuple, list, dict, frozenset, set)


class _Codegen:
    """Renders one Expr tree to a Python expression string.

    Non-inlinable values (frozensets, regex match methods, helper
    functions, floats — ``repr(inf)`` is not valid source) are hoisted
    into the namespace the generated function is exec'd under.
    """

    def __init__(self) -> None:
        self.consts: dict[str, Any] = {}
        self._temps = 0

    def const(self, value: Any) -> str:
        name = f"_c{len(self.consts)}"
        self.consts[name] = value
        return name

    def temp(self) -> str:
        self._temps += 1
        return f"_t{self._temps}"

    # -- value rendering ---------------------------------------------------
    def value(self, value: Any) -> str:
        """Literal source for ``value``: inline when repr round-trips."""
        if value is None or value is True or value is False:
            return repr(value)
        if isinstance(value, (int, str)) and not isinstance(value, bool):
            return repr(value)
        return self.const(value)

    # -- node rendering ----------------------------------------------------
    def emit(self, node: _p.Expr) -> str:
        if isinstance(node, _p.ColumnRef):
            return f"r[{node.name!r}]"
        if isinstance(node, _p.Literal):
            return f"({self.value(node.value)})"
        if isinstance(node, _p.Compare):
            return self._emit_compare(node)
        if isinstance(node, _p.And):
            return (
                f"({self.emit_bool(node.left)} and {self.emit_bool(node.right)})"
            )
        if isinstance(node, _p.Or):
            return (
                f"({self.emit_bool(node.left)} or {self.emit_bool(node.right)})"
            )
        if isinstance(node, _p.Not):
            return f"(not {self.emit(node.inner)})"
        if isinstance(node, _p.IsNull):
            test = "is" if node.expect_null else "is not"
            return f"(({self.emit(node.inner)}) {test} None)"
        if isinstance(node, _p.In):
            helper = self.const(_in_check)
            values = self.const(node.values)
            return f"{helper}({self.emit(node.inner)}, {values})"
        if isinstance(node, _p.Like):
            match = self.const(node._regex.match)
            temp = self.temp()
            return (
                f"(isinstance(({temp} := {self.emit(node.inner)}), str)"
                f" and {match}({temp}) is not None)"
            )
        if isinstance(node, _p.Contains):
            helper = self.const(_contains_check)
            item = self.const(node.item)
            return f"{helper}({self.emit(node.inner)}, {item})"
        # Apply nodes (opaque callables) and unknown Expr subclasses are
        # handled by the closure-composition fallback.
        raise _Uncompilable(type(node).__name__)

    def emit_bool(self, node: _p.Expr) -> str:
        """Source for ``node`` in a boolean context (AND/OR operand).

        The interpreter wraps operands in ``bool()``; emitted sources of
        boolean-typed nodes already are bools, so the wrap is dropped —
        value-typed subtrees keep it to collapse truthiness.
        """
        code = self.emit(node)
        if isinstance(node, _BOOL_TYPED):
            return code
        return f"bool({code})"

    def _emit_compare(self, node: _p.Compare) -> str:
        left, right, op = node.left, node.right, node.op
        left_lit = isinstance(left, _p.Literal)
        right_lit = isinstance(right, _p.Literal)
        if (left_lit and left.value is None) or (right_lit and right.value is None):
            # A null operand compares false — but the other side must
            # still be evaluated so a missing column raises KeyError
            # exactly as the interpreter's eager operand evaluation does.
            sides = [self.emit(s) for s in (left, right) if not isinstance(s, _p.Literal)]
            if not sides:
                return "(False)"
            evaluated = ", ".join(sides)
            return f"((({evaluated},)) and False)"
        if right_lit and not left_lit:
            if op == "==" and isinstance(right.value, _PLAIN_LITERALS):
                # None == <plain literal> is False, which is exactly the
                # SQL null rule — the explicit guard is redundant.
                return f"(({self.emit(left)}) == {self.value(right.value)})"
            temp = self.temp()
            return (
                f"(({temp} := {self.emit(left)}) is not None"
                f" and ({temp} {op} {self.value(right.value)}))"
            )
        if left_lit and not right_lit:
            if op == "==" and isinstance(left.value, _PLAIN_LITERALS):
                return f"({self.value(left.value)} == ({self.emit(right)}))"
            temp = self.temp()
            return (
                f"(({temp} := {self.emit(right)}) is not None"
                f" and ({self.value(left.value)} {op} {temp}))"
            )
        # General form: evaluate both operands eagerly (left first), then
        # apply the SQL null rule — mirrors Compare.eval to the letter.
        t1, t2 = self.temp(), self.temp()
        return (
            f"(({t1} := {self.emit(left)}), ({t2} := {self.emit(right)}), "
            f"(False if {t1} is None or {t2} is None else ({t1} {op} {t2})))[2]"
        )


def _exec_generated(source: str, consts: dict[str, Any], name: str) -> Callable:
    code = compile(source, "<rdb.compile>", "exec")
    namespace: dict[str, Any] = {"__builtins__": _SAFE_BUILTINS}
    namespace.update(consts)
    exec(code, namespace)
    return namespace[name]


def _codegen(expr: _p.Expr) -> tuple[Callable[[Mapping[str, Any]], Any], str]:
    gen = _Codegen()
    body = gen.emit(expr)
    source = f"def _compiled(r):\n    return {body}\n"
    return _exec_generated(source, gen.consts, "_compiled"), source


def _codegen_batch(expr: _p.Expr) -> tuple[Callable[[list], list], str]:
    """A filter over a whole row batch, loop and predicate fused.

    The predicate is inlined into one list comprehension, so the per-row
    cost is the comparisons themselves — no call frame per row, no
    iterator adapters.  This is the vectorized form the scan path uses.
    """
    gen = _Codegen()
    body = gen.emit_bool(expr)
    source = f"def _compiled_batch(rows):\n    return [r for r in rows if {body}]\n"
    return _exec_generated(source, gen.consts, "_compiled_batch"), source


# ---------------------------------------------------------------------------
# Closure-composition fallback (Apply nodes, foreign Expr subclasses)
# ---------------------------------------------------------------------------
def _compose(node: _p.Expr) -> Callable[[Mapping[str, Any]], Any]:
    if isinstance(node, _p.ColumnRef):
        name = node.name
        return lambda r: r[name]
    if isinstance(node, _p.Literal):
        value = node.value
        return lambda r: value
    if isinstance(node, _p.Compare):
        left, right = _compose(node.left), _compose(node.right)
        op = _p._OPS[node.op]

        def compare(r: Mapping[str, Any]) -> bool:
            a = left(r)
            b = right(r)
            if a is None or b is None:
                return False
            return op(a, b)

        return compare
    if isinstance(node, _p.And):
        left, right = _compose(node.left), _compose(node.right)
        return lambda r: bool(left(r)) and bool(right(r))
    if isinstance(node, _p.Or):
        left, right = _compose(node.left), _compose(node.right)
        return lambda r: bool(left(r)) or bool(right(r))
    if isinstance(node, _p.Not):
        inner = _compose(node.inner)
        return lambda r: not inner(r)
    if isinstance(node, _p.IsNull):
        inner = _compose(node.inner)
        expect = node.expect_null
        return lambda r: (inner(r) is None) == expect
    if isinstance(node, _p.In):
        inner = _compose(node.inner)
        values = node.values
        return lambda r: _in_check(inner(r), values)
    if isinstance(node, _p.Like):
        inner = _compose(node.inner)
        match = node._regex.match

        def like(r: Mapping[str, Any]) -> bool:
            value = inner(r)
            return isinstance(value, str) and match(value) is not None

        return like
    if isinstance(node, _p.Contains):
        inner = _compose(node.inner)
        item = node.item
        return lambda r: _contains_check(inner(r), item)
    if isinstance(node, _p.Apply):
        inner = _compose(node.inner)
        fn = node.fn
        return lambda r: fn(inner(r))
    # Foreign Expr subclass: its own eval is the only correct semantics.
    return node.eval


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------
def compiled_predicate(expr: _p.Expr) -> Callable[[Mapping[str, Any]], Any]:
    """The compiled closure for ``expr``, built once and cached on it.

    Returns exactly what ``expr.eval(row)`` would for every row,
    including raised exceptions (missing columns, unorderable types).
    """
    cached = getattr(expr, _COMPILED_ATTR, None)
    if cached is not None:
        return cached
    try:
        fn, source = _codegen(expr)
        mode = "codegen"
    except _Uncompilable:
        fn = _compose(expr)
        mode = "closure"
        source = None
    # Expr subclasses declare __slots__ but the base class does not, so
    # instances carry a __dict__ we can cache the closure in.
    setattr(expr, _COMPILED_ATTR, fn)
    setattr(expr, _MODE_ATTR, mode)
    setattr(expr, _SOURCE_ATTR, source)
    return fn


def batch_filter(expr: _p.Expr) -> Callable[[list], list]:
    """A compiled batch filter: ``fn(rows) -> [row for row in rows if expr]``.

    Built once per expression and cached on it; trees codegen cannot
    render fall back to a comprehension over the composed closure.
    """
    cached = getattr(expr, _BATCH_ATTR, None)
    if cached is not None:
        return cached
    try:
        fn, _source = _codegen_batch(expr)
    except _Uncompilable:
        pred = compiled_predicate(expr)

        def fn(rows: list, _pred=pred) -> list:
            return [r for r in rows if _pred(r)]

    setattr(expr, _BATCH_ATTR, fn)
    return fn


def predicate_fn(
    expr: _p.Expr | None,
) -> Callable[[Mapping[str, Any]], Any] | None:
    """The row filter a statement should use under the current mode.

    ``None`` for no predicate; the interpreted ``expr.eval`` bound
    method when the kill switch is set; the compiled closure otherwise.
    """
    if expr is None:
        return None
    if not compiled_exec_enabled():
        return expr.eval
    return compiled_predicate(expr)


def compile_mode(expr: _p.Expr) -> str:
    """``"codegen"`` or ``"closure"`` — how ``expr`` was compiled."""
    compiled_predicate(expr)
    return getattr(expr, _MODE_ATTR)


def compiled_source(expr: _p.Expr) -> str | None:
    """Generated source for ``expr`` (None for closure-composed trees)."""
    compiled_predicate(expr)
    return getattr(expr, _SOURCE_ATTR)
