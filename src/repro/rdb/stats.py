"""Incrementally-maintained table statistics for the cost-based planner.

Every index keeps O(1) counters (total entries, distinct keys) current
on each mutation, so a statistics snapshot costs O(number of indexes)
and never scans rows.  The planner turns these into selectivity
estimates: a hash index with ``entries`` rows spread over
``distinct_keys`` keys is expected to return ``entries / distinct_keys``
rows per probe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.rdb.table import Table

__all__ = ["IndexStatistics", "TableStatistics", "collect_statistics"]


@dataclass(frozen=True, slots=True)
class IndexStatistics:
    """Counters for one index, all maintained incrementally."""

    name: str
    kind: str  # "hash" or "sorted"
    columns: tuple[str, ...]
    entries: int
    distinct_keys: int

    @property
    def rows_per_key(self) -> float:
        """Expected rows returned by an equality probe of this index."""
        if self.distinct_keys == 0:
            return 0.0
        return self.entries / self.distinct_keys


@dataclass(frozen=True, slots=True)
class TableStatistics:
    """One table's planner-visible statistics snapshot."""

    table: str
    row_count: int
    indexes: tuple[IndexStatistics, ...]

    def index(self, name: str) -> IndexStatistics | None:
        for stats in self.indexes:
            if stats.name == name:
                return stats
        return None


def collect_statistics(table: "Table") -> TableStatistics:
    """Snapshot ``table``'s statistics (O(number of indexes)).

    Runs once per planned statement, so it builds the snapshot in two
    comprehensions rather than an append loop — the only per-index work
    is reading the incrementally-maintained counters.
    """
    hash_stats = (
        IndexStatistics(
            name=index.name,
            kind="hash",
            columns=index.columns,
            entries=len(index),
            distinct_keys=index.distinct_keys(),
        )
        for index in table.indexes.hash_indexes
    )
    sorted_stats = (
        IndexStatistics(
            name=index.name,
            kind="sorted",
            columns=(index.column,),
            entries=len(index),
            distinct_keys=index.distinct_keys(),
        )
        for index in table.indexes.sorted_indexes
    )
    return TableStatistics(
        table=table.schema.name,
        row_count=len(table),
        indexes=(*hash_stats, *sorted_stats),
    )
