"""The three-tier architecture (paper §1 and abstract).

"The system is implemented as a three-tier architecture": Web-browser
clients, the **class administrator** middle tier ("performs book
keeping of course registration and network information, which serves as
the front end of the virtual course DBMS"), and the DBMS reached
"using JDBC (or ODBC) as the open database connection".

* :mod:`repro.tiers.protocol` — the request/response wire objects.
* :mod:`repro.tiers.connection` — the ODBC-style connection adapter
  over :mod:`repro.rdb`.
* :mod:`repro.tiers.cache` — the versioned read-through result cache
  the class administrator puts in front of the DBMS.
* :mod:`repro.tiers.server` — the class administrator: sessions, roles,
  admission records, registrations, transcripts, network bookkeeping,
  and routing into the Web document DB and the virtual library.
* :mod:`repro.tiers.client` — typed student / instructor /
  administrator clients.
* :mod:`repro.tiers.replicaset` — read routing across a primary and
  WAL-shipped read replicas (:mod:`repro.replication`).
* :mod:`repro.tiers.shards` — the shard-aware coordinator: shard-key
  routing, two-phase commit for cross-shard writes
  (:mod:`repro.sharding`), scatter-gather reads with EXPLAIN fan-out.
"""

from repro.tiers.protocol import REPLICA_SAFE_OPS, Request, Response, Role
from repro.tiers.cache import QueryCache, TableVersions
from repro.tiers.connection import OpenDatabaseConnection
from repro.tiers.server import ClassAdministrator
from repro.tiers.client import AdministratorClient, InstructorClient, StudentClient
from repro.tiers.remote import RemoteTierClient, RemoteTierServer
from repro.tiers.replicaset import ReplicaSet, catalog_refresher
from repro.tiers.shards import ShardedDatabase

__all__ = [
    "REPLICA_SAFE_OPS",
    "ShardedDatabase",
    "RemoteTierClient",
    "RemoteTierServer",
    "ReplicaSet",
    "catalog_refresher",
    "Request",
    "Response",
    "Role",
    "QueryCache",
    "TableVersions",
    "OpenDatabaseConnection",
    "ClassAdministrator",
    "AdministratorClient",
    "InstructorClient",
    "StudentClient",
]
