"""Typed clients for the three user perspectives.

"Types of users include students, instructors, and administrators."
Each client wraps the request/response protocol with methods for the
operations its role may perform; a standard Web browser is the paper's
only client requirement, and these classes model what its forms/applets
would send.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.tiers.protocol import Request, Response, Role
from repro.tiers.server import ClassAdministrator

__all__ = ["BaseClient", "StudentClient", "InstructorClient", "AdministratorClient"]


class BaseClient:
    """Session management shared by all roles.

    The overload-robustness knobs are per-client defaults stamped onto
    every request: ``deadline_s`` (relative; converted to an absolute
    deadline on ``clock`` at send time), ``priority`` (admission class)
    and ``tenant`` (quota bucket — a course, a department, a batch
    job).  All default to None, which is exactly the v1 wire shape.
    """

    role: Role = Role.STUDENT

    def __init__(
        self,
        server: ClassAdministrator,
        user: str,
        *,
        deadline_s: float | None = None,
        priority: str | None = None,
        tenant: str | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.server = server
        self.user = user
        self.session_id: str | None = None
        self.deadline_s = deadline_s
        self.priority = priority
        self.tenant = tenant
        self.clock = clock if clock is not None else time.monotonic

    # -- plumbing ----------------------------------------------------------
    def _deadline(self) -> float | None:
        if self.deadline_s is None:
            return None
        return self.clock() + self.deadline_s

    def _request(self, op: str, **params: Any) -> Request:
        return Request(
            op=op,
            session_id=self.session_id,
            params=params,
            deadline=self._deadline(),
            priority=self.priority,
            tenant=self.tenant,
        )

    def _call(self, op: str, **params: Any) -> Any:
        return self.server.handle(self._request(op, **params)).unwrap()

    def login(self) -> str:
        response: Response = self.server.handle(
            Request(
                op="login",
                session_id=None,
                params={"user": self.user, "role": self.role.value},
                deadline=self._deadline(),
                priority=self.priority,
                tenant=self.tenant,
            )
        )
        data = response.unwrap()
        self.session_id = data["session_id"]
        return self.session_id

    def logout(self) -> None:
        if self.session_id is not None:
            self._call("logout")
            self.session_id = None

    def register_station(self, station: str, address: str = "") -> dict:
        """Report which workstation this user sits at (network info)."""
        return self._call("register_station", station=station, address=address)

    def search_library(
        self,
        keywords: str | None = None,
        instructor: str | None = None,
        course: str | None = None,
        limit: int | None = None,
    ) -> list[dict]:
        return self._call(
            "search_library",
            keywords=keywords,
            instructor=instructor,
            course=course,
            limit=limit,
        )


class StudentClient(BaseClient):
    """A student at a Web browser."""

    role = Role.STUDENT

    def enroll(self, course_number: str) -> dict:
        return self._call("enroll", course_number=course_number)

    def transcript(self) -> list[dict]:
        return self._call("transcript")

    def check_out(self, doc_id: str, time: float | None = None) -> dict:
        params: dict[str, Any] = {"doc_id": doc_id}
        if time is not None:
            params["time"] = time
        return self._call("check_out", **params)

    def check_in(self, doc_id: str, time: float | None = None) -> dict:
        params: dict[str, Any] = {"doc_id": doc_id}
        if time is not None:
            params["time"] = time
        return self._call("check_in", **params)


class InstructorClient(BaseClient):
    """An instructor authoring and publishing virtual courses."""

    role = Role.INSTRUCTOR

    def register_course(self, course_number: str, title: str) -> dict:
        return self._call(
            "register_course", course_number=course_number, title=title
        )

    def publish(
        self,
        doc_id: str,
        title: str,
        course_number: str,
        keywords: tuple[str, ...] = (),
        starting_url: str | None = None,
        size_bytes: int = 0,
    ) -> dict:
        return self._call(
            "publish_course_document",
            doc_id=doc_id,
            title=title,
            course_number=course_number,
            keywords=list(keywords),
            starting_url=starting_url,
            size_bytes=size_bytes,
        )

    def withdraw(self, doc_id: str) -> bool:
        return self._call("withdraw_course_document", doc_id=doc_id)

    def record_grade(
        self, student_id: str, course_number: str, grade: float
    ) -> bool:
        return self._call(
            "record_grade",
            student_id=student_id,
            course_number=course_number,
            grade=grade,
        )

    def roster(self, course_number: str) -> list[str]:
        return self._call("roster", course_number=course_number)

    def assessment_report(self) -> list[dict]:
        return self._call("assessment_report")


class AdministratorClient(BaseClient):
    """A university administrator."""

    role = Role.ADMINISTRATOR

    def admit_student(self, student_id: str, name: str | None = None) -> dict:
        return self._call(
            "admit_student", student_id=student_id, name=name or student_id
        )

    def register_course(
        self, course_number: str, title: str, instructor: str
    ) -> dict:
        return self._call(
            "register_course",
            course_number=course_number,
            title=title,
            instructor=instructor,
        )

    def enroll(self, student_id: str, course_number: str) -> dict:
        return self._call(
            "enroll", student_id=student_id, course_number=course_number
        )

    def transcript_of(self, student_id: str) -> list[dict]:
        return self._call("transcript", student_id=student_id)

    def assessment_report(self) -> list[dict]:
        return self._call("assessment_report")
