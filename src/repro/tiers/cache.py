"""Versioned read-through result cache for the class administrator.

The middle tier re-executes the same selects on every browser request
(rosters, transcripts, course lookups) — the repeated-read pattern the
BTeV web document database and the cellular content-management design
solve with server-side caching in front of the DBMS.  This module adds
that tier:

* :class:`TableVersions` keeps a **monotonic version counter per
  table**, bumped by AFTER INSERT/UPDATE/DELETE triggers wired through
  the engine's existing trigger layer.
* :class:`QueryCache` is an **LRU read-through cache** whose entries are
  keyed by ``(table, normalized predicate, projection, order, limit,
  offset, distinct, table version)``.  Because the current table
  version is part of the key, any write implicitly invalidates every
  cached result for that table — a stale read is impossible by
  construction; old-version entries simply age out of the LRU.

Version bumps fire when a row mutation applies, even if the enclosing
transaction later rolls back.  That can only invalidate more than
necessary (a spurious miss), never less, so correctness is unaffected.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Sequence

from repro.obs.instrument import OBS
from repro.rdb import Database, Expr, predicate_cache_key
from repro.rdb.triggers import TriggerContext, TriggerEvent, TriggerTiming

__all__ = ["TableVersions", "QueryCache", "StaleReadCache"]

_VERSION_TRIGGER_PREFIX = "__cache_version"


class TableVersions:
    """Per-table monotonic version counters maintained by triggers."""

    def __init__(self) -> None:
        self._versions: dict[str, int] = {}

    def attach(self, db: Database) -> None:
        """Track every table currently in ``db``."""
        for name in db.table_names():
            self.track(db, name)

    def track(self, db: Database, table: str) -> None:
        """Register version-bump triggers on one table (idempotent)."""
        if table in self._versions:
            return
        self._versions[table] = 0

        def bump(_ctx: TriggerContext, table: str = table) -> None:
            self._versions[table] += 1

        for event in (
            TriggerEvent.INSERT, TriggerEvent.UPDATE, TriggerEvent.DELETE,
        ):
            db.register_trigger(
                f"{_VERSION_TRIGGER_PREFIX}_{event.value}__",
                table,
                event,
                TriggerTiming.AFTER,
                bump,
            )

    def tracked(self, table: str) -> bool:
        """True when ``table`` has version triggers installed."""
        return table in self._versions

    def version(self, table: str) -> int | None:
        """Current version of ``table``, or None when untracked."""
        return self._versions.get(table)


class QueryCache:
    """LRU read-through result cache over a versioned database.

    ``select`` executes through the cache; hits return copies of the
    stored rows (the same copy depth an uncached select provides), so
    callers mutating result rows can never poison the cache.  Queries
    that cannot be keyed — untracked tables, predicates embedding opaque
    callables — bypass the cache entirely.
    """

    def __init__(self, versions: TableVersions, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("cache needs room for at least one entry")
        self.versions = versions
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, list[dict[str, Any]]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self._obs_cache: dict[str, Any] | None = None

    def __len__(self) -> int:
        return len(self._entries)

    def _obs(self) -> dict[str, Any]:
        registry = OBS.registry
        cache = self._obs_cache
        if cache is None or cache["registry"] is not registry:
            assert registry is not None
            cache = self._obs_cache = {
                "registry": registry,
                "hit": registry.counter("tiers.cache", outcome="hit"),
                "miss": registry.counter("tiers.cache", outcome="miss"),
                "bypass": registry.counter("tiers.cache", outcome="bypass"),
            }
        return cache

    def select(
        self,
        db: Database,
        table: str,
        where: Expr | None = None,
        order_by: str | Sequence[str] | None = None,
        descending: bool = False,
        limit: int | None = None,
        offset: int = 0,
        columns: Sequence[str] | None = None,
        distinct: bool = False,
    ) -> list[dict[str, Any]]:
        """Read-through select with the same contract as ``db.select``."""
        key = self._key(
            table, where, order_by, descending, limit, offset, columns, distinct
        )
        if key is None:
            self.bypasses += 1
            if OBS.enabled:
                self._obs()["bypass"].inc()
            return db.select(
                table, where=where, order_by=order_by, descending=descending,
                limit=limit, offset=offset, columns=columns, distinct=distinct,
            )
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            if OBS.enabled:
                self._obs()["hit"].inc()
            self._entries.move_to_end(key)
            return [dict(row) for row in cached]
        self.misses += 1
        if OBS.enabled:
            self._obs()["miss"].inc()
        rows = db.select(
            table, where=where, order_by=order_by, descending=descending,
            limit=limit, offset=offset, columns=columns, distinct=distinct,
        )
        self._entries[key] = rows
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return [dict(row) for row in rows]

    def stats(self) -> dict[str, int]:
        """Hit/miss/bypass counters and current residency."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
            "entries": len(self._entries),
        }

    def _key(
        self,
        table: str,
        where: Expr | None,
        order_by: str | Sequence[str] | None,
        descending: bool,
        limit: int | None,
        offset: int,
        columns: Sequence[str] | None,
        distinct: bool,
    ) -> tuple | None:
        version = self.versions.version(table)
        if version is None:
            return None
        predicate = predicate_cache_key(where)
        if predicate is None:
            return None
        order = (order_by,) if isinstance(order_by, str) else (
            tuple(order_by) if order_by is not None else None
        )
        projection = tuple(columns) if columns is not None else None
        return (
            table, predicate, projection, order, descending,
            limit, offset, distinct, version,
        )


class StaleReadCache:
    """Last-known-good replies for graceful degradation.

    Unlike :class:`QueryCache` (whose version-in-key design makes stale
    hits impossible), this cache *deliberately* serves stale data — but
    only when the admission controller is shedding, and only within an
    explicit staleness bound: each entry remembers the version of every
    table it derived from, and a lookup whose version lag exceeds
    ``max_version_lag`` writes misses instead of lying unboundedly.
    The degraded reply is marked (``Response.degraded = "stale-cache"``)
    so clients know they traded freshness for availability.
    """

    def __init__(
        self,
        versions: TableVersions,
        *,
        max_entries: int = 256,
        max_version_lag: int = 8,
    ) -> None:
        if max_entries < 1:
            raise ValueError("cache needs room for at least one entry")
        if max_version_lag < 0:
            raise ValueError("max_version_lag must be >= 0")
        self.versions = versions
        self.max_entries = max_entries
        self.max_version_lag = max_version_lag
        #: key -> (reply data, {table: version at record time})
        self._entries: OrderedDict[
            tuple, tuple[Any, dict[str, int]]
        ] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.too_stale = 0

    def __len__(self) -> int:
        return len(self._entries)

    def record(self, key: tuple, tables: Sequence[str], data: Any) -> None:
        """Remember a fresh reply derived from ``tables``."""
        stamps = {
            table: version
            for table in tables
            if (version := self.versions.version(table)) is not None
        }
        self._entries[key] = (data, stamps)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def lookup(self, key: tuple) -> tuple[bool, Any]:
        """``(hit, data)`` — a hit only within the staleness bound."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return False, None
        data, stamps = entry
        for table, recorded in stamps.items():
            current = self.versions.version(table)
            if current is not None and current - recorded > self.max_version_lag:
                # Evict: nobody should serve this, now or later.
                del self._entries[key]
                self.too_stale += 1
                self.misses += 1
                return False, None
        self.hits += 1
        self._entries.move_to_end(key)
        return True, data

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "too_stale": self.too_stale,
            "entries": len(self._entries),
        }
