"""The class administrator — the middle tier.

"A class administrator performs book keeping of course registration and
network information, which serves as the front end of the virtual
course DBMS."  The server owns:

* the administration tables (students/admissions, courses, enrollments,
  transcripts, station registrations) in its own relational database,
  reached through the ODBC-style connection;
* a reference to the Web document database (course content);
* the virtual library and its circulation desk;
* sessions with role-based authorization per
  :data:`repro.tiers.protocol.OPERATIONS`.

Every client call is a :class:`~repro.tiers.protocol.Request`; the
server never leaks engine objects to clients.
"""

from __future__ import annotations

import itertools
import os
from pathlib import Path
from typing import Any, Callable

from repro.admission import (
    AdmissionController,
    OverloadError,
    deadline_scope,
)
from repro.core.wddb import WebDocumentDatabase
from repro.obs.instrument import OBS
from repro.library.assessment import assess
from repro.library.catalog import CatalogEntry, VirtualLibrary
from repro.library.circulation import CirculationDesk
from repro.rdb import (
    Action,
    Column,
    ColumnType,
    Database,
    ForeignKey,
    Journal,
    JournalCorruptError,
    RdbError,
    Schema,
    SyncPolicy,
    col,
)
from repro.tiers.cache import QueryCache, StaleReadCache, TableVersions
from repro.tiers.connection import OpenDatabaseConnection
from repro.tiers.protocol import (
    OPERATIONS,
    REPLICA_SAFE_OPS,
    Request,
    Response,
    Role,
)

__all__ = ["ClassAdministrator"]

#: Replica-safe reads eligible for degraded (stale-cache) serving while
#: the admission controller sheds, and the tables each derives from —
#: the staleness bound is measured in version bumps of these tables.
_STALE_SERVABLE: dict[str, tuple[str, ...]] = {
    "transcript": ("transcripts",),
    "roster": ("enrollments",),
    "search_library": ("catalog_docs",),
}

T = ColumnType

STUDENTS = Schema(
    name="students",
    columns=(
        Column("student_id", T.TEXT, nullable=False),
        Column("name", T.TEXT, nullable=False),
        Column("admitted", T.BOOL, nullable=False, default=True),
    ),
    primary_key=("student_id",),
)

COURSES = Schema(
    name="courses",
    columns=(
        Column("course_number", T.TEXT, nullable=False),
        Column("title", T.TEXT, nullable=False),
        Column("instructor", T.TEXT, nullable=False),
    ),
    primary_key=("course_number",),
)

ENROLLMENTS = Schema(
    name="enrollments",
    columns=(
        Column("student_id", T.TEXT, nullable=False),
        Column("course_number", T.TEXT, nullable=False),
    ),
    primary_key=("student_id", "course_number"),
    foreign_keys=(
        ForeignKey(("student_id",), "students", ("student_id",),
                   on_delete=Action.CASCADE),
        ForeignKey(("course_number",), "courses", ("course_number",),
                   on_delete=Action.CASCADE),
    ),
)

TRANSCRIPTS = Schema(
    name="transcripts",
    columns=(
        Column("student_id", T.TEXT, nullable=False),
        Column("course_number", T.TEXT, nullable=False),
        Column("grade", T.FLOAT, nullable=False,
               check=lambda v: 0.0 <= v <= 4.0,
               check_label="grade_in_scale"),
    ),
    primary_key=("student_id", "course_number"),
    foreign_keys=(
        ForeignKey(("student_id",), "students", ("student_id",),
                   on_delete=Action.CASCADE),
        ForeignKey(("course_number",), "courses", ("course_number",),
                   on_delete=Action.CASCADE),
    ),
)

#: "book keeping of ... network information"
STATIONS = Schema(
    name="stations",
    columns=(
        Column("user_id", T.TEXT, nullable=False),
        Column("station", T.TEXT, nullable=False),
        Column("address", T.TEXT, nullable=False, default=""),
    ),
    primary_key=("user_id",),
)

#: The library catalog, as a durable administration table.  The
#: in-memory :class:`~repro.library.catalog.VirtualLibrary` (and its
#: search index) is a derived view rebuilt from these rows, so the
#: catalog survives restarts and rides the WAL to read replicas.
CATALOG_DOCS = Schema(
    name="catalog_docs",
    columns=(
        Column("doc_id", T.TEXT, nullable=False),
        Column("title", T.TEXT, nullable=False),
        Column("course_number", T.TEXT, nullable=False),
        Column("instructor", T.TEXT, nullable=False),
        Column("keywords", T.TEXT, nullable=False, default=""),
        Column("starting_url", T.TEXT),
        Column("size_bytes", T.INT, nullable=False, default=0),
    ),
    primary_key=("doc_id",),
)

ADMIN_SCHEMAS = (
    STUDENTS, COURSES, ENROLLMENTS, TRANSCRIPTS, STATIONS, CATALOG_DOCS,
)


class ClassAdministrator:
    """The middle tier: sessions, administration, routing.

    Pass ``data_dir`` to run durably: the administration tables are
    recovered from ``<data_dir>/class_admin.snapshot`` plus journal
    replay on startup, and every committed write is journaled under the
    given ``sync_policy`` (``"commit"`` by default — an acknowledged
    request survives a crash).  Without ``data_dir`` the server is
    purely in-memory, exactly as before.
    """

    def __init__(
        self,
        wddb: WebDocumentDatabase | None = None,
        library: VirtualLibrary | None = None,
        *,
        data_dir: str | os.PathLike[str] | None = None,
        sync_policy: SyncPolicy | str = "commit",
        admission: AdmissionController | None = None,
    ) -> None:
        self._data_dir = Path(data_dir) if data_dir is not None else None
        self._sync_policy = SyncPolicy.parse(sync_policy)
        #: What journal replay observed on startup; None in-memory mode.
        self.recovery_stats = None
        if self._data_dir is None:
            admin_db = Database("class_admin")
            for schema in ADMIN_SCHEMAS:
                admin_db.create_table(schema)
        else:
            admin_db = self._recover_admin_db()
        self.admin_db = admin_db
        # Read-through result cache: table versions bump on every write
        # (via AFTER triggers), so repeated browser reads (rosters,
        # transcripts, login lookups) hit memory and writes invalidate
        # implicitly.
        self.table_versions = TableVersions()
        self.table_versions.attach(admin_db)
        self.query_cache = QueryCache(self.table_versions, max_entries=512)
        self.connection = OpenDatabaseConnection(admin_db, cache=self.query_cache)
        self.wddb = wddb if wddb is not None else WebDocumentDatabase("server")
        self.library = library if library is not None else VirtualLibrary()
        self.desk = CirculationDesk(self.library)
        #: A read-only replica refuses every op outside
        #: :data:`~repro.tiers.protocol.REPLICA_SAFE_OPS`.
        self.read_only = False
        if self._data_dir is not None:
            # The library is a derived view over catalog_docs; rebuild
            # it from whatever the journal replay restored.
            self.refresh_catalog()
        self._sessions: dict[str, tuple[str, Role]] = {}
        self._session_counter = itertools.count(1)
        #: Optional overload defense; None preserves v1 behaviour.
        self.admission = admission
        #: Last-known-good replies for degraded serving while shedding.
        self.stale_reads = StaleReadCache(self.table_versions)
        self.requests_served = 0
        self.clock = 0.0  # advanced by callers that care about loan times
        self._handlers: dict[str, Callable[[Request, str, Role], Any]] = {
            "admit_student": self._op_admit_student,
            "register_course": self._op_register_course,
            "enroll": self._op_enroll,
            "record_grade": self._op_record_grade,
            "transcript": self._op_transcript,
            "register_station": self._op_register_station,
            "roster": self._op_roster,
            "publish_course_document": self._op_publish,
            "withdraw_course_document": self._op_withdraw,
            "search_library": self._op_search,
            "check_out": self._op_check_out,
            "check_in": self._op_check_in,
            "assessment_report": self._op_assessment,
        }

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    @property
    def _snapshot_path(self) -> Path:
        assert self._data_dir is not None
        return self._data_dir / "class_admin.snapshot"

    @property
    def _journal_path(self) -> Path:
        assert self._data_dir is not None
        return self._data_dir / "class_admin.wal"

    def _recover_admin_db(self) -> Database:
        """Rebuild the administration database from the data directory.

        Strict recovery first: a torn journal tail (crash mid-append) is
        tolerated, but corruption *before* the final record raises.  On
        :class:`~repro.rdb.JournalCorruptError` the server falls back to
        salvage mode — damaged records are skipped, the journal is
        compacted, and the server still comes up serving the surviving
        data; :meth:`recovery_report` says exactly what was lost.
        """
        assert self._data_dir is not None
        self._data_dir.mkdir(parents=True, exist_ok=True)
        snapshot = str(self._snapshot_path)
        wal = str(self._journal_path)
        salvaged = False
        try:
            db = Database.recover(
                "class_admin", ADMIN_SCHEMAS,
                snapshot_path=snapshot, journal_path=wal,
            )
        except JournalCorruptError:
            salvaged = True
            db = Database.recover(
                "class_admin", ADMIN_SCHEMAS,
                snapshot_path=snapshot, journal_path=wal, salvage=True,
            )
        # Opening the journal in salvage mode compacts it so the damage
        # cannot resurface on the next restart.
        journal = Journal(wal, sync=self._sync_policy, salvage=salvaged)
        db.attach_journal(journal)
        self.recovery_stats = db.recovery_stats
        return db

    def checkpoint(self) -> None:
        """Snapshot the administration tables and truncate the journal
        (crash-safe at every step; no-op for an in-memory server)."""
        if self._data_dir is None:
            return
        self.admin_db.snapshot(str(self._snapshot_path))

    @property
    def journal(self) -> Journal | None:
        """The administration database's journal (None in-memory).

        Replication taps this: a :class:`repro.replication.shipper
        .WalShipper` streams exactly the frames this journal appends.
        """
        return self.admin_db.journal

    @property
    def snapshot_path(self) -> Path | None:
        """Where :meth:`checkpoint` stages snapshots (None in-memory)."""
        return self._snapshot_path if self._data_dir is not None else None

    # ------------------------------------------------------------------
    # Replication support
    # ------------------------------------------------------------------
    def refresh_catalog(self) -> int:
        """Rebuild the virtual library from the ``catalog_docs`` table.

        Called after startup recovery and, on read replicas, whenever a
        replicated frame touches the catalog; returns the entry count.
        """
        entries = [
            CatalogEntry(
                doc_id=row["doc_id"],
                title=row["title"],
                course_number=row["course_number"],
                instructor=row["instructor"],
                keywords=tuple(
                    k for k in row["keywords"].split(",") if k
                ),
                starting_url=row["starting_url"],
                size_bytes=row["size_bytes"],
            )
            for row in self.admin_db.select("catalog_docs")
        ]
        return self.library.reload(entries)

    def adopt_database(self, db: Database, *, read_only: bool = True) -> None:
        """Serve from an externally managed database (a read replica).

        The replication follower owns ``db`` and mutates it through the
        replay path, which bypasses triggers — so the adopted connection
        runs **without** the query cache (its invalidation rides on
        triggers; caching here could serve stale rows forever).  The
        library view is rebuilt immediately and again on every catalog
        frame via :meth:`refresh_catalog`.
        """
        self.admin_db = db
        self.connection = OpenDatabaseConnection(db, cache=None)
        self.read_only = read_only
        self.refresh_catalog()

    def install_session(self, session_id: str, user: str, role: Role) -> None:
        """Mirror a primary-issued session so this replica honours it.

        Replicas cannot mint sessions (login is a write, and the
        admitted-students check belongs on the primary); the
        :class:`~repro.tiers.replicaset.ReplicaSet` broker calls this on
        every successful login it routes.
        """
        self._sessions[session_id] = (user, role)
        if role is Role.INSTRUCTOR:
            self.library.grant_instructor(user)

    def drop_session(self, session_id: str) -> None:
        """Mirror a logout (see :meth:`install_session`)."""
        self._sessions.pop(session_id, None)

    def sessions(self) -> dict[str, tuple[str, Role]]:
        """Snapshot of live sessions (for mirroring onto new replicas)."""
        return dict(self._sessions)

    def recovery_report(self) -> dict[str, Any]:
        """What startup recovery observed, for operators and tests."""
        if self.recovery_stats is None:
            return {"durable": False}
        report: dict[str, Any] = {"durable": True}
        report.update(self.recovery_stats.as_dict())
        return report

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def handle(self, request: Request) -> Response:
        """Admission-gate, then authorize and execute one request.

        With an :class:`~repro.admission.AdmissionController` installed,
        every request clears the quota/queue/deadline gates *before any
        work starts*; a shed request gets a typed overload response (or
        a bounded-staleness cached reply for replica-safe reads) in
        microseconds.  The effective deadline is entered as an ambient
        :func:`~repro.admission.deadline_scope` so every nested fan-out
        (shard RPC, scatter-gather, replica routing) can refuse to work
        for an expired caller.  Without a controller, v1 behaviour —
        except that a request-carried deadline still propagates.
        """
        if self.admission is None:
            with deadline_scope(request.deadline):
                return self._timed_handle(request)
        try:
            ticket = self.admission.admit(request)
        except OverloadError as exc:
            stale = self._serve_stale(request, exc)
            if stale is not None:
                return stale
            return Response.overload(
                request, str(exc), retry_after_s=exc.retry_after_s
            )
        try:
            with deadline_scope(ticket.deadline):
                response = self._timed_handle(request)
        finally:
            now = self.admission.clock()
            self.admission.complete(
                ticket, now=now, service_s=now - ticket.admitted_at
            )
        return response

    def _serve_stale(
        self, request: Request, exc: OverloadError
    ) -> Response | None:
        """A degraded (stale-cache) reply while shedding, or None.

        Only replica-safe reads from live sessions qualify, only within
        the cache's version-lag bound, and never for an already-expired
        caller (nobody is waiting for that answer).
        """
        if exc.reason == "deadline":
            return None
        if request.op not in _STALE_SERVABLE:
            return None
        if not request.session_id or request.session_id not in self._sessions:
            return None
        key = self._stale_key(request)
        if key is None:
            return None
        hit, data = self.stale_reads.lookup(key)
        if not hit:
            return None
        if OBS.enabled and OBS.registry is not None:
            OBS.registry.counter(
                "admission.stale_served", op=request.op
            ).inc()
        return Response.success(request, data, degraded="stale-cache")

    @staticmethod
    def _stale_key(request: Request) -> tuple | None:
        try:
            params = tuple(
                sorted((str(k), repr(v)) for k, v in request.params.items())
            )
        except Exception:
            return None
        return (request.op, request.session_id, params)

    def _timed_handle(self, request: Request) -> Response:
        """Authorize and execute one request (timed when obs is on)."""
        if not OBS.enabled:
            return self._handle(request)
        clock = OBS.clock
        start = clock()
        response = self._handle(request)
        registry = OBS.registry
        if registry is not None:
            registry.histogram(
                "tiers.request_seconds", op=request.op
            ).observe(clock() - start)
            registry.counter(
                "tiers.requests",
                op=request.op,
                status="ok" if response.ok else "error",
            ).inc()
        return response

    def _handle(self, request: Request) -> Response:
        """Authorize and execute one request."""
        self.requests_served += 1
        allowed = OPERATIONS.get(request.op)
        if allowed is None:
            return Response.failure(request, f"unknown operation {request.op!r}")
        if self.read_only and request.op not in REPLICA_SAFE_OPS:
            return Response.failure(
                request,
                f"read-only replica: {request.op!r} must go to the primary",
            )
        if request.op == "login":
            return self._op_login(request)
        session = (
            self._sessions.get(request.session_id)
            if request.session_id
            else None
        )
        if session is None:
            return Response.failure(request, "not logged in")
        user, role = session
        if role not in allowed:
            return Response.failure(
                request, f"role {role.value} may not call {request.op!r}"
            )
        if request.op == "logout":
            del self._sessions[request.session_id]  # type: ignore[arg-type]
            return Response.success(request, True)
        try:
            data = self._handlers[request.op](request, user, role)
        except OverloadError as exc:
            # A nested fan-out (shard RPC, replica route, scatter
            # fragment) shed or hit its deadline: surface it as a shed
            # reply, not an anonymous failure — it is retryable.
            return Response.overload(
                request,
                f"{type(exc).__name__}: {exc}",
                retry_after_s=exc.retry_after_s,
            )
        except (RdbError, LookupError, ValueError, RuntimeError) as exc:
            return Response.failure(request, f"{type(exc).__name__}: {exc}")
        tables = _STALE_SERVABLE.get(request.op)
        if tables is not None:
            key = self._stale_key(request)
            if key is not None:
                self.stale_reads.record(key, tables, data)
        return Response.success(request, data)

    # ------------------------------------------------------------------
    # Session ops
    # ------------------------------------------------------------------
    def _op_login(self, request: Request) -> Response:
        user = request.params.get("user")
        role_name = request.params.get("role")
        if not user or not role_name:
            return Response.failure(request, "login needs user and role")
        try:
            role = Role(role_name)
        except ValueError:
            return Response.failure(request, f"unknown role {role_name!r}")
        if role is Role.STUDENT:
            cursor = self.connection.cursor().select(
                "students", where=col("student_id") == user
            )
            row = cursor.fetchone()
            if row is None or not row["admitted"]:
                return Response.failure(
                    request, f"student {user!r} is not admitted"
                )
        if role is Role.INSTRUCTOR:
            self.library.grant_instructor(user)
        session_id = f"sess-{next(self._session_counter)}"
        self._sessions[session_id] = (user, role)
        return Response.success(request, {"session_id": session_id})

    # ------------------------------------------------------------------
    # Administration ops
    # ------------------------------------------------------------------
    def _op_admit_student(self, request: Request, _user: str, _role: Role) -> Any:
        params = request.params
        self.connection.cursor().insert(
            "students",
            {
                "student_id": params["student_id"],
                "name": params.get("name", params["student_id"]),
                "admitted": True,
            },
        )
        return {"student_id": params["student_id"]}

    def _op_register_course(self, request: Request, user: str, role: Role) -> Any:
        params = request.params
        instructor = params.get("instructor", user)
        if role is Role.INSTRUCTOR and instructor != user:
            raise ValueError("instructors may only register their own courses")
        self.connection.cursor().insert(
            "courses",
            {
                "course_number": params["course_number"],
                "title": params["title"],
                "instructor": instructor,
            },
        )
        return {"course_number": params["course_number"]}

    def _op_enroll(self, request: Request, user: str, role: Role) -> Any:
        params = request.params
        student = params.get("student_id", user)
        if role is Role.STUDENT and student != user:
            raise ValueError("students may only enroll themselves")
        self.connection.cursor().insert(
            "enrollments",
            {"student_id": student, "course_number": params["course_number"]},
        )
        return {"student_id": student, "course_number": params["course_number"]}

    def _op_record_grade(self, request: Request, user: str, role: Role) -> Any:
        params = request.params
        course = params["course_number"]
        if role is Role.INSTRUCTOR:
            cursor = self.connection.cursor().select(
                "courses", where=col("course_number") == course
            )
            row = cursor.fetchone()
            if row is None or row["instructor"] != user:
                raise ValueError(
                    f"{user} does not teach {course}; grade denied"
                )
        enrolled = self.connection.cursor().select(
            "enrollments",
            where=(col("student_id") == params["student_id"])
            & (col("course_number") == course),
        )
        if enrolled.fetchone() is None:
            raise ValueError(
                f"student {params['student_id']!r} is not enrolled in {course}"
            )
        self.connection.cursor().insert(
            "transcripts",
            {
                "student_id": params["student_id"],
                "course_number": course,
                "grade": float(params["grade"]),
            },
        )
        return True

    def _op_transcript(self, request: Request, user: str, role: Role) -> Any:
        student = request.params.get("student_id", user)
        if role is Role.STUDENT and student != user:
            raise ValueError("students may only view their own transcript")
        cursor = self.connection.cursor().select(
            "transcripts",
            where=col("student_id") == student,
            order_by="course_number",
        )
        return cursor.fetchall()

    def _op_register_station(self, request: Request, user: str, _role: Role) -> Any:
        params = request.params
        cursor = self.connection.cursor()
        existing = cursor.select(
            "stations", where=col("user_id") == user
        ).fetchone()
        if existing is None:
            cursor.insert(
                "stations",
                {
                    "user_id": user,
                    "station": params["station"],
                    "address": params.get("address", ""),
                },
            )
        else:
            cursor.update(
                "stations",
                {
                    "station": params["station"],
                    "address": params.get("address", ""),
                },
                where=col("user_id") == user,
            )
        return {"station": params["station"]}

    def _op_roster(self, request: Request, _user: str, _role: Role) -> Any:
        course = request.params["course_number"]
        cursor = self.connection.cursor().select(
            "enrollments",
            where=col("course_number") == course,
            order_by="student_id",
        )
        return [row["student_id"] for row in cursor.fetchall()]

    # ------------------------------------------------------------------
    # Library ops
    # ------------------------------------------------------------------
    def _op_publish(self, request: Request, user: str, _role: Role) -> Any:
        params = request.params
        entry = CatalogEntry(
            doc_id=params["doc_id"],
            title=params["title"],
            course_number=params["course_number"],
            instructor=user,
            keywords=tuple(params.get("keywords", ())),
            starting_url=params.get("starting_url"),
            size_bytes=int(params.get("size_bytes", 0)),
        )
        self.library.add_document(user, entry)
        try:
            self.connection.cursor().insert("catalog_docs", {
                "doc_id": entry.doc_id,
                "title": entry.title,
                "course_number": entry.course_number,
                "instructor": entry.instructor,
                "keywords": ",".join(entry.keywords),
                "starting_url": entry.starting_url,
                "size_bytes": entry.size_bytes,
            })
        except RdbError:
            # Keep the derived view and the table in step.
            self.library.remove_document(user, entry.doc_id)
            raise
        return {"doc_id": entry.doc_id}

    def _op_withdraw(self, request: Request, user: str, _role: Role) -> Any:
        doc_id = request.params["doc_id"]
        removed = self.library.remove_document(user, doc_id)
        if removed:
            self.connection.cursor().delete(
                "catalog_docs", where=col("doc_id") == doc_id
            )
        return removed

    def _op_search(self, request: Request, _user: str, _role: Role) -> Any:
        params = request.params
        results = self.library.search(
            keywords=params.get("keywords"),
            instructor=params.get("instructor"),
            course=params.get("course"),
            limit=params.get("limit"),
        )
        return [
            {"doc_id": r.doc_id, "score": r.score}
            for r in results
        ]

    def _op_check_out(self, request: Request, user: str, _role: Role) -> Any:
        time = float(request.params.get("time", self.clock))
        loan = self.desk.check_out(user, request.params["doc_id"], time)
        return {"doc_id": loan.doc_id, "checked_out_at": loan.checked_out_at}

    def _op_check_in(self, request: Request, user: str, _role: Role) -> Any:
        time = float(request.params.get("time", self.clock))
        held = self.desk.check_in(user, request.params["doc_id"], time)
        return {"held_seconds": held}

    def _op_assessment(self, request: Request, _user: str, _role: Role) -> Any:
        report = assess(self.desk, self.library)
        return [
            {
                "student": a.student,
                "checkouts": a.checkouts,
                "checkins": a.checkins,
                "distinct_documents": a.distinct_documents,
                "activity_score": a.activity_score,
            }
            for a in report.ranking()
        ]
