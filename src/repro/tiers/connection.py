"""The JDBC/ODBC-style open database connection.

"The implementation of the virtual course DBMS uses JDBC (or ODBC) as
the open database connection to some commercially available database
systems."  :class:`OpenDatabaseConnection` is that seam: a DB-API-ish
cursor facade over :class:`repro.rdb.Database`, so the middle tier
depends only on the connection contract — swapping in a different
engine means re-implementing this one adapter, exactly the paper's
"adaptive to open architecture / database standard" goal.

A connection may carry a :class:`~repro.tiers.cache.QueryCache`; cursor
selects then read through it, and the cache's per-table version keys
make every write an implicit invalidation (no stale reads).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from repro.rdb import Database, Expr

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tiers.cache import QueryCache

__all__ = ["OpenDatabaseConnection", "Cursor"]


class Cursor:
    """A DB-API-flavoured cursor: execute, fetchone/fetchall, rowcount."""

    def __init__(self, db: Database, cache: "QueryCache | None" = None) -> None:
        self._db = db
        self._cache = cache
        self._results: list[dict[str, Any]] = []
        self._pos = 0
        self.rowcount = -1

    # -- statements ----------------------------------------------------------
    def select(
        self,
        table: str,
        where: Expr | None = None,
        order_by: str | Sequence[str] | None = None,
        limit: int | None = None,
        columns: Sequence[str] | None = None,
    ) -> "Cursor":
        if self._cache is not None:
            self._results = self._cache.select(
                self._db, table, where=where, order_by=order_by,
                limit=limit, columns=columns,
            )
        else:
            self._results = self._db.select(
                table, where=where, order_by=order_by, limit=limit,
                columns=columns,
            )
        self._pos = 0
        self.rowcount = len(self._results)
        return self

    def insert(self, table: str, values: dict[str, Any]) -> "Cursor":
        self._db.insert(table, values)
        self._results = []
        self._pos = 0
        self.rowcount = 1
        return self

    def update(
        self, table: str, changes: dict[str, Any], where: Expr | None = None
    ) -> "Cursor":
        self.rowcount = self._db.update(table, changes, where=where)
        self._results = []
        self._pos = 0
        return self

    def delete(self, table: str, where: Expr | None = None) -> "Cursor":
        self.rowcount = self._db.delete(table, where=where)
        self._results = []
        self._pos = 0
        return self

    # -- fetching ----------------------------------------------------------
    def fetchone(self) -> dict[str, Any] | None:
        if self._pos >= len(self._results):
            return None
        row = self._results[self._pos]
        self._pos += 1
        return row

    def fetchall(self) -> list[dict[str, Any]]:
        rows = self._results[self._pos:]
        self._pos = len(self._results)
        return rows

    def fetchmany(self, size: int) -> list[dict[str, Any]]:
        rows = self._results[self._pos : self._pos + size]
        self._pos += len(rows)
        return rows


class OpenDatabaseConnection:
    """A connection to one engine, with transaction demarcation and an
    optional read-through result cache."""

    def __init__(
        self, db: Database, cache: "QueryCache | None" = None
    ) -> None:
        self._db = db
        self._closed = False
        self.cache = cache
        self.cursors_opened = 0

    @property
    def closed(self) -> bool:
        return self._closed

    def cursor(self) -> Cursor:
        self._check_open()
        self.cursors_opened += 1
        return Cursor(self._db, self.cache)

    def begin(self) -> None:
        self._check_open()
        self._db.begin()

    def commit(self) -> None:
        self._check_open()
        if self._db.in_transaction:
            self._db.commit()

    def rollback(self) -> None:
        self._check_open()
        if self._db.in_transaction:
            self._db.rollback()

    def close(self) -> None:
        if not self._closed and self._db.in_transaction:
            self._db.rollback()
        self._closed = True

    def __enter__(self) -> "OpenDatabaseConnection":
        return self

    def __exit__(self, exc_type: object, *_: object) -> None:
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("connection is closed")
