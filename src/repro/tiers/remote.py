"""The three-tier protocol over the simulated network.

The in-process :class:`~repro.tiers.server.ClassAdministrator` models
the middle tier's logic; this module puts the tier boundary on the
wire, as the deployed system would: clients at student workstations send
:class:`~repro.tiers.protocol.Request` messages to the server station,
which dispatches to the class administrator and sends the
:class:`~repro.tiers.protocol.Response` back.  Request/response sizes
are charged to the link model, so tier traffic competes with lecture
distribution for bandwidth — the contention the paper's pre-broadcast
design is careful about.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.net.messages import Message
from repro.net.station import Station
from repro.net.transport import Network
from repro.obs.instrument import OBS
from repro.tiers.protocol import Request, Response
from repro.tiers.server import ClassAdministrator

__all__ = ["RemoteTierServer", "RemoteTierClient"]

REQUEST_KIND = "tier.request"
RESPONSE_KIND = "tier.response"
RESPONSE_BYTES = 512


class RemoteTierServer:
    """Hosts a class administrator behind a network station."""

    def __init__(
        self,
        network: Network,
        station_name: str,
        administrator: ClassAdministrator | None = None,
    ) -> None:
        self.network = network
        self.station_name = station_name
        self.administrator = (
            administrator if administrator is not None else ClassAdministrator()
        )
        self.requests_received = 0
        network.station(station_name).on(REQUEST_KIND, self._on_request)

    def _on_request(self, _station: Station, message: Message) -> None:
        request: Request = message.payload
        self.requests_received += 1
        now = self.network.sim.now
        if request.deadline is not None and now >= request.deadline:
            # Expired in flight: refuse at dispatch, before the
            # administrator does any work for it.
            if OBS.enabled and OBS.registry is not None:
                OBS.registry.counter(
                    "admission.deadline_expired", site="remote-tier"
                ).inc()
            response = Response.overload(
                request,
                f"deadline passed before {request.op!r} was dispatched",
            )
        else:
            response = self.administrator.handle(request)
        self.network.send(
            self.station_name,
            message.src,
            RESPONSE_KIND,
            response,
            RESPONSE_BYTES + _payload_size(response.data),
        )


def _payload_size(data: Any) -> int:
    """Rough wire size of a response payload."""
    if data is None:
        return 0
    if isinstance(data, (list, tuple)):
        return sum(_payload_size(item) for item in data)
    if isinstance(data, dict):
        return sum(
            len(str(k)) + _payload_size(v) for k, v in data.items()
        )
    return len(str(data))


class RemoteTierClient:
    """A client stub at one workstation.

    ``call`` is asynchronous: it sends the request and invokes the
    callback with the response when it arrives.  ``call_sync`` drives
    the simulator until the response lands — convenient in scripts where
    the client is the only actor.
    """

    def __init__(
        self, network: Network, station_name: str, server_station: str
    ) -> None:
        self.network = network
        self.station_name = station_name
        self.server_station = server_station
        self.session_id: str | None = None
        self._pending: dict[int, Callable[[Response], None]] = {}
        self.responses_received = 0
        station = network.station(station_name)
        if not station.handles(RESPONSE_KIND):
            station.on(RESPONSE_KIND, self._on_response)
        #: response dispatchers share the station; register ours
        station.state.setdefault("tier_clients", {})[station_name] = self

    def _on_response(self, station: Station, message: Message) -> None:
        response: Response = message.payload
        # Route to whichever client on this station issued the request.
        for client in station.state.get("tier_clients", {}).values():
            callback = client._pending.pop(response.request_id, None)
            if callback is not None:
                client.responses_received += 1
                callback(response)
                return

    # ------------------------------------------------------------------
    def call(
        self,
        op: str,
        params: dict[str, Any] | None = None,
        on_response: Callable[[Response], None] | None = None,
        *,
        deadline_s: float | None = None,
        priority: str | None = None,
        tenant: str | None = None,
    ) -> Request:
        """Send a request; ``on_response`` fires at arrival.

        ``deadline_s`` is relative to the simulator clock now and
        travels as an absolute deadline: the transport discards the
        request if it expires in flight, the server refuses it at
        dispatch, and the admission controller (if installed) budgets
        queueing against it.
        """
        deadline = (
            self.network.sim.now + deadline_s
            if deadline_s is not None else None
        )
        request = Request(
            op=op, session_id=self.session_id, params=params or {},
            deadline=deadline, priority=priority, tenant=tenant,
        )
        if on_response is not None:
            self._pending[request.request_id] = on_response
        else:
            self._pending[request.request_id] = lambda _response: None
        self.network.send(
            self.station_name,
            self.server_station,
            REQUEST_KIND,
            request,
            request.wire_size,
        )
        return request

    def call_sync(self, op: str, **params: Any) -> Response:
        """Send and run the simulator until the response arrives."""
        box: list[Response] = []
        self.call(op, params, on_response=box.append)
        # Drive the clock forward until our response lands (bounded so a
        # lost response cannot hang the caller).
        deadline = self.network.sim.now + 3600.0
        while not box and self.network.sim.now < deadline:
            if not self.network.sim.step():
                break
        if not box:
            raise TimeoutError(
                f"no response to {op!r} from {self.server_station!r}"
            )
        return box[0]

    def login(self, user: str, role: str) -> str:
        response = self.call_sync("login", user=user, role=role)
        self.session_id = response.unwrap()["session_id"]
        return self.session_id
