"""The shard-aware middle-tier coordinator: routing + scatter-gather.

:class:`ShardedDatabase` fronts N shard handles (in-process
participants or :class:`~repro.net.shardrpc.ShardClient` proxies) with
the same DML/query surface as a single :class:`~repro.rdb.engine
.Database`, the paper's middle tier playing distributed query
processor:

* **writes** route by shard key — a statement whose rows or predicate
  pin one shard commits directly on it; anything spanning shards runs
  through :class:`~repro.sharding.coordinator.TwoPhaseCoordinator`;
* **reads** scatter to the pruned shard set with the predicate (and
  order/limit) pushed down, then gather: merge-sort for ordered
  queries, partial-aggregate recombination for aggregates (``avg``
  decomposes into per-shard ``sum``/``count``), per-shard pushdown for
  joins whose equi-join keys are co-located, central join otherwise;
* **EXPLAIN** surfaces the fan-out: the shard route line plus each
  shard's own :class:`~repro.rdb.query.SelectPlan` description.

Fragment-aware planning reuses the single-node machinery end to end:
every shard plans its fragment with the ordinary cost-based planner
and executes through the compiled batch pipeline, so
``REPRO_COMPILED_EXEC`` ablations apply unchanged to sharded scans.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.admission import check_deadline, current_deadline
from repro.obs.instrument import OBS
from repro.rdb import Schema
from repro.rdb.predicate import Expr
from repro.rdb.query import join_rows
from repro.sharding.coordinator import TwoPhaseCoordinator
from repro.sharding.shardmap import ShardMap

__all__ = ["ShardedDatabase"]


def _sort_key(keys: Sequence[str]):
    """The executor's None-first ORDER BY key, reused for the gather
    merge so sharded ordering is bit-identical to single-node."""
    def key(row: dict[str, Any]) -> tuple:
        return tuple((row[k] is not None, row[k]) for k in keys)
    return key


class ShardedDatabase:
    """Route one statement stream across a shard map."""

    def __init__(
        self,
        shard_map: ShardMap,
        handles: Mapping[int, Any],
        coordinator: TwoPhaseCoordinator
        | Callable[[], TwoPhaseCoordinator],
        *,
        schemas: Sequence[Schema] = (),
        clock: Callable[[], float] | None = None,
    ) -> None:
        if set(handles) != set(range(shard_map.num_shards)):
            raise ValueError(
                "handles must cover exactly the shard map's shards"
            )
        self.shard_map = shard_map
        # Held by reference, not copied: a crash-restarted shard swaps
        # its entry in place and reads must follow the live node.
        self.handles = handles
        self._coordinator = coordinator
        #: Clock for ambient-deadline checks between scatter fragments.
        #: Must read the same timebase the caller's deadline was set on
        #: (``sim.now`` in simulations); None disables the checks.
        self.clock = clock
        self._pk: dict[str, tuple[str, ...]] = {
            s.name: tuple(s.primary_key) for s in schemas
        }
        self.direct_writes = 0
        self.twopc_writes = 0

    @property
    def coordinator(self) -> TwoPhaseCoordinator:
        """The live 2PC coordinator.  A callable provider lets a
        crash-restarted coordinator be picked up transparently."""
        c = self._coordinator
        return c() if callable(c) else c

    # ------------------------------------------------------------------
    # Routing helpers
    # ------------------------------------------------------------------
    def _prune(self, table: str, where: Expr | None) -> tuple[int, ...]:
        shards = self.shard_map.shards_for_where(table, where)
        if OBS.enabled and OBS.registry is not None:
            OBS.registry.histogram("shard.fanout").observe(len(shards))
        return shards

    def _pk_shard(self, table: str, pk: Any) -> int | None:
        """The owning shard of primary key ``pk`` — resolvable only
        when the table is sharded *by* its primary key."""
        sharding = self.shard_map.sharding(table)
        if self._pk.get(table) != sharding.key:
            return None
        key = pk if isinstance(pk, tuple) else (pk,)
        if len(key) != len(sharding.key):
            return None
        return self.shard_map.shard_for_key(table, key)

    def _check_deadline(self, site: str) -> None:
        """Refuse the *next* scatter fragment once the ambient deadline
        passes — a half-gathered read nobody is waiting for stops
        burning the remaining shards."""
        if self.clock is not None and current_deadline() is not None:
            check_deadline(self.clock(), site=site)

    def _count_write(self, route: str) -> None:
        if route == "direct":
            self.direct_writes += 1
        else:
            self.twopc_writes += 1
        if OBS.enabled and OBS.registry is not None:
            OBS.registry.counter("shard.statements", route=route).inc()

    def _write(
        self, stmts_by_shard: Mapping[int, list[Any]]
    ) -> dict[int, list[Any]]:
        """Dispatch a routed write: direct for one shard, 2PC beyond."""
        self._count_write(
            "direct" if len(stmts_by_shard) <= 1 else "twopc"
        )
        return self.coordinator.run(stmts_by_shard)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def insert(self, table: str, values: dict[str, Any]) -> tuple:
        shard = self.shard_map.shard_for_row(table, values)
        results = self._write({shard: [["insert", table, values]]})
        return results[shard][0]

    def insert_many(
        self, table: str, rows: Iterable[dict[str, Any]]
    ) -> list[tuple]:
        """Batched insert; returns PK tuples in input-row order (the
        single-node contract), stitched back from per-shard batches."""
        rows = list(rows)
        groups = self.shard_map.group_rows(table, rows)
        if not groups:
            return []
        results = self._write({
            shard: [["insert_many", table, group]]
            for shard, group in groups.items()
        })
        pks = {shard: iter(result[0]) for shard, result in results.items()}
        return [
            next(pks[self.shard_map.shard_for_row(table, row)])
            for row in rows
        ]

    def update(
        self, table: str, changes: dict[str, Any], where: Expr | None
    ) -> int:
        for column in changes:
            if column in self.shard_map.sharding(table).key:
                raise ValueError(
                    f"cannot update shard key column {column!r} of "
                    f"{table!r} (rows would migrate between shards)"
                )
        shards = self._prune(table, where)
        results = self._write({
            shard: [["update", table, changes, where]] for shard in shards
        })
        return sum(r[0] for r in results.values())

    def delete(self, table: str, where: Expr | None) -> int:
        shards = self._prune(table, where)
        results = self._write({
            shard: [["delete", table, where]] for shard in shards
        })
        return sum(r[0] for r in results.values())

    def update_pk(
        self, table: str, pk: Any, changes: dict[str, Any]
    ) -> bool:
        shard = self._pk_shard(table, pk)
        shards = self.shard_map.all_shards() if shard is None else (shard,)
        results = self._write({
            s: [["update_pk", table, pk, changes]] for s in shards
        })
        return any(r[0] for r in results.values())

    def delete_pk(self, table: str, pk: Any) -> bool:
        shard = self._pk_shard(table, pk)
        shards = self.shard_map.all_shards() if shard is None else (shard,)
        results = self._write({
            s: [["delete_pk", table, pk]] for s in shards
        })
        return any(r[0] for r in results.values())

    def transact(
        self, statements: Sequence[Sequence[Any]]
    ) -> dict[int, list[Any]]:
        """Run a multi-statement transaction atomically across shards.

        Each statement routes by its own rule (inserts by row, updates
        and deletes by predicate pruning); the union of routed shards
        decides direct commit vs two-phase commit.  This is the general
        cross-shard write path the property and crash tests drive.
        """
        stmts_by_shard: dict[int, list[Any]] = {}

        def put(shard: int, stmt: Sequence[Any]) -> None:
            stmts_by_shard.setdefault(shard, []).append(list(stmt))

        for stmt in statements:
            op, table = stmt[0], stmt[1]
            if op == "insert" or op == "upsert":
                put(self.shard_map.shard_for_row(table, stmt[2]), stmt)
            elif op == "insert_many":
                for shard, group in \
                        self.shard_map.group_rows(table, stmt[2]).items():
                    put(shard, ["insert_many", table, group])
            elif op in ("update", "delete"):
                where = stmt[3] if op == "update" else stmt[2]
                for shard in self.shard_map.shards_for_where(table, where):
                    put(shard, stmt)
            elif op in ("update_pk", "delete_pk"):
                shard = self._pk_shard(table, stmt[2])
                targets = self.shard_map.all_shards() \
                    if shard is None else (shard,)
                for s in targets:
                    put(s, stmt)
            else:
                raise ValueError(f"unknown statement {op!r}")
        return self._write(stmts_by_shard)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, table: str, pk: Any) -> dict[str, Any] | None:
        shard = self._pk_shard(table, pk)
        if shard is not None:
            return self.handles[shard].get(table, pk)
        for handle in self.handles.values():
            row = handle.get(table, pk)
            if row is not None:
                return row
        return None

    def exists(self, table: str, pk: Any) -> bool:
        return self.get(table, pk) is not None

    def count(self, table: str, where: Expr | None = None) -> int:
        total = 0
        for s in self._prune(table, where):
            self._check_deadline("shard-count")
            total += self.handles[s].count(table, where)
        return total

    def select(
        self,
        table: str,
        where: Expr | None = None,
        order_by: str | Sequence[str] | None = None,
        descending: bool = False,
        limit: int | None = None,
        offset: int = 0,
        columns: Sequence[str] | None = None,
        distinct: bool = False,
    ) -> list[dict[str, Any]]:
        """Scatter-gather select with per-shard pushdown.

        Predicates, projection and (for ordered queries) a
        ``limit+offset`` top-k bound are pushed to each shard; the
        gather re-sorts with the executor's own None-first key, so the
        merged order matches a single-node select.  DISTINCT dedups
        globally after a per-shard pre-dedup.
        """
        shards = self._prune(table, where)
        if len(shards) == 1:
            return self.handles[shards[0]].select(
                table, where=where, order_by=order_by,
                descending=descending, limit=limit, offset=offset,
                columns=columns, distinct=distinct,
            )
        need = None if limit is None else limit + offset
        gathered: list[dict[str, Any]] = []
        for shard in shards:
            self._check_deadline("shard-select")
            gathered.extend(self.handles[shard].select(
                table, where=where, order_by=order_by,
                descending=descending,
                limit=need, offset=0,
                columns=columns, distinct=distinct,
            ))
        if order_by is not None:
            keys = (order_by,) if isinstance(order_by, str) \
                else tuple(order_by)
            gathered.sort(key=_sort_key(keys), reverse=descending)
        if distinct:
            seen: set[tuple] = set()
            unique: list[dict[str, Any]] = []
            for row in gathered:
                key = tuple(
                    (name, _hashable(row[name])) for name in sorted(row)
                )
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            gathered = unique
        if offset:
            gathered = gathered[offset:]
        if need is not None:
            gathered = gathered[:limit]
        return gathered

    def aggregate(
        self,
        table: str,
        spec: dict[str, tuple[str, str | None]],
        where: Expr | None = None,
        group_by: Sequence[str] | None = None,
    ) -> list[dict[str, Any]]:
        """Distributed aggregation by partial-aggregate recombination.

        Each shard computes decomposable partials (``avg`` becomes
        ``sum`` + ``count``); the gather combines per group and sorts
        groups with the executor's key.  Exact for the integer-valued
        columns the differential suite pins; float ``sum``/``avg`` may
        differ from single-node by summation order, as in any
        distributed engine.
        """
        partial_spec: dict[str, tuple[str, str | None]] = {}
        for out, (fn, column) in spec.items():
            if fn == "avg":
                partial_spec[f"__s_{out}"] = ("sum", column)
                partial_spec[f"__n_{out}"] = ("count", column)
            else:
                partial_spec[out] = (fn, column)
        group_cols = tuple(group_by) if group_by else ()
        shards = self._prune(table, where)
        partials: dict[tuple, list[dict[str, Any]]] = {}
        for shard in shards:
            self._check_deadline("shard-aggregate")
            for row in self.handles[shard].aggregate(
                table, partial_spec, where, group_cols or None
            ):
                key = tuple(row[c] for c in group_cols)
                partials.setdefault(key, []).append(row)
        out_rows: list[dict[str, Any]] = []
        ordered = sorted(
            partials,
            key=lambda k: tuple((v is not None, v) for v in k),
        )
        for key in ordered:
            bucket = partials[key]
            result: dict[str, Any] = dict(zip(group_cols, key))
            for out, (fn, _column) in spec.items():
                result[out] = self._combine(fn, out, bucket)
            out_rows.append(result)
        return out_rows

    @staticmethod
    def _combine(fn: str, out: str, bucket: list[dict[str, Any]]) -> Any:
        if fn == "count":
            return sum(row[out] for row in bucket)
        if fn == "sum":
            return sum(row[out] for row in bucket)
        if fn == "avg":
            total_n = sum(row[f"__n_{out}"] for row in bucket)
            if not total_n:
                return None
            return sum(row[f"__s_{out}"] for row in bucket) / total_n
        values = [row[out] for row in bucket if row[out] is not None]
        if not values:
            return None
        return min(values) if fn == "min" else max(values)

    def join(
        self,
        left_table: str,
        right_table: str,
        on: Sequence[tuple[str, str]],
        *,
        where_left: Expr | None = None,
        where_right: Expr | None = None,
        kind: str = "inner",
    ) -> list[dict[str, Any]]:
        """Equi-join: pushed to each shard when the join keys are
        co-located (equal keys provably share a shard), gathered and
        joined centrally otherwise."""
        if self._join_colocated(left_table, right_table, on):
            out: list[dict[str, Any]] = []
            for shard in self.shard_map.all_shards():
                self._check_deadline("shard-join")
                out.extend(self.handles[shard].join(
                    left_table, right_table, on,
                    where_left=where_left, where_right=where_right,
                    kind=kind,
                ))
            return out
        left_rows: list[dict[str, Any]] = []
        right_rows: list[dict[str, Any]] = []
        for shard in self._prune(left_table, where_left):
            self._check_deadline("shard-join")
            left_rows.extend(
                self.handles[shard].select(left_table, where=where_left)
            )
        for shard in self._prune(right_table, where_right):
            self._check_deadline("shard-join")
            right_rows.extend(
                self.handles[shard].select(right_table, where=where_right)
            )
        return join_rows(left_rows, right_rows, on, kind=kind)

    def _join_colocated(
        self, left: str, right: str, on: Sequence[tuple[str, str]]
    ) -> bool:
        """Equal join keys provably share a shard: both tables shard
        identically on the same columns, and the join equates every
        shard-key column with itself."""
        if not self.shard_map.colocated(left, right):
            return False
        pairs = {tuple(pair) for pair in on}
        key = self.shard_map.sharding(left).key
        return all((k, k) in pairs for k in key)

    # ------------------------------------------------------------------
    # EXPLAIN
    # ------------------------------------------------------------------
    def explain(self, table: str, where: Expr | None = None) -> str:
        """The fan-out line plus each routed shard's local plan."""
        shards = self.shard_map.shards_for_where(table, where)
        total = self.shard_map.num_shards
        route = "single-shard" if len(shards) == 1 else "scatter-gather"
        lines = [
            f"{table}: fanout {len(shards)}/{total} shards "
            f"[{','.join(str(s) for s in shards)}] "
            f"via {self.shard_map.describe(table)} ({route})"
        ]
        for shard in shards:
            plan = self.handles[shard].explain_plan(table, where)
            lines.append(f"  shard {shard}: {plan.describe()}")
        return "\n".join(lines)

    def stats(self) -> dict[str, Any]:
        return {
            "shards": self.shard_map.num_shards,
            "direct_writes": self.direct_writes,
            "twopc_writes": self.twopc_writes,
            "twopc_commits": self.coordinator.commits,
            "twopc_aborts": self.coordinator.aborts,
        }


def _hashable(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    return value
