"""Read routing over a replicated middle tier.

A :class:`ReplicaSet` fronts one primary class administrator and any
number of read replicas — followers whose administration database is
kept current by WAL shipping (:mod:`repro.replication`).  Requests are
routed by operation:

* ops in :data:`~repro.tiers.protocol.REPLICA_SAFE_OPS` (library
  search, transcripts, rosters) round-robin across **caught-up**
  replicas, scaling read throughput with replica count;
* every write — and every op touching primary-only state such as
  circulation loans — goes to the primary;
* ``login``/``logout`` execute on the primary (admission checks live
  there) and the resulting session is mirrored onto every replica via
  :meth:`~repro.tiers.server.ClassAdministrator.install_session`, so a
  replica can authorize the reads it serves.

This module deliberately does not import :mod:`repro.replication`:
replicas are registered with a duck-typed *readiness* callable (for a
replication follower, ``lambda: recoverer.caught_up``), keeping the
tier usable with any freshness source — or none, for tests.  The
convenience glue for wiring an actual follower lives in
:func:`catalog_refresher` plus :meth:`ReplicaSet.add_follower`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Sequence

from repro.obs.instrument import OBS
from repro.tiers.protocol import REPLICA_SAFE_OPS, Request, Response, Role
from repro.tiers.server import ClassAdministrator

__all__ = ["ReplicaSet", "catalog_refresher"]


def catalog_refresher(admin: ClassAdministrator) -> Callable[[Any], None]:
    """An ``on_apply`` callback that keeps a replica's library fresh.

    Rebuilds the derived search index whenever a replicated frame
    touches the durable catalog table; cheap no-op otherwise.  The
    frame is duck-typed (``.ops`` as replay op lists) so this composes
    with :class:`repro.replication.recoverer.Recoverer` without an
    import cycle.
    """

    def on_apply(frame: Any) -> None:
        ops = getattr(frame, "ops", None) or []
        if any(op[1] == "catalog_docs" for op in ops):
            admin.refresh_catalog()

    return on_apply


class _Replica:
    """One registered replica and its freshness source."""

    def __init__(
        self,
        name: str,
        admin: ClassAdministrator,
        ready: Callable[[], bool] | None,
        lag: Callable[[], int] | None = None,
    ) -> None:
        self.name = name
        self.admin = admin
        self.ready = ready if ready is not None else (lambda: True)
        #: replication records behind the primary (None = unknown, so
        #: the replica is ineligible for bounded-staleness routing)
        self.lag = lag
        self.requests_served = 0


class ReplicaSet:
    """Route one request stream across a primary and its read replicas.

    ``max_staleness_records`` bounds graceful degradation: while the
    primary's admission controller is shedding, reads may route to a
    **lagged** replica — but only one whose known replication lag is
    within this many records, and the reply is marked
    ``degraded="lagged-replica"`` so the client sees the trade.
    """

    def __init__(
        self,
        primary: ClassAdministrator,
        *,
        max_staleness_records: int = 64,
    ) -> None:
        self.primary = primary
        self.max_staleness_records = max_staleness_records
        self.replicas: list[_Replica] = []
        self._rr = 0
        self.reads_primary = 0
        self.reads_replica = 0
        self.reads_lagged = 0
        self.fallbacks = 0
        self.writes = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_replica(
        self,
        name: str,
        admin: ClassAdministrator,
        *,
        ready: Callable[[], bool] | None = None,
        lag: Callable[[], int] | None = None,
    ) -> None:
        """Register a read replica; ``ready`` gates routing (caught-up).

        ``lag`` reports replication records behind the primary and
        makes the replica eligible for bounded-staleness degraded
        routing.  Sessions the primary already issued are mirrored
        immediately so the new replica can serve existing users.
        """
        admin.read_only = True
        for session_id, (user, role) in self.primary.sessions().items():
            admin.install_session(session_id, user, role)
        self.replicas.append(_Replica(name, admin, ready, lag))

    def add_follower(self, name: str, admin: ClassAdministrator,
                     recoverer: Any) -> None:
        """Wire a replication follower as a read replica.

        ``recoverer`` is duck-typed (:class:`repro.replication.recoverer
        .Recoverer`-shaped): its database is adopted read-only, its
        rebuild/apply hooks keep the adoption and the library view
        fresh, and its ``caught_up`` flag gates routing.  Call before
        ``recoverer.start()`` so the first rebuild is observed too.
        """
        recoverer.on_rebuild = admin.adopt_database
        recoverer.on_apply = catalog_refresher(admin)
        if getattr(recoverer, "db", None) is not None:
            admin.adopt_database(recoverer.db)
        self.add_replica(
            name,
            admin,
            ready=lambda: recoverer.caught_up,
            lag=lambda: max(
                0, recoverer.primary_lsn_seen - recoverer.applied_lsn
            ),
        )

    def remove_replica(self, name: str) -> bool:
        """Drop a replica (promotion, decommission); False if unknown."""
        before = len(self.replicas)
        self.replicas = [r for r in self.replicas if r.name != name]
        return len(self.replicas) < before

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _pick(self) -> _Replica | None:
        """Next caught-up replica, round-robin; None when all lag."""
        if not self.replicas:
            return None
        for step in range(len(self.replicas)):
            replica = self.replicas[(self._rr + step) % len(self.replicas)]
            if replica.ready():
                self._rr = (self._rr + step + 1) % len(self.replicas)
                return replica
        return None

    def handle(self, request: Request) -> Response:
        """Authorize-and-execute with replica-aware routing."""
        if request.op == "login":
            response = self.primary.handle(request)
            if response.ok:
                user = request.params.get("user", "")
                role = Role(request.params["role"])
                session_id = response.data["session_id"]
                for replica in self.replicas:
                    replica.admin.install_session(session_id, user, role)
            return response
        if request.op == "logout":
            response = self.primary.handle(request)
            if response.ok and request.session_id:
                for replica in self.replicas:
                    replica.admin.drop_session(request.session_id)
            return response
        if request.op in REPLICA_SAFE_OPS:
            return self._route_read(request)
        self.writes += 1
        return self.primary.handle(request)

    def _route_read(self, request: Request) -> Response:
        """Caught-up replica, else (primary shedding) a lagged replica
        within the staleness bound, else the primary — never silently:
        the all-lagged fallback is counted on ``replica.fallback``."""
        replica = self._pick()
        if replica is not None:
            replica.requests_served += 1
            self.reads_replica += 1
            self._count_read("replica")
            return replica.admin.handle(request)
        if self.replicas and self._primary_shedding():
            lagged = self._pick_lagged()
            if lagged is not None:
                lagged.requests_served += 1
                self.reads_lagged += 1
                self._count_read("lagged")
                self._count_fallback("lagged-replica")
                response = lagged.admin.handle(request)
                if response.ok and response.degraded is None:
                    response = dataclasses.replace(
                        response, degraded="lagged-replica"
                    )
                return response
        if self.replicas:
            # All replicas lagged and no degraded route: the primary
            # absorbs the read rather than the caller seeing an error.
            self.fallbacks += 1
            self._count_fallback("primary")
        self.reads_primary += 1
        self._count_read("primary")
        return self.primary.handle(request)

    def _primary_shedding(self) -> bool:
        admission = getattr(self.primary, "admission", None)
        return admission is not None and admission.overloaded()

    def _pick_lagged(self) -> _Replica | None:
        """The least-lagged replica within ``max_staleness_records``
        whose lag is *known*; None when no replica qualifies."""
        best: _Replica | None = None
        best_lag = self.max_staleness_records + 1
        for replica in self.replicas:
            if replica.lag is None:
                continue
            lag = replica.lag()
            if lag <= self.max_staleness_records and lag < best_lag:
                best, best_lag = replica, lag
        return best

    def _count_read(self, target: str) -> None:
        if OBS.enabled and OBS.registry is not None:
            OBS.registry.counter("replica.reads", target=target).inc()

    def _count_fallback(self, target: str) -> None:
        if OBS.enabled and OBS.registry is not None:
            OBS.registry.counter("replica.fallback", target=target).inc()

    # ------------------------------------------------------------------
    def promote_replica(self, name: str) -> ClassAdministrator:
        """Make replica ``name`` the set's primary (tier-level half of a
        failover; the WAL-level half is :class:`repro.replication
        .failover.FailoverCoordinator`).  Sessions carry over — they
        were mirrored on login."""
        for replica in list(self.replicas):
            if replica.name == name:
                replica.admin.read_only = False
                self.primary = replica.admin
                self.remove_replica(name)
                return replica.admin
        raise LookupError(f"no replica named {name!r}")

    def stats(self) -> dict[str, Any]:
        """Routing counters plus per-replica service counts."""
        return {
            "reads_replica": self.reads_replica,
            "reads_primary": self.reads_primary,
            "reads_lagged": self.reads_lagged,
            "fallbacks": self.fallbacks,
            "writes": self.writes,
            "replicas": {
                r.name: {
                    "served": r.requests_served,
                    "ready": r.ready(),
                }
                for r in self.replicas
            },
        }


def route_table(ops: Sequence[str]) -> dict[str, str]:
    """Where each op routes: ``"replica"`` or ``"primary"`` (docs/tests)."""
    return {
        op: "replica" if op in REPLICA_SAFE_OPS else "primary"
        for op in ops
    }
