"""Request/response wire objects of the three-tier protocol.

Clients speak to the class administrator exclusively through
:class:`Request` / :class:`Response` — never by touching the DBMS —
which is what makes the middle tier a real tier.  ``Request.op`` names
an operation from :data:`OPERATIONS`; the server validates the op, the
session and the caller's role before dispatch.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Role", "Request", "Response", "OPERATIONS", "REPLICA_SAFE_OPS"]


class Role(enum.Enum):
    """The paper's three user perspectives."""

    STUDENT = "student"
    INSTRUCTOR = "instructor"
    ADMINISTRATOR = "administrator"


#: op name -> roles allowed to invoke it
OPERATIONS: dict[str, frozenset[Role]] = {
    # session
    "login": frozenset(Role),
    "logout": frozenset(Role),
    # administration ("admission records, transcripts, and so on")
    "admit_student": frozenset({Role.ADMINISTRATOR}),
    "register_course": frozenset({Role.ADMINISTRATOR, Role.INSTRUCTOR}),
    "enroll": frozenset({Role.ADMINISTRATOR, Role.STUDENT}),
    "record_grade": frozenset({Role.INSTRUCTOR, Role.ADMINISTRATOR}),
    "transcript": frozenset(Role),  # students may check their own
    "register_station": frozenset(Role),
    "roster": frozenset({Role.INSTRUCTOR, Role.ADMINISTRATOR}),
    # course authoring (instructor tools)
    "publish_course_document": frozenset({Role.INSTRUCTOR}),
    "withdraw_course_document": frozenset({Role.INSTRUCTOR}),
    # virtual library (student tools)
    "search_library": frozenset(Role),
    "check_out": frozenset({Role.STUDENT}),
    "check_in": frozenset({Role.STUDENT}),
    "assessment_report": frozenset({Role.INSTRUCTOR, Role.ADMINISTRATOR}),
}

#: Operations a read-only replica may serve.  Everything here reads
#: only state that WAL-shipping replication carries to followers — the
#: administration tables plus the catalog-backed library search index.
#: Circulation (check_out/check_in) and assessment read loan state that
#: lives only on the primary, so they are deliberately absent.
REPLICA_SAFE_OPS: frozenset[str] = frozenset({
    "search_library",
    "transcript",
    "roster",
})

_request_ids = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Request:
    """One client -> middle-tier call."""

    op: str
    session_id: str | None
    params: dict[str, Any] = field(default_factory=dict)
    request_id: int = field(default_factory=lambda: next(_request_ids))

    @property
    def wire_size(self) -> int:
        """Approximate bytes on the wire (for network-mode simulations)."""
        return 64 + sum(
            len(str(k)) + len(str(v)) for k, v in self.params.items()
        )


@dataclass(frozen=True, slots=True)
class Response:
    """One middle-tier -> client reply."""

    request_id: int
    ok: bool
    data: Any = None
    error: str | None = None

    @classmethod
    def success(cls, request: Request, data: Any = None) -> "Response":
        return cls(request_id=request.request_id, ok=True, data=data)

    @classmethod
    def failure(cls, request: Request, error: str) -> "Response":
        return cls(request_id=request.request_id, ok=False, error=error)

    def unwrap(self) -> Any:
        """Data on success; raises on failure (client convenience)."""
        if not self.ok:
            raise RuntimeError(f"request failed: {self.error}")
        return self.data
