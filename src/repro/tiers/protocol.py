"""Request/response wire objects of the three-tier protocol.

Clients speak to the class administrator exclusively through
:class:`Request` / :class:`Response` — never by touching the DBMS —
which is what makes the middle tier a real tier.  ``Request.op`` names
an operation from :data:`OPERATIONS`; the server validates the op, the
session and the caller's role before dispatch.

Protocol version 2 adds overload-robustness fields: every request may
carry an absolute ``deadline`` (on the caller's clock), a scheduling
``priority`` and a quota ``tenant``; every response may carry a
``retry_after_s`` backoff hint (set when ``shed`` — the server refused
to start the work) and a ``degraded`` marker naming the fallback that
served it (e.g. ``"stale-cache"``).  All six are optional with v1
defaults, so v1 peers interoperate unchanged —
:meth:`Request.from_wire` accepts deadline-less v1 dicts forever.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.admission.controller import PRIORITY_BULK, PRIORITY_INTERACTIVE

__all__ = [
    "Role",
    "Request",
    "Response",
    "OPERATIONS",
    "REPLICA_SAFE_OPS",
    "PRIORITY_INTERACTIVE",
    "PRIORITY_BULK",
]


class Role(enum.Enum):
    """The paper's three user perspectives."""

    STUDENT = "student"
    INSTRUCTOR = "instructor"
    ADMINISTRATOR = "administrator"


#: op name -> roles allowed to invoke it
OPERATIONS: dict[str, frozenset[Role]] = {
    # session
    "login": frozenset(Role),
    "logout": frozenset(Role),
    # administration ("admission records, transcripts, and so on")
    "admit_student": frozenset({Role.ADMINISTRATOR}),
    "register_course": frozenset({Role.ADMINISTRATOR, Role.INSTRUCTOR}),
    "enroll": frozenset({Role.ADMINISTRATOR, Role.STUDENT}),
    "record_grade": frozenset({Role.INSTRUCTOR, Role.ADMINISTRATOR}),
    "transcript": frozenset(Role),  # students may check their own
    "register_station": frozenset(Role),
    "roster": frozenset({Role.INSTRUCTOR, Role.ADMINISTRATOR}),
    # course authoring (instructor tools)
    "publish_course_document": frozenset({Role.INSTRUCTOR}),
    "withdraw_course_document": frozenset({Role.INSTRUCTOR}),
    # virtual library (student tools)
    "search_library": frozenset(Role),
    "check_out": frozenset({Role.STUDENT}),
    "check_in": frozenset({Role.STUDENT}),
    "assessment_report": frozenset({Role.INSTRUCTOR, Role.ADMINISTRATOR}),
}

#: Operations a read-only replica may serve.  Everything here reads
#: only state that WAL-shipping replication carries to followers — the
#: administration tables plus the catalog-backed library search index.
#: Circulation (check_out/check_in) and assessment read loan state that
#: lives only on the primary, so they are deliberately absent.
REPLICA_SAFE_OPS: frozenset[str] = frozenset({
    "search_library",
    "transcript",
    "roster",
})

_request_ids = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Request:
    """One client -> middle-tier call."""

    op: str
    session_id: str | None
    params: dict[str, Any] = field(default_factory=dict)
    request_id: int = field(default_factory=lambda: next(_request_ids))
    #: absolute deadline on the caller's clock; None = v1 (unbounded)
    deadline: float | None = None
    #: admission priority; None defaults to interactive at the server
    priority: str | None = None
    #: quota tenant (course/department); None -> the shared default
    tenant: str | None = None

    @property
    def wire_size(self) -> int:
        """Approximate bytes on the wire (for network-mode simulations)."""
        return 64 + sum(
            len(str(k)) + len(str(v)) for k, v in self.params.items()
        )

    def to_wire(self) -> dict[str, Any]:
        """A plain-dict wire form; v2 fields omitted when unset so the
        encoding of a v1-shaped request is byte-identical to v1."""
        wire: dict[str, Any] = {
            "op": self.op,
            "session_id": self.session_id,
            "params": dict(self.params),
            "request_id": self.request_id,
        }
        if self.deadline is not None:
            wire["deadline"] = self.deadline
        if self.priority is not None:
            wire["priority"] = self.priority
        if self.tenant is not None:
            wire["tenant"] = self.tenant
        return wire

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "Request":
        """Decode a v1 or v2 wire dict (missing v2 fields -> None)."""
        return cls(
            op=wire["op"],
            session_id=wire.get("session_id"),
            params=dict(wire.get("params") or {}),
            request_id=wire.get("request_id", 0),
            deadline=wire.get("deadline"),
            priority=wire.get("priority"),
            tenant=wire.get("tenant"),
        )


@dataclass(frozen=True, slots=True)
class Response:
    """One middle-tier -> client reply."""

    request_id: int
    ok: bool
    data: Any = None
    error: str | None = None
    #: True when the server refused to *start* the work (admission shed,
    #: breaker open, deadline expired) — retryable after backoff, unlike
    #: a failure that ran
    shed: bool = False
    #: suggested client backoff, seconds (the RETRY_AFTER hint)
    retry_after_s: float | None = None
    #: fallback that served this reply (``"stale-cache"``,
    #: ``"lagged-replica"``, ``"primary-fallback"``), None when fresh
    degraded: str | None = None

    @classmethod
    def success(
        cls, request: Request, data: Any = None, *, degraded: str | None = None
    ) -> "Response":
        return cls(
            request_id=request.request_id, ok=True, data=data, degraded=degraded
        )

    @classmethod
    def failure(cls, request: Request, error: str) -> "Response":
        return cls(request_id=request.request_id, ok=False, error=error)

    @classmethod
    def overload(
        cls,
        request: Request,
        error: str,
        *,
        retry_after_s: float | None = None,
    ) -> "Response":
        """A shed reply: no work started, retry after ``retry_after_s``."""
        return cls(
            request_id=request.request_id,
            ok=False,
            error=error,
            shed=True,
            retry_after_s=retry_after_s,
        )

    def unwrap(self) -> Any:
        """Data on success; raises on failure (client convenience)."""
        if not self.ok:
            raise RuntimeError(f"request failed: {self.error}")
        return self.data
