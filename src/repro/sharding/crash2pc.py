"""The 2PC crash matrix: kill any node at any byte, recover, audit.

E17 proved the committed-prefix guarantee for one engine and E18 for a
WAL-shipped follower.  This module proves **distributed atomicity**: a
cluster of journal-backed shards running a deterministic mix of
single-shard and cross-shard transactions, with a
:class:`~repro.fault.crashsim.FailpointFile` armed on exactly one
node's journal — the coordinator's or any participant's — at every
frame boundary and every ``stride``-byte offset of that journal's
golden write stream.  After the failpoint fires, full-cluster recovery
(restart every node, redeliver outstanding decisions, resolve in-doubt
transactions by presumed abort) must land the cluster on an
**all-or-nothing** state:

* every acknowledged transaction is durable on *all* of its shards
  (no lost acked write), and
* the in-flight transaction is either applied everywhere or nowhere
  (no split commit),

which together mean the recovered cluster state equals the golden
state after the last acked transaction, or that state plus the whole
in-flight transaction — nothing else.  Every shard must also pass the
full :func:`~repro.fault.crashsim.verify_database` audit (constraints,
secondary indexes) after recovery.

The workload is conflict-free by construction (fresh doc ids come from
per-shard pools probed out of the shard map), so in the golden run
every transaction commits and "state after transaction *k*" is well
defined.  ``crash_refs`` rows are co-located with their parent docs —
sharded by ``doc_id``, not their primary key — so per-shard foreign
keys stay meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.fault.crashsim import (
    CRASH_SCHEMAS,
    FailpointFile,
    SimulatedCrashError,
    crash_points,
    database_state,
    verify_database,
)
from repro.rdb.errors import RdbError
from repro.rdb.wal import read_frames
from repro.sharding.cluster import COORD, ShardCluster
from repro.sharding.shardmap import ShardMap, TableSharding
from repro.util.rng import make_rng

__all__ = [
    "TwoPCCrashCase",
    "TwoPCCrashReport",
    "build_2pc_workload",
    "run_2pc_golden",
    "run_2pc_crash_matrix",
    "twopc_shard_map",
]

#: cluster state: ``{shard_id: {table: {pk: row}}}``
ClusterState = dict[int, dict[str, dict[tuple, dict[str, Any]]]]


def _sharded(shard_map: ShardMap, cluster: ShardCluster):
    """Build the routing tier over a live cluster.  Imported lazily:
    ``tiers.shards`` itself imports ``repro.sharding``, so a module-
    level import here would close an import cycle."""
    from repro.tiers.shards import ShardedDatabase

    return ShardedDatabase(
        shard_map, cluster.handles, lambda: cluster.coordinator,
        schemas=CRASH_SCHEMAS,
    )


def twopc_shard_map(num_shards: int) -> ShardMap:
    """The matrix's map: both workload tables hash on ``doc_id`` so a
    ref always lands on its parent doc's shard (co-location)."""
    return ShardMap(num_shards, {
        "crash_docs": TableSharding(key=("doc_id",)),
        "crash_refs": TableSharding(key=("doc_id",)),
    })


def _id_pools(
    shard_map: ShardMap, per_shard: int
) -> dict[int, list[int]]:
    """``per_shard`` fresh doc ids per shard, probed out of the map."""
    pools: dict[int, list[int]] = {s: [] for s in shard_map.all_shards()}
    candidate = 1
    while any(len(pool) < per_shard for pool in pools.values()):
        owner = shard_map.shard_for_key("crash_docs", (candidate,))
        if len(pools[owner]) < per_shard:
            pools[owner].append(candidate)
        candidate += 1
    return pools


def build_2pc_workload(
    shard_map: ShardMap, *, txns: int, seed: int = 0
) -> list[list[list[Any]]]:
    """The deterministic transaction list both the golden run and every
    crash run execute, as :meth:`~repro.tiers.shards.ShardedDatabase
    .transact` statement batches.

    A three-beat cycle: a single-shard doc+ref insert, a cross-shard
    double insert, and a cross-shard insert-plus-update of an earlier
    doc.  Conflict-free: ids are fresh and updates only touch docs a
    previous transaction committed, so each transaction's outcome does
    not depend on which later ones survive a crash.
    """
    rng = make_rng(seed, "crash2pc-workload")
    num_shards = shard_map.num_shards
    pools = _id_pools(shard_map, 2 * txns + 4)
    cursor = {s: 0 for s in shard_map.all_shards()}
    landed: dict[int, list[int]] = {s: [] for s in shard_map.all_shards()}

    def fresh(shard: int) -> int:
        doc_id = pools[shard][cursor[shard]]
        cursor[shard] += 1
        landed[shard].append(doc_id)
        return doc_id

    def doc(doc_id: int) -> list[Any]:
        return ["insert", "crash_docs", {
            "doc_id": doc_id,
            "title": f"doc-{doc_id:05d}",
            "version": 1,
            "body": "x" * int(rng.integers(0, 120)),
        }]

    def ref(doc_id: int) -> list[Any]:
        return ["insert", "crash_refs", {
            "ref_id": doc_id, "doc_id": doc_id, "anchor": f"a{doc_id}",
        }]

    workload: list[list[list[Any]]] = []
    for k in range(1, txns + 1):
        first = k % num_shards
        second = (k + 1) % num_shards
        beat = k % 3
        if num_shards == 1 or beat == 1:
            doc_id = fresh(first)
            stmts = [doc(doc_id), ref(doc_id)]
        elif beat == 2:
            one, two = fresh(first), fresh(second)
            stmts = [doc(one), ref(one), doc(two)]
        else:
            stmts = [doc(fresh(first))]
            settled = landed[second][:-1] if second == first \
                else landed[second]
            if settled:
                victim = settled[int(rng.integers(0, len(settled)))]
                stmts.append(["update_pk", "crash_docs", victim, {
                    "version": int(rng.integers(2, 9)),
                }])
            else:
                stmts.append(doc(fresh(second)))
        workload.append(stmts)
    return workload


# ---------------------------------------------------------------------------
# Golden run
# ---------------------------------------------------------------------------
@dataclass
class TwoPCGolden:
    """The crash-free reference run every kill point is judged against."""

    shard_map: ShardMap
    workload: list[list[list[Any]]]
    #: ``states[k]`` is the cluster state after transaction ``k``
    #: (``states[0]`` is the empty initial state)
    states: list[ClusterState]
    #: per node (shard id or :data:`COORD`): journal frame boundaries
    boundaries: dict[Any, list[int]]
    #: per node: final journal byte size
    sizes: dict[Any, int]


def cluster_state(cluster: ShardCluster) -> ClusterState:
    """Deep-enough copy of every shard's table state."""
    return {
        shard_id: database_state(participant.db)
        for shard_id, participant in cluster.participants.items()
    }


def _frame_boundaries(path: Path) -> list[int]:
    """Byte offsets of frame ends (0 plus each cumulative frame end)."""
    bounds = [0]
    position = 0
    for frame in read_frames(path):
        position += len(frame.data)
        bounds.append(position)
    return bounds


def run_2pc_golden(
    workdir: str | Path,
    shard_map: ShardMap,
    *,
    txns: int,
    seed: int = 0,
) -> TwoPCGolden:
    """Run the workload crash-free, capturing per-transaction cluster
    states and every node's journal geometry."""
    workdir = Path(workdir)
    cluster = ShardCluster(
        workdir, CRASH_SCHEMAS, shard_map.num_shards,
        sync="commit", use_net=False,
    )
    sharded = _sharded(shard_map, cluster)
    workload = build_2pc_workload(shard_map, txns=txns, seed=seed)
    states: list[ClusterState] = [cluster_state(cluster)]
    for stmts in workload:
        sharded.transact(stmts)
        states.append(cluster_state(cluster))
    cluster.close()

    boundaries: dict[Any, list[int]] = {}
    sizes: dict[Any, int] = {}
    nodes: list[Any] = [COORD, *range(shard_map.num_shards)]
    for node in nodes:
        path = cluster.coord_journal_path() if node == COORD \
            else cluster.shard_journal_path(node)
        boundaries[node] = _frame_boundaries(path)
        sizes[node] = path.stat().st_size if path.exists() else 0
    return TwoPCGolden(
        shard_map=shard_map, workload=workload, states=states,
        boundaries=boundaries, sizes=sizes,
    )


# ---------------------------------------------------------------------------
# The matrix
# ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class TwoPCCrashCase:
    """One (node, byte offset) kill point's outcome."""

    target: Any  # shard id, or COORD
    offset: int
    ok: bool
    #: whether the failpoint actually fired (EOF offsets are controls)
    crashed: bool = False
    #: number of transactions acknowledged before the run stopped
    acked: int = 0
    #: which golden state the recovered cluster matched ("last-acked",
    #: "in-flight", "complete", or "" on failure)
    matched: str = ""
    detail: str = ""


@dataclass
class TwoPCCrashReport:
    """Aggregated results of one 2PC kill-at-point sweep."""

    cases: list[TwoPCCrashCase] = field(default_factory=list)

    @property
    def failures(self) -> list[TwoPCCrashCase]:
        return [c for c in self.cases if not c.ok]

    @property
    def ok(self) -> bool:
        """True when every kill point recovered all-or-nothing."""
        return not self.failures

    def summary(self) -> str:
        """One-line human summary."""
        fired = sum(1 for c in self.cases if c.crashed)
        status = "ok" if self.ok else f"{len(self.failures)} FAILURES"
        return (
            f"2pc crash matrix: {len(self.cases)} points "
            f"({fired} fired), {status}"
        )


def _run_crash_case(
    casedir: Path,
    golden: TwoPCGolden,
    *,
    target: Any,
    offset: int,
) -> TwoPCCrashCase:
    """Replay the workload with one node armed to die at ``offset``,
    then recover the whole cluster and audit atomicity."""
    wrapper = lambda fh: FailpointFile(fh, offset)  # noqa: E731
    cluster = ShardCluster(
        casedir, CRASH_SCHEMAS, golden.shard_map.num_shards,
        sync="commit", use_net=False, file_wrappers={target: wrapper},
    )
    sharded = _sharded(golden.shard_map, cluster)
    acked = 0
    crashed = False
    try:
        for stmts in golden.workload:
            sharded.transact(stmts)
            acked += 1
    except (SimulatedCrashError, RdbError):
        # First failure of any kind ends the run: either the armed
        # journal died mid-append, or a transaction was refused/aborted
        # because an earlier crash left its shard dead or blocked.
        # Either way every transaction before this one was acked.
        crashed = True

    try:
        cluster.recover_all()
    except Exception as exc:  # recovery itself must never fail
        cluster.close()
        return TwoPCCrashCase(
            target=target, offset=offset, ok=False, crashed=crashed,
            acked=acked, detail=f"recovery raised {exc!r}",
        )

    recovered = cluster_state(cluster)
    problems: list[str] = []
    for shard_id, participant in cluster.participants.items():
        problems += [
            f"shard {shard_id}: {p}"
            for p in verify_database(participant.db)
        ]
        if participant.in_doubt:
            problems.append(
                f"shard {shard_id}: still in doubt after recovery: "
                f"{sorted(participant.in_doubt)}"
            )
    cluster.close()

    # All-or-nothing: the recovered cluster must equal the golden state
    # after the last acked transaction, or that state plus the whole
    # in-flight transaction.  A split commit matches neither.
    matched = ""
    if recovered == golden.states[acked]:
        matched = "complete" if acked == len(golden.workload) \
            else "last-acked"
    elif acked < len(golden.workload) \
            and recovered == golden.states[acked + 1]:
        matched = "in-flight"
    else:
        problems.append(
            f"recovered state matches neither golden[{acked}] nor "
            f"golden[{acked + 1}] (split or lost write)"
        )
    if not crashed and acked != len(golden.workload):
        problems.append(
            f"run stopped at txn {acked + 1} without a crash"
        )

    return TwoPCCrashCase(
        target=target, offset=offset, ok=not problems, crashed=crashed,
        acked=acked, matched=matched, detail="; ".join(problems),
    )


def run_2pc_crash_matrix(
    workdir: str | Path,
    *,
    num_shards: int = 2,
    txns: int = 12,
    stride: int = 64,
    seed: int = 0,
) -> TwoPCCrashReport:
    """Sweep every node's journal with kill points and audit each one.

    For each target node — the coordinator and every shard — the sweep
    covers every frame boundary of that node's golden journal plus
    every ``stride``-byte offset, including the end-of-file no-crash
    control point.
    """
    workdir = Path(workdir)
    shard_map = twopc_shard_map(num_shards)
    golden = run_2pc_golden(
        workdir / "golden", shard_map, txns=txns, seed=seed
    )
    report = TwoPCCrashReport()
    case_number = 0
    for target in [COORD, *range(num_shards)]:
        points = crash_points(
            golden.sizes[target], golden.boundaries[target],
            stride=stride,
        )
        for offset in points:
            case_number += 1
            report.cases.append(_run_crash_case(
                workdir / f"case-{case_number:04d}", golden,
                target=target, offset=offset,
            ))
    return report
