"""One shard of a sharded database: local execution plus 2PC voting.

A :class:`ShardParticipant` wraps one :class:`~repro.rdb.engine
.Database` and its framed WAL.  It serves two write paths:

* **direct** — single-shard statements execute as ordinary local
  transactions (:meth:`ShardParticipant.execute`); durability is the
  engine's usual commit-time journal append;
* **two-phase** — for a cross-shard transaction the coordinator first
  calls :meth:`prepare`, which runs the statements inside an open
  engine transaction (constraints checked, triggers fired), journals a
  ``PREPARE`` record carrying the transaction's replay ops (forced to
  disk — the yes vote is a promise), and holds the engine transaction
  open until :meth:`commit` or :meth:`abort` journals the outcome.

While a transaction is prepared the participant **blocks**: every
other write is refused until the outcome arrives.  That is the
textbook cost of 2PC — a prepared participant holds its locks — and
here it is also a correctness lever: prepare/outcome record pairs are
never interleaved with other writes on the same shard, and at most one
transaction can be in doubt per shard after a crash.

Recovery (:func:`recover_participant`) replays the journal **in LSN
order** with :meth:`~repro.rdb.wal.Journal.read_records`: committed
transactions apply as usual, a ``PREPARE`` is stashed, and its ops are
applied only when the matching ``COMMIT`` record is reached (an
``ABORT`` drops them).  A prepare with no outcome on disk is
**in doubt**: the participant refuses writes until
:meth:`resolve_in_doubt` asks the coordinator — presumed abort: no
journaled decision means abort.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.obs.instrument import OBS
from repro.rdb import Database, Schema
from repro.rdb.errors import RdbError
from repro.rdb.wal import (
    Journal,
    RecoveryStats,
    encode_row,
    read_snapshot_info,
)

__all__ = ["TwoPhaseError", "ShardParticipant", "recover_participant"]


class TwoPhaseError(RdbError):
    """A 2PC protocol violation or a write refused by a blocked shard."""


def apply_statement(db: Database, stmt: Sequence[Any]) -> Any:
    """Execute one routed statement against a shard's database.

    Statements are small op-shaped sequences — ``["insert", table,
    values]``, ``["insert_many", table, rows]``, ``["upsert", table,
    values]``, ``["update", table, changes, where]``, ``["update_pk",
    table, pk, changes]``, ``["delete", table, where]``, ``["delete_pk",
    table, pk]`` — with WHERE as a live :class:`~repro.rdb.predicate
    .Expr` (the simulated network passes objects through).
    """
    op, table = stmt[0], stmt[1]
    if op == "insert":
        return db.insert(table, stmt[2])
    if op == "insert_many":
        return db.insert_many(table, stmt[2])
    if op == "upsert":
        return db.upsert(table, stmt[2])
    if op == "update":
        return db.update(table, stmt[2], stmt[3])
    if op == "update_pk":
        return db.update_pk(table, stmt[2], stmt[3])
    if op == "delete":
        return db.delete(table, stmt[2])
    if op == "delete_pk":
        return db.delete_pk(table, stmt[2])
    raise TwoPhaseError(f"unknown routed statement {op!r}")


class ShardParticipant:
    """One shard's engine, journal and 2PC state machine."""

    def __init__(
        self,
        shard_id: int,
        db: Database,
        journal: Journal,
        *,
        in_doubt: dict[str, list[Any]] | None = None,
        committed: set[str] | None = None,
        aborted: set[str] | None = None,
    ) -> None:
        self.shard_id = shard_id
        self.db = db
        self.journal = journal
        if db.journal is not journal:
            db.attach_journal(journal)
        #: gtxn currently prepared and awaiting its outcome (live)
        self._live_gtxn: str | None = None
        #: prepared-but-unresolved transactions found by recovery
        self.in_doubt: dict[str, list[Any]] = dict(in_doubt or {})
        self.committed: set[str] = set(committed or ())
        self.aborted: set[str] = set(aborted or ())
        self.recovery_stats: RecoveryStats | None = None
        self._observe_in_doubt()

    # ------------------------------------------------------------------
    # Write paths
    # ------------------------------------------------------------------
    def _require_writable(self) -> None:
        if self.in_doubt:
            raise TwoPhaseError(
                f"shard {self.shard_id} has {len(self.in_doubt)} "
                "in-doubt transaction(s); resolve before writing"
            )
        if self._live_gtxn is not None:
            raise TwoPhaseError(
                f"shard {self.shard_id} is blocked by prepared "
                f"transaction {self._live_gtxn}"
            )

    def execute(self, stmts: Sequence[Sequence[Any]]) -> list[Any]:
        """Run statements as one ordinary local transaction (the
        single-shard fast path; no 2PC records)."""
        self._require_writable()
        with self.db.transaction():
            return [apply_statement(self.db, s) for s in stmts]

    def prepare(self, gtxn: str, stmts: Sequence[Sequence[Any]]) -> dict:
        """Phase one: execute, journal PREPARE, vote.

        Returns ``{"vote": True, "results": [...]}`` with the engine
        transaction left open, or ``{"vote": False, "error": ...}``
        with every effect rolled back.  A participant that is blocked
        (already prepared, or in doubt) votes no rather than waiting —
        the single-transaction engine cannot queue behind the lock.
        """
        if self.in_doubt or self._live_gtxn is not None \
                or self.db.in_transaction:
            return {
                "vote": False,
                "error": f"shard {self.shard_id} is blocked",
            }
        self.db.begin()
        try:
            results = [apply_statement(self.db, s) for s in stmts]
            ops = self.db.pending_wal_ops()
        except RdbError as exc:
            self.db.rollback()
            return {"vote": False, "error": str(exc)}
        # The vote is a promise: the PREPARE record (ops included) is
        # forced to disk before "yes" leaves this shard.
        self.journal.append_2pc(
            {"2pc": "prepare", "gtxn": gtxn, "ops": ops}
        )
        self._live_gtxn = gtxn
        return {"vote": True, "results": results}

    def commit(self, gtxn: str) -> bool:
        """Phase two, commit outcome.  Idempotent: redelivery after the
        outcome was journaled (or after a checkpoint dropped the whole
        exchange) acknowledges without re-applying."""
        if self._live_gtxn == gtxn:
            # Outcome record first: if we die right after this append,
            # recovery replays the prepared ops at this exact position.
            self.journal.append_2pc({"2pc": "commit", "gtxn": gtxn})
            self._live_gtxn = None
            self.db.commit_prepared()
            self.committed.add(gtxn)
            return True
        if gtxn in self.in_doubt:
            # Redelivered outcome beat resolve_in_doubt to a recovered
            # prepare: settle it now, exactly as resolution would.
            self.journal.append_2pc({"2pc": "commit", "gtxn": gtxn})
            ops = self.in_doubt.pop(gtxn)
            self.db.apply_replicated({"txn": None, "ops": ops})
            self.committed.add(gtxn)
            self._observe_in_doubt()
            return True
        if gtxn in self.aborted:
            raise TwoPhaseError(
                f"commit for {gtxn} after it was aborted on shard "
                f"{self.shard_id}"
            )
        # Already committed, or forgotten after a checkpoint: ack.
        return True

    def abort(self, gtxn: str) -> bool:
        """Phase two, abort outcome (also the vote-no cleanup path)."""
        if self._live_gtxn == gtxn:
            self.journal.append_2pc({"2pc": "abort", "gtxn": gtxn})
            self._live_gtxn = None
            self.db.rollback()
            self.aborted.add(gtxn)
        elif gtxn in self.in_doubt:
            self.journal.append_2pc({"2pc": "abort", "gtxn": gtxn})
            self.in_doubt.pop(gtxn)
            self.aborted.add(gtxn)
            self._observe_in_doubt()
        return True

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def resolve_in_doubt(
        self, resolver: Callable[[str], str]
    ) -> dict[str, str]:
        """Settle every in-doubt transaction against the coordinator.

        ``resolver(gtxn)`` must return ``"commit"`` or ``"abort"`` —
        :meth:`~repro.sharding.coordinator.TwoPhaseCoordinator.resolve`
        implements presumed abort (commit iff a decision was journaled).
        Each outcome is journaled here before it is applied, so a crash
        mid-resolution just re-enters recovery with fewer doubts.
        """
        outcomes: dict[str, str] = {}
        for gtxn in list(self.in_doubt):
            outcome = resolver(gtxn)
            if outcome not in ("commit", "abort"):
                raise TwoPhaseError(
                    f"resolver returned {outcome!r} for {gtxn}"
                )
            self.journal.append_2pc({"2pc": outcome, "gtxn": gtxn})
            ops = self.in_doubt.pop(gtxn)
            if outcome == "commit":
                self.db.apply_replicated({"txn": None, "ops": ops})
                self.committed.add(gtxn)
            else:
                self.aborted.add(gtxn)
            outcomes[gtxn] = outcome
        self._observe_in_doubt()
        return outcomes

    def checkpoint(self, snapshot_path: str | os.PathLike[str]) -> None:
        """Snapshot + journal truncation, refused while any transaction
        is prepared or in doubt — a checkpoint must never separate a
        PREPARE record from its outcome."""
        if self._live_gtxn is not None or self.in_doubt:
            raise TwoPhaseError(
                "cannot checkpoint with prepared transactions outstanding"
            )
        self.db.snapshot(str(snapshot_path))

    # ------------------------------------------------------------------
    # Reads (delegations so the RPC layer has one call surface)
    # ------------------------------------------------------------------
    def select(self, table: str, **kwargs: Any) -> list[dict[str, Any]]:
        return self.db.select(table, **kwargs)

    def count(self, table: str, where: Any = None) -> int:
        return self.db.count(table, where)

    def get(self, table: str, pk: Any) -> dict[str, Any] | None:
        return self.db.get(table, pk)

    def exists(self, table: str, pk: Any) -> bool:
        return self.db.exists(table, pk)

    def aggregate(self, table: str, spec: dict, where: Any = None,
                  group_by: Sequence[str] | None = None) -> list[dict]:
        return self.db.aggregate(table, spec, where, group_by)

    def join(self, left: str, right: str, on: Sequence[tuple[str, str]],
             **kwargs: Any) -> list[dict[str, Any]]:
        return self.db.join(left, right, on, **kwargs)

    def explain_plan(self, table: str, where: Any = None) -> Any:
        return self.db.explain_plan(table, where)

    def last_lsn(self) -> int:
        return self.journal.last_lsn

    def status(self) -> dict[str, Any]:
        """Protocol-visible state (fixtures and tests poke at this)."""
        return {
            "shard": self.shard_id,
            "prepared": self._live_gtxn,
            "in_doubt": sorted(self.in_doubt),
            "last_lsn": self.journal.last_lsn,
        }

    def close(self) -> None:
        self.journal.close()

    # ------------------------------------------------------------------
    def _observe_in_doubt(self) -> None:
        if OBS.enabled and OBS.registry is not None:
            OBS.registry.gauge(
                "shard.in_doubt", shard=str(self.shard_id)
            ).set(len(self.in_doubt))


def recover_participant(
    shard_id: int,
    schemas: Sequence[Schema],
    journal_path: str | os.PathLike[str],
    *,
    snapshot_path: str | os.PathLike[str] | None = None,
    ddl_fn: Callable[[Database], None] | None = None,
    salvage: bool = False,
    sync: str = "commit",
    file_wrapper: Callable[[Any], Any] | None = None,
    name: str | None = None,
) -> ShardParticipant:
    """Cold-start one shard from its snapshot + journal.

    The integrated replay described in the module docstring: records
    stream in LSN order, prepared ops apply only at their journaled
    outcome, and unresolved prepares surface as ``in_doubt`` on the
    returned participant (which then refuses writes until
    :meth:`ShardParticipant.resolve_in_doubt` runs).
    """
    db = Database(name or f"shard-{shard_id}")
    for schema in schemas:
        db.create_table(schema)
    if ddl_fn is not None:
        ddl_fn(db)

    watermark = 0
    snapshot_path = Path(snapshot_path) if snapshot_path else None
    if snapshot_path is not None and snapshot_path.exists():
        tables, watermark = read_snapshot_info(snapshot_path)
        for table, rows in tables.items():
            if rows:
                db.apply_replicated({
                    "txn": None,
                    "ops": [["insert", table, encode_row(r)] for r in rows],
                })

    stats = RecoveryStats()
    pending: dict[str, list[Any]] = {}
    committed: set[str] = set()
    aborted: set[str] = set()
    for record in Journal.read_records(
        journal_path, salvage=salvage, start_lsn=watermark, stats=stats
    ):
        if record["kind"] == "txn":
            db.apply_replicated(
                {"txn": record["txn"], "ops": record["ops"]}
            )
            continue
        payload = record["payload"] or {}
        kind, gtxn = payload.get("2pc"), payload.get("gtxn")
        if kind == "prepare":
            pending[gtxn] = payload.get("ops") or []
        elif kind == "commit":
            ops = pending.pop(gtxn, None)
            if ops is not None:
                db.apply_replicated({"txn": None, "ops": ops})
            committed.add(gtxn)
        elif kind == "abort":
            pending.pop(gtxn, None)
            aborted.add(gtxn)

    journal = Journal(
        journal_path, sync=sync, salvage=salvage,
        file_wrapper=file_wrapper,
    )
    participant = ShardParticipant(
        shard_id, db, journal,
        in_doubt=pending, committed=committed, aborted=aborted,
    )
    participant.recovery_stats = stats
    return participant
