"""Shard maps: which shard owns which rows, and shard pruning.

A :class:`ShardMap` assigns every row of every registered table to one
of ``num_shards`` shards by its **shard key** (one or more columns):

* ``hash`` — a *stable* CRC-32 over the canonically JSON-encoded key
  (never Python's builtin ``hash``, which is salted per process), so
  the placement of a row is identical across runs, processes and
  recoveries;
* ``range`` — a sorted list of ``num_shards - 1`` upper-exclusive
  split points over a single key column; shard *i* owns keys below
  ``bounds[i]``, the last shard owns the rest.

Pruning turns a WHERE expression into the minimal set of shards that
can hold matching rows: equality bindings covering the full shard key
pin a single shard; range predicates on a range-partitioned key pin a
contiguous shard span; anything else fans out to all shards.  Related
tables sharded by the same key column(s) are **co-located**: a child
row always lands on its parent's shard, which is what lets the query
tier push FK joins down to each shard.
"""

from __future__ import annotations

import bisect
import json
import zlib
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.rdb.predicate import Expr, equality_bindings, range_bounds
from repro.rdb.wal import encode_value

__all__ = ["TableSharding", "ShardMap", "stable_shard_hash"]


def stable_shard_hash(key: tuple[Any, ...]) -> int:
    """Deterministic 32-bit hash of a shard-key tuple.

    CRC-32 over the canonical JSON encoding (the WAL value codec keeps
    datetimes/bytes stable too), so hash placement survives process
    restarts and ``PYTHONHASHSEED`` changes — a row must recover onto
    the shard that journaled it.
    """
    canon = json.dumps(
        [encode_value(v) for v in key],
        sort_keys=True, separators=(",", ":"),
    ).encode("utf-8")
    return zlib.crc32(canon)


@dataclass(frozen=True, slots=True)
class TableSharding:
    """How one table is partitioned."""

    key: tuple[str, ...]
    strategy: str = "hash"  # "hash" | "range"
    #: upper-exclusive split points (range strategy only), sorted
    bounds: tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        if self.strategy not in ("hash", "range"):
            raise ValueError(f"unknown shard strategy {self.strategy!r}")
        if not self.key:
            raise ValueError("shard key needs at least one column")
        if self.strategy == "range":
            if len(self.key) != 1:
                raise ValueError("range sharding needs a single key column")
            if list(self.bounds) != sorted(self.bounds):
                raise ValueError("range split points must be sorted")

    def describe(self) -> str:
        cols = ",".join(self.key)
        if self.strategy == "range":
            return f"range({cols})"
        return f"hash({cols})"


class ShardMap:
    """The catalog entry mapping tables to shards."""

    def __init__(
        self,
        num_shards: int,
        tables: Mapping[str, TableSharding],
    ) -> None:
        if num_shards < 1:
            raise ValueError("need at least one shard")
        for name, sharding in tables.items():
            if sharding.strategy == "range" and \
                    len(sharding.bounds) != num_shards - 1:
                raise ValueError(
                    f"{name}: range sharding over {num_shards} shards "
                    f"needs {num_shards - 1} split points, "
                    f"got {len(sharding.bounds)}"
                )
        self.num_shards = num_shards
        self.tables = dict(tables)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def sharding(self, table: str) -> TableSharding:
        try:
            return self.tables[table]
        except KeyError:
            raise LookupError(f"table {table!r} is not in the shard map") \
                from None

    def shard_for_key(self, table: str, key: tuple[Any, ...]) -> int:
        """The shard owning shard-key value ``key``."""
        sharding = self.sharding(table)
        if len(key) != len(sharding.key):
            raise ValueError(
                f"{table}: shard key has {len(sharding.key)} columns, "
                f"got {len(key)} values"
            )
        if sharding.strategy == "range":
            return bisect.bisect_right(sharding.bounds, key[0])
        return stable_shard_hash(key) % self.num_shards

    def shard_for_row(self, table: str, row: Mapping[str, Any]) -> int:
        """The shard owning ``row`` (all key columns must be present)."""
        sharding = self.sharding(table)
        try:
            key = tuple(row[c] for c in sharding.key)
        except KeyError as missing:
            raise ValueError(
                f"{table}: row is missing shard key column {missing}"
            ) from None
        return self.shard_for_key(table, key)

    def all_shards(self) -> tuple[int, ...]:
        return tuple(range(self.num_shards))

    # ------------------------------------------------------------------
    # Pruning
    # ------------------------------------------------------------------
    def shards_for_where(
        self, table: str, where: Expr | None
    ) -> tuple[int, ...]:
        """Minimal shard set that can hold rows matching ``where``.

        Sound over-approximation: pruning only narrows when the
        predicate *provably* pins the shard key — full-key equality
        (either strategy) or a bounded range on a range-partitioned
        key.  Everything else returns all shards.
        """
        sharding = self.sharding(table)
        if where is None:
            return self.all_shards()
        bindings = equality_bindings(where)
        if all(c in bindings for c in sharding.key):
            key = tuple(bindings[c] for c in sharding.key)
            return (self.shard_for_key(table, key),)
        if sharding.strategy == "range":
            bound = range_bounds(where).get(sharding.key[0])
            if bound is not None:
                lo = 0 if bound.low is None else \
                    bisect.bisect_right(sharding.bounds, bound.low)
                if bound.high is None:
                    hi = self.num_shards - 1
                elif bound.include_high:
                    hi = bisect.bisect_right(sharding.bounds, bound.high)
                else:
                    # Exclusive high: keys stop just below it, so a high
                    # that IS a split point stays left of the split.
                    hi = bisect.bisect_left(sharding.bounds, bound.high)
                return tuple(range(lo, hi + 1))
        return self.all_shards()

    def group_rows(
        self, table: str, rows: Iterable[Mapping[str, Any]]
    ) -> dict[int, list[dict[str, Any]]]:
        """Partition ``rows`` by owning shard (insert_many routing)."""
        groups: dict[int, list[dict[str, Any]]] = {}
        for row in rows:
            groups.setdefault(
                self.shard_for_row(table, row), []
            ).append(dict(row))
        return groups

    def colocated(self, left: str, right: str) -> bool:
        """True when two tables shard identically on the same columns,
        so equal keys are guaranteed to live on the same shard."""
        a, b = self.sharding(left), self.sharding(right)
        return (a.key == b.key and a.strategy == b.strategy
                and a.bounds == b.bounds)

    # ------------------------------------------------------------------
    # Catalog serialization / EXPLAIN
    # ------------------------------------------------------------------
    def describe(self, table: str) -> str:
        """One-line placement summary (surfaces in EXPLAIN)."""
        return f"{self.sharding(table).describe()}%{self.num_shards}"

    def as_dict(self) -> dict[str, Any]:
        return {
            "num_shards": self.num_shards,
            "tables": {
                name: {
                    "key": list(s.key),
                    "strategy": s.strategy,
                    "bounds": list(s.bounds),
                }
                for name, s in self.tables.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ShardMap":
        tables = {
            name: TableSharding(
                key=tuple(spec["key"]),
                strategy=spec.get("strategy", "hash"),
                bounds=tuple(spec.get("bounds", ())),
            )
            for name, spec in payload["tables"].items()
        }
        return cls(int(payload["num_shards"]), tables)
