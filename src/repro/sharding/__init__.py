"""Horizontal sharding with WAL-journaled two-phase commit.

The paper's m-ary distribution tree partitions the document database
across stations; this package makes the partitioning real at the
storage layer.  Tables are split across N shards — each a full
:class:`~repro.rdb.engine.Database` with its own framed WAL — by a
:class:`~repro.sharding.shardmap.ShardMap` (hash on the shard key, or
range).  Single-shard statements route directly; cross-shard writes
run through presumed-abort two-phase commit, with PREPARE / COMMIT /
ABORT / DECISION records journaled as first-class WAL v2 record kinds
on both sides, so a crash at *any byte offset* of any journal resolves
in-doubt transactions correctly on restart.

Layers:

* :mod:`~repro.sharding.shardmap` — partitioning and shard pruning;
* :mod:`~repro.sharding.participant` — one shard's 2PC state machine
  and integrated crash recovery;
* :mod:`~repro.sharding.coordinator` — the presumed-abort coordinator;
* :mod:`~repro.sharding.cluster` — assembly glue (N participants +
  coordinator, in-process or over :mod:`repro.net` RPC);
* :mod:`~repro.sharding.crash2pc` — the E20 crash matrix: a
  :class:`~repro.fault.crashsim.FailpointFile` sweep over every frame
  boundary of every node's journal, asserting atomicity at each point.

The query side (scatter-gather scans, top-k, aggregates, co-located
joins, EXPLAIN fan-out) lives in :mod:`repro.tiers.shards`, which is
the shard-aware middle-tier coordinator.
"""

from repro.sharding.cluster import ShardCluster
from repro.sharding.coordinator import (
    TwoPhaseCoordinator,
    TwoPhaseAborted,
)
from repro.sharding.crash2pc import (
    TwoPCCrashCase,
    TwoPCCrashReport,
    run_2pc_crash_matrix,
)
from repro.sharding.participant import (
    ShardParticipant,
    TwoPhaseError,
    recover_participant,
)
from repro.sharding.shardmap import ShardMap, TableSharding

__all__ = [
    "ShardMap",
    "TableSharding",
    "ShardParticipant",
    "TwoPhaseError",
    "recover_participant",
    "TwoPhaseCoordinator",
    "TwoPhaseAborted",
    "ShardCluster",
    "TwoPCCrashCase",
    "TwoPCCrashReport",
    "run_2pc_crash_matrix",
]
