"""Assembly glue: N shard participants + a 2PC coordinator.

:class:`ShardCluster` owns the node lifecycle the tests and benchmarks
need — build from a work directory, crash-restart single nodes from
their on-disk state, resolve in-doubt transactions, and strict-read
every journal at teardown.  Nodes talk either **in-process** (handles
are the participants themselves) or **over the simulated network**
(one station per shard plus a coordinator station, proxied through
:mod:`repro.net.shardrpc`), selected by ``use_net``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Sequence

from repro.net.shardrpc import ShardClient, ShardServer
from repro.net.sim import Simulator
from repro.net.station import Station
from repro.net.transport import Network
from repro.rdb import Database, Schema
from repro.rdb.wal import Journal
from repro.sharding.coordinator import TwoPhaseCoordinator
from repro.sharding.participant import (
    ShardParticipant,
    recover_participant,
)

__all__ = ["ShardCluster"]

#: failpoint-wrapper key for the coordinator's journal
COORD = "coord"


class ShardCluster:
    """N shards + coordinator with restartable, journal-backed nodes.

    ``file_wrappers`` maps a node key — a shard id, or
    :data:`COORD` — to a journal ``file_wrapper`` (e.g. a
    :class:`~repro.fault.crashsim.FailpointFile` factory), which is how
    the crash matrix arms a kill point on exactly one node.
    """

    def __init__(
        self,
        workdir: str | Path,
        schemas: Sequence[Schema],
        num_shards: int,
        *,
        ddl_fn: Callable[[Database], None] | None = None,
        sync: str = "commit",
        use_net: bool = False,
        network: Network | None = None,
        file_wrappers: dict[Any, Callable[[Any], Any]] | None = None,
    ) -> None:
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.schemas = tuple(schemas)
        self.num_shards = num_shards
        self.ddl_fn = ddl_fn
        self.sync = sync
        self.use_net = use_net
        self.file_wrappers = dict(file_wrappers or {})
        self.participants: dict[int, ShardParticipant] = {}
        self.servers: dict[int, ShardServer] = {}
        self.handles: dict[int, Any] = {}

        if use_net:
            self.network = network if network is not None else Network(
                Simulator(), default_latency_s=0.002
            )
            self.network.add(Station(self.coord_station()))
        else:
            self.network = network

        for shard_id in range(num_shards):
            self._start_shard(shard_id)
        self.coordinator = TwoPhaseCoordinator.recover(
            self.coord_journal_path(), self.handles, sync=sync,
            file_wrapper=self.file_wrappers.get(COORD),
        )

    # ------------------------------------------------------------------
    # Paths / stations
    # ------------------------------------------------------------------
    def shard_journal_path(self, shard_id: int) -> Path:
        return self.workdir / f"shard-{shard_id}.wal"

    def shard_snapshot_path(self, shard_id: int) -> Path:
        return self.workdir / f"shard-{shard_id}.snapshot"

    def coord_journal_path(self) -> Path:
        return self.workdir / "coord.wal"

    def shard_station(self, shard_id: int) -> str:
        return f"shard-{shard_id}"

    def coord_station(self) -> str:
        return "coord"

    def journal_paths(self) -> list[Path]:
        return [self.coord_journal_path()] + [
            self.shard_journal_path(i) for i in range(self.num_shards)
        ]

    # ------------------------------------------------------------------
    # Node lifecycle
    # ------------------------------------------------------------------
    def _start_shard(self, shard_id: int) -> ShardParticipant:
        participant = recover_participant(
            shard_id, self.schemas, self.shard_journal_path(shard_id),
            snapshot_path=self.shard_snapshot_path(shard_id),
            ddl_fn=self.ddl_fn, sync=self.sync,
            file_wrapper=self.file_wrappers.get(shard_id),
        )
        self.participants[shard_id] = participant
        if self.use_net:
            assert self.network is not None
            station = self.shard_station(shard_id)
            if station not in [s.name for s in self.network.stations()]:
                self.network.add(Station(station))
            self.servers[shard_id] = ShardServer(
                self.network, station, participant
            )
            self.handles[shard_id] = ShardClient(
                self.network, self.coord_station(), station,
                shard_id=shard_id,
            )
        else:
            self.handles[shard_id] = participant
        return participant

    def restart_shard(
        self, shard_id: int,
        file_wrapper: Callable[[Any], Any] | None = None,
    ) -> ShardParticipant:
        """Crash-restart one shard from its on-disk journal (the old
        failpoint, if any, is dropped unless a new one is given)."""
        old = self.participants.get(shard_id)
        if old is not None:
            try:
                old.close()
            except Exception:
                pass  # a crashed journal may refuse its final sync
        if file_wrapper is None:
            self.file_wrappers.pop(shard_id, None)
        else:
            self.file_wrappers[shard_id] = file_wrapper
        participant = self._start_shard(shard_id)
        if self.use_net:
            self.coordinator.participants[shard_id] = \
                self.handles[shard_id]
        else:
            self.coordinator.participants[shard_id] = participant
        return participant

    def restart_coordinator(
        self, file_wrapper: Callable[[Any], Any] | None = None,
    ) -> TwoPhaseCoordinator:
        """Crash-restart the coordinator from its journal; outstanding
        decisions come back ready for :meth:`TwoPhaseCoordinator
        .redeliver`."""
        try:
            self.coordinator.close()
        except Exception:
            pass
        if file_wrapper is None:
            self.file_wrappers.pop(COORD, None)
        else:
            self.file_wrappers[COORD] = file_wrapper
        self.coordinator = TwoPhaseCoordinator.recover(
            self.coord_journal_path(), self.handles, sync=self.sync,
            file_wrapper=self.file_wrappers.get(COORD),
        )
        return self.coordinator

    def recover_all(self) -> dict[str, Any]:
        """Full-cluster crash recovery: restart every node, redeliver
        outstanding commits, resolve every in-doubt transaction.
        Returns ``{"redelivered": [...], "resolved": {gtxn: outcome}}``.
        """
        for shard_id in range(self.num_shards):
            self.restart_shard(shard_id)
        self.restart_coordinator()
        redelivered = self.coordinator.redeliver()
        resolved: dict[str, str] = {}
        for participant in self.participants.values():
            resolved.update(
                participant.resolve_in_doubt(self.coordinator.resolve)
            )
        return {"redelivered": redelivered, "resolved": resolved}

    # ------------------------------------------------------------------
    def verify_journals(self) -> None:
        """Strict-read every journal end to end (teardown integrity
        check: no mid-file corruption anywhere)."""
        for path in self.journal_paths():
            for _record in Journal.read_records(path):
                pass

    def close(self) -> None:
        for participant in self.participants.values():
            try:
                participant.close()
            except Exception:
                pass
        try:
            self.coordinator.close()
        except Exception:
            pass
