"""The presumed-abort two-phase-commit coordinator.

Protocol (the classic presumed-abort variant, R* style):

1. **Prepare** — the coordinator sends each involved shard its slice
   of the transaction.  Every participant that votes yes has already
   forced a ``PREPARE`` record (with the replay ops) to its own WAL.
2. **Decide** — on unanimous yes the coordinator forces a ``DECISION``
   record (outcome commit, participant list) to *its* WAL.  This
   append is the commit point: the caller is acked as soon as it
   returns.  On any no-vote, refusal or participant crash the
   coordinator sends ``abort`` to the yes-voters and journals nothing —
   *presumed abort*: no decision on disk **means** abort.
3. **Commit** — the decision fans out to the participants.  When every
   one has acknowledged, a lazy ``END`` record lets the coordinator
   forget the transaction; until then it is *outstanding* and will be
   redelivered after a coordinator restart.

Crash analysis, byte by byte:

* participant dies during its ``PREPARE`` append → the record is torn
  off its tail on recovery; it never voted, the coordinator aborts the
  others, nothing was acked — atomic (all-abort);
* participant dies after voting yes → its recovery finds a ``PREPARE``
  with no outcome (*in doubt*) and asks :meth:`TwoPhaseCoordinator
  .resolve`: commit iff the decision record exists — atomic either way;
* coordinator dies during the ``DECISION`` append → if the record
  survived, recovery redelivers commits (participants are idempotent);
  if it tore, every prepared participant resolves to abort.  The ack
  strictly follows the forced append, so no acked transaction can land
  in the torn case — "no lost acked write".
"""

from __future__ import annotations

import os
from typing import Any, Callable, Iterable, Mapping

from repro.obs.instrument import OBS
from repro.rdb.wal import Journal, RecoveryStats
from repro.sharding.participant import TwoPhaseError

__all__ = ["TwoPhaseAborted", "TwoPhaseCoordinator"]


class TwoPhaseAborted(TwoPhaseError):
    """A cross-shard transaction was aborted (vote-no or unreachable
    participant); every shard's effects were rolled back."""

    def __init__(self, gtxn: str, reasons: dict[int, str]) -> None:
        detail = "; ".join(
            f"shard {sid}: {why}" for sid, why in sorted(reasons.items())
        ) or "aborted"
        super().__init__(f"transaction {gtxn} aborted ({detail})")
        self.gtxn = gtxn
        self.reasons = reasons


class TwoPhaseCoordinator:
    """Drives cross-shard transactions over duck-typed participants.

    ``participants`` maps shard id to anything with ``prepare(gtxn,
    stmts)``, ``commit(gtxn)`` and ``abort(gtxn)`` — an in-process
    :class:`~repro.sharding.participant.ShardParticipant` or an RPC
    proxy (:class:`~repro.net.shardrpc.ShardClient`).
    """

    def __init__(
        self,
        journal: Journal,
        participants: Mapping[int, Any],
        *,
        outstanding: dict[str, list[int]] | None = None,
        next_seq: int = 1,
    ) -> None:
        self.journal = journal
        self.participants = dict(participants)
        #: committed decisions not yet acked by every participant
        self.outstanding: dict[str, list[int]] = dict(outstanding or {})
        self._seq = next_seq
        self.commits = 0
        self.aborts = 0

    # ------------------------------------------------------------------
    def next_gtxn(self) -> str:
        gtxn = f"g-{self._seq}"
        self._seq += 1
        return gtxn

    def run(
        self, stmts_by_shard: Mapping[int, list[Any]]
    ) -> dict[int, list[Any]]:
        """Run one cross-shard transaction; returns per-shard statement
        results on commit, raises :class:`TwoPhaseAborted` otherwise.

        Single-shard inputs short-circuit to a direct local transaction
        on that shard — no protocol records, same ack guarantee.
        """
        shards = sorted(stmts_by_shard)
        if not shards:
            return {}
        started = OBS.clock() if OBS.enabled else None
        if len(shards) == 1:
            # Not a 2PC at all: one shard, one ordinary local commit.
            sid = shards[0]
            results = self.participants[sid].execute(stmts_by_shard[sid])
            return {sid: results}

        gtxn = self.next_gtxn()
        results: dict[int, list[Any]] = {}
        reasons: dict[int, str] = {}
        prepared: list[int] = []
        for sid in shards:
            try:
                ballot = self.participants[sid].prepare(
                    gtxn, stmts_by_shard[sid]
                )
            except Exception as exc:
                # A participant that died mid-prepare never voted;
                # release the ones already prepared, then let the crash
                # surface (the caller sees no ack).
                self._abort_all(gtxn, prepared)
                self._count_outcome("abort")
                raise
            if not ballot.get("vote"):
                reasons[sid] = str(ballot.get("error", "voted no"))
                break
            prepared.append(sid)
            results[sid] = ballot.get("results", [])
        if len(prepared) < len(shards):
            self._abort_all(gtxn, prepared)
            self._observe("abort", started)
            raise TwoPhaseAborted(gtxn, reasons)

        # Unanimous yes: force the decision — THE commit point.  The
        # caller is acked once this append returns, before any
        # participant has seen the outcome.
        self.journal.append_2pc({
            "2pc": "decision", "gtxn": gtxn,
            "outcome": "commit", "shards": shards,
        })
        self.outstanding[gtxn] = list(shards)
        self._deliver(gtxn)
        self._observe("commit", started)
        return results

    def _abort_all(self, gtxn: str, prepared: Iterable[int]) -> None:
        for sid in prepared:
            try:
                self.participants[sid].abort(gtxn)
            except Exception:
                # Presumed abort: an unreachable participant resolves
                # its own doubt to abort when it comes back.
                pass

    def _deliver(self, gtxn: str) -> None:
        """Fan the commit decision out; journal END once all acked."""
        remaining = []
        for sid in self.outstanding.get(gtxn, []):
            try:
                self.participants[sid].commit(gtxn)
            except Exception:
                remaining.append(sid)
        if remaining:
            self.outstanding[gtxn] = remaining
        else:
            # Lazy: END is bookkeeping, not correctness — losing it
            # only costs a redundant (idempotent) redelivery.
            self.journal.append_2pc({"2pc": "end", "gtxn": gtxn})
            self.outstanding.pop(gtxn, None)

    def redeliver(self) -> list[str]:
        """Re-send the commit decision of every outstanding transaction
        (restart path / retry after a participant came back)."""
        done = []
        for gtxn in list(self.outstanding):
            self._deliver(gtxn)
            if gtxn not in self.outstanding:
                done.append(gtxn)
        return done

    # ------------------------------------------------------------------
    def resolve(self, gtxn: str) -> str:
        """Presumed abort: ``"commit"`` iff a decision was journaled.

        Outstanding decisions answer from memory; anything else —
        including transactions this coordinator has entirely forgotten
        (END written, journal checkpointed) — answers abort, which is
        sound because a participant only asks while *in doubt*, and a
        forgotten transaction was acked by every participant."""
        return "commit" if gtxn in self.outstanding else "abort"

    def resolver(self) -> Callable[[str], str]:
        return self.resolve

    def close(self) -> None:
        self.journal.close()

    # ------------------------------------------------------------------
    def _count_outcome(self, outcome: str) -> None:
        if outcome == "commit":
            self.commits += 1
        else:
            self.aborts += 1
        if OBS.enabled and OBS.registry is not None:
            OBS.registry.counter("shard.2pc", outcome=outcome).inc()

    def _observe(self, outcome: str, started: float | None) -> None:
        self._count_outcome(outcome)
        if started is not None and OBS.enabled and OBS.registry is not None:
            OBS.registry.histogram(
                "shard.2pc_seconds", outcome=outcome
            ).observe(OBS.clock() - started)

    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        journal_path: str | os.PathLike[str],
        participants: Mapping[int, Any],
        *,
        sync: str = "commit",
        salvage: bool = False,
        file_wrapper: Callable[[Any], Any] | None = None,
    ) -> "TwoPhaseCoordinator":
        """Rebuild coordinator state from its journal.

        Decisions without an END are outstanding (redeliver them);
        the gtxn sequence resumes past every journaled id."""
        outstanding: dict[str, list[int]] = {}
        max_seq = 0
        stats = RecoveryStats()
        for record in Journal.read_records(
            journal_path, salvage=salvage, stats=stats
        ):
            if record["kind"] != "2pc":
                continue
            payload = record["payload"] or {}
            gtxn = payload.get("gtxn", "")
            if gtxn.startswith("g-"):
                try:
                    max_seq = max(max_seq, int(gtxn[2:]))
                except ValueError:
                    pass
            if payload.get("2pc") == "decision" and \
                    payload.get("outcome") == "commit":
                outstanding[gtxn] = [int(s) for s in payload["shards"]]
            elif payload.get("2pc") == "end":
                outstanding.pop(gtxn, None)
        journal = Journal(
            journal_path, sync=sync, salvage=salvage,
            file_wrapper=file_wrapper,
        )
        coordinator = cls(
            journal, participants,
            outstanding=outstanding, next_seq=max_seq + 1,
        )
        return coordinator
