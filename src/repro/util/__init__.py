"""Shared utilities: seeded RNG helpers, unit conversions, validation.

These helpers are deliberately tiny and dependency-free so that every
substrate package (:mod:`repro.rdb`, :mod:`repro.net`, ...) can use them
without import cycles.
"""

from repro.util.rng import SeedSequenceFactory, derive_seed, make_rng
from repro.util.units import (
    KIB,
    MIB,
    GIB,
    Bandwidth,
    bits_to_bytes,
    bytes_to_bits,
    format_bytes,
    format_duration,
    mbps,
    transfer_time,
)
from repro.util.validation import (
    check_identifier,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "SeedSequenceFactory",
    "derive_seed",
    "make_rng",
    "KIB",
    "MIB",
    "GIB",
    "Bandwidth",
    "bits_to_bytes",
    "bytes_to_bits",
    "format_bytes",
    "format_duration",
    "mbps",
    "transfer_time",
    "check_identifier",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
]
