"""Argument-validation helpers used across the public API.

Raising early with a precise message is cheaper than debugging a corrupted
simulation two layers down, so public entry points validate eagerly with
these helpers and internal hot loops stay unchecked.
"""

from __future__ import annotations

import re
from typing import Any, TypeVar

__all__ = [
    "check_type",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_identifier",
]

T = TypeVar("T")

_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_./\- ]*$")


def check_type(value: Any, expected: type[T] | tuple[type, ...], name: str) -> T:
    """Raise :class:`TypeError` unless ``value`` is an ``expected`` instance."""
    if not isinstance(value, expected):
        if isinstance(expected, tuple):
            names = " | ".join(t.__name__ for t in expected)
        else:
            names = expected.__name__
        raise TypeError(f"{name} must be {names}, got {type(value).__name__}")
    return value


def check_positive(value: float, name: str) -> float:
    """Raise :class:`ValueError` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Raise :class:`ValueError` unless ``value`` is >= 0."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Raise :class:`ValueError` unless ``value`` is in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    return value


def check_identifier(value: str, name: str) -> str:
    """Validate a user-supplied object name.

    Names identify databases, scripts, stations and tables; they must be
    non-empty, start with a letter or underscore, and use a conservative
    character set so they can double as file names and URL components.
    """
    check_type(value, str, name)
    if not _IDENTIFIER_RE.match(value):
        raise ValueError(
            f"{name} must match {_IDENTIFIER_RE.pattern!r}, got {value!r}"
        )
    return value
