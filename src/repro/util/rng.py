"""Deterministic random-number helpers.

Every stochastic component in the reproduction (workload generators, the
network simulator, access traces) takes an explicit integer seed so that
experiments are bit-for-bit repeatable.  This module centralizes how seeds
are derived and how generators are constructed, following the
``numpy.random.Generator`` API recommended by the scientific-python
guides (never the legacy ``RandomState``).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "make_rng", "SeedSequenceFactory"]


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a stable child seed from ``base_seed`` and a label path.

    The derivation hashes the base seed together with the string forms of
    the labels, so independent subsystems that share a base seed still get
    decorrelated streams.  The result fits in 63 bits (always
    non-negative).

    >>> derive_seed(42, "stations", 3) == derive_seed(42, "stations", 3)
    True
    >>> derive_seed(42, "stations", 3) != derive_seed(42, "stations", 4)
    True
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(str(int(base_seed)).encode("utf-8"))
    for label in labels:
        digest.update(b"\x1f")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest(), "big") & 0x7FFF_FFFF_FFFF_FFFF


def make_rng(seed: int, *labels: object) -> np.random.Generator:
    """Build a :class:`numpy.random.Generator` for ``seed`` and labels."""
    return np.random.default_rng(derive_seed(seed, *labels))


class SeedSequenceFactory:
    """Hands out decorrelated child seeds from one root seed.

    Useful when a component spawns an unknown number of children (e.g. one
    RNG per simulated station) and wants each to be independent yet
    reproducible regardless of creation order, as long as labels are
    stable.
    """

    def __init__(self, root_seed: int) -> None:
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def seed_for(self, *labels: object) -> int:
        """Return the child seed for a label path."""
        return derive_seed(self._root_seed, *labels)

    def rng_for(self, *labels: object) -> np.random.Generator:
        """Return a generator seeded for a label path."""
        return np.random.default_rng(self.seed_for(*labels))
