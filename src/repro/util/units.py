"""Byte, bandwidth and time unit helpers.

The network simulator and the storage accounting measure everything in
bytes and seconds.  The helpers here keep unit conversions explicit at
call sites (``mbps(10)`` rather than a bare ``1_250_000``), which the
paper's bandwidth-driven distribution policies make pervasive.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "bytes_to_bits",
    "bits_to_bytes",
    "mbps",
    "Bandwidth",
    "transfer_time",
    "format_bytes",
    "format_duration",
]

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


def bytes_to_bits(n_bytes: float) -> float:
    """Convert a byte count to bits."""
    return float(n_bytes) * 8.0


def bits_to_bytes(n_bits: float) -> float:
    """Convert a bit count to bytes."""
    return float(n_bits) / 8.0


def mbps(value: float) -> float:
    """Convert megabits/second to bytes/second.

    >>> mbps(8)
    1000000.0
    """
    return float(value) * 1_000_000.0 / 8.0


@dataclass(frozen=True, slots=True)
class Bandwidth:
    """A link bandwidth in bytes per second.

    A tiny value type so that signatures can say ``Bandwidth`` instead of
    a bare float whose unit the reader must guess.
    """

    bytes_per_second: float

    def __post_init__(self) -> None:
        if self.bytes_per_second <= 0:
            raise ValueError(
                f"bandwidth must be positive, got {self.bytes_per_second!r}"
            )

    @classmethod
    def from_mbps(cls, value: float) -> "Bandwidth":
        """Build from megabits per second."""
        return cls(mbps(value))

    @property
    def mbps(self) -> float:
        """The bandwidth expressed in megabits per second."""
        return bytes_to_bits(self.bytes_per_second) / 1_000_000.0

    def seconds_for(self, n_bytes: float) -> float:
        """Time to push ``n_bytes`` through this bandwidth (no latency)."""
        if n_bytes < 0:
            raise ValueError(f"byte count must be >= 0, got {n_bytes!r}")
        return float(n_bytes) / self.bytes_per_second


def transfer_time(n_bytes: float, bandwidth: Bandwidth, latency_s: float = 0.0) -> float:
    """Latency + serialization time for one message of ``n_bytes``."""
    if latency_s < 0:
        raise ValueError(f"latency must be >= 0, got {latency_s!r}")
    return latency_s + bandwidth.seconds_for(n_bytes)


def format_bytes(n_bytes: float) -> str:
    """Human-readable byte count (binary prefixes).

    >>> format_bytes(1536)
    '1.5 KiB'
    """
    n = float(n_bytes)
    for unit, factor in (("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if abs(n) >= factor:
            return f"{n / factor:.1f} {unit}"
    return f"{n:.0f} B"


def format_duration(seconds: float) -> str:
    """Human-readable duration.

    >>> format_duration(90)
    '1m30.0s'
    """
    s = float(seconds)
    if s < 0:
        return "-" + format_duration(-s)
    if s < 1e-3:
        return f"{s * 1e6:.0f}us"
    if s < 1:
        return f"{s * 1e3:.1f}ms"
    if s < 60:
        return f"{s:.2f}s"
    minutes, rem = divmod(s, 60.0)
    if minutes < 60:
        return f"{int(minutes)}m{rem:04.1f}s"
    hours, minutes = divmod(int(minutes), 60)
    return f"{hours}h{minutes:02d}m{rem:04.1f}s"
