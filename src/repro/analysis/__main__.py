"""``python -m repro.analysis`` — the lint CLI.

Commands::

    python -m repro.analysis lint [paths...] [--strict] [--format json]
                                  [--baseline FILE] [--write-baseline]
                                  [--rule ID ...] [--config PYPROJECT]
    python -m repro.analysis rules

Exit codes: 0 clean, 1 findings (in strict mode also unused
suppressions/baseline entries), 2 usage or configuration error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.config import load_config
from repro.analysis.findings import Finding, Severity
from repro.analysis.linter import lint_paths
from repro.analysis.registry import default_registry
from repro.analysis.reporters import render_json, render_text


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis for the WDDB core.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    lint = commands.add_parser("lint", help="run the AST lint rules")
    lint.add_argument("paths", nargs="*", help="files/directories to scan")
    lint.add_argument(
        "--strict",
        action="store_true",
        help="gate on warnings, unused suppressions and stale baseline "
        "entries as well as errors",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    lint.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: [tool.repro-analysis].baseline)",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    lint.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="ID",
        help="run only this rule (repeatable)",
    )
    lint.add_argument(
        "--config",
        default=None,
        metavar="PYPROJECT",
        help="pyproject.toml to read [tool.repro-analysis] from",
    )

    commands.add_parser("rules", help="list the rule catalogue")
    return parser


def _cmd_rules() -> int:
    for rule_id, severity, summary in default_registry().catalogue():
        print(f"{rule_id:32} {severity:8} {summary}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    config = load_config(args.config)
    paths = args.paths or list(config.paths)
    result = lint_paths(paths, config=config, only=args.rules)

    baseline_path = (
        args.baseline if args.baseline is not None else config.baseline
    )
    baselined = 0
    unused_baseline: list[str] = []
    findings = result.findings
    if baseline_path:
        baseline = load_baseline(baseline_path)
        findings, baselined, unused_baseline = apply_baseline(
            findings, baseline
        )

    if args.write_baseline:
        if not baseline_path:
            print("error: --write-baseline needs a baseline path",
                  file=sys.stderr)
            return 2
        write_baseline(baseline_path, result.findings)
        print(
            f"wrote {len(result.findings)} finding(s) to {baseline_path}"
        )
        return 0

    display = list(findings)
    if args.strict:
        display.extend(result.unused_suppressions)
        for fingerprint in unused_baseline:
            display.append(
                Finding(
                    rule="stale-baseline-entry",
                    message=(
                        f"baseline entry {fingerprint} no longer matches any "
                        "finding; remove it (or regenerate with "
                        "--write-baseline)"
                    ),
                    path=baseline_path,
                    severity=Severity.WARNING,
                )
            )

    render = render_json if args.fmt == "json" else render_text
    print(
        render(
            display,
            files_checked=result.files_checked,
            suppressed=result.suppressed,
            baselined=baselined,
        )
    )
    if args.strict:
        return 1 if display else 0
    return 1 if [f for f in findings if f.severity is Severity.ERROR] else 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "rules":
        return _cmd_rules()
    try:
        return _cmd_lint(args)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
