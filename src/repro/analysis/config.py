"""Configuration for the analysis subsystem.

Defaults live here; a ``[tool.repro-analysis]`` block in
``pyproject.toml`` overrides them.  All path-shaped options are matched
against a file's *module-relative* path — the path from the ``repro``
package root down, e.g. ``repro/rdb/table.py`` — so the configuration is
independent of where the checkout lives.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any

__all__ = ["AnalysisConfig", "load_config", "module_relpath"]


@dataclass(frozen=True)
class AnalysisConfig:
    """Tunables for the lint rules and CLI defaults."""

    #: Default scan roots when the CLI gets no path arguments.
    paths: tuple[str, ...] = ("src/repro",)

    #: Baseline file of accepted historical findings ("" disables).
    baseline: str = "analysis-baseline.json"

    #: Rule ids disabled outright.
    disable: tuple[str, ...] = ()

    #: Module-relative prefixes that count as simulation/experiment code
    #: for the nondeterminism guard.
    simulation_paths: tuple[str, ...] = (
        "repro/net/",
        "repro/workloads/",
        "repro/distribution/",
        "repro/fault/",
    )

    #: Modules allowed to call ``Table.apply_*`` without an undo record:
    #: the table itself and the undo log that replays inverses.
    mutation_allowlist: tuple[str, ...] = (
        "repro/rdb/table.py",
        "repro/rdb/transaction.py",
    )

    #: Modules that legitimately touch ``Table._rows`` / ``_next_rowid``
    #: internals (the rest must go through the index-maintaining API).
    index_internal_modules: tuple[str, ...] = ("repro/rdb/table.py",)

    #: Modules allowed to build code at runtime (``exec``/``eval``).
    #: Inside them the codegen-namespace rule audits that generated code
    #: runs under an explicit namespace with a pinned builtins whitelist
    #: free of I/O/import/entropy names; everywhere else any
    #: ``exec``/``eval`` call is flagged outright.
    codegen_modules: tuple[str, ...] = ("repro/rdb/compile.py",)

    #: Module-relative prefixes where a silently-swallowed
    #: ``LockConflictError`` is treated as a defect.
    lock_sensitive_paths: tuple[str, ...] = (
        "repro/core/",
        "repro/fault/",
        "repro/distribution/",
        "repro/tiers/",
    )

    #: Module-relative prefixes audited by the retry-discipline rule:
    #: retry loops here must be bounded by a deadline/budget AND pace
    #: themselves with backoff (see rules/retry.py).
    retry_paths: tuple[str, ...] = (
        "repro/net/",
        "repro/fault/",
        "repro/replication/",
        "repro/tiers/",
        "repro/distribution/",
    )

    #: Extra rule modules to import (plugin hook): dotted module names
    #: whose import registers rules against the default registry.
    plugins: tuple[str, ...] = field(default_factory=tuple)

    def is_disabled(self, rule_id: str) -> bool:
        return rule_id in self.disable

    def in_simulation_path(self, relpath: str) -> bool:
        return relpath.startswith(tuple(self.simulation_paths))

    def in_lock_sensitive_path(self, relpath: str) -> bool:
        return relpath.startswith(tuple(self.lock_sensitive_paths))

    def in_retry_path(self, relpath: str) -> bool:
        return relpath.startswith(tuple(self.retry_paths))


def load_config(pyproject: str | Path | None = None) -> AnalysisConfig:
    """Read ``[tool.repro-analysis]`` from ``pyproject.toml``.

    Missing file or missing block yields the defaults.  Unknown keys
    raise — a typo in CI config should fail loudly, not silently lint
    with defaults.
    """
    config = AnalysisConfig()
    path = Path(pyproject) if pyproject is not None else Path("pyproject.toml")
    if not path.is_file():
        return config
    with path.open("rb") as handle:
        data = tomllib.load(handle)
    block: dict[str, Any] = data.get("tool", {}).get("repro-analysis", {})
    if not block:
        return config
    known = {f.name for f in fields(AnalysisConfig)}
    unknown = set(block) - known
    if unknown:
        raise ValueError(
            f"unknown [tool.repro-analysis] keys: {sorted(unknown)!r}"
        )
    updates: dict[str, Any] = {}
    for key, value in block.items():
        if isinstance(value, list):
            updates[key] = tuple(str(item) for item in value)
        else:
            updates[key] = value
    return replace(config, **updates)


def module_relpath(path: str | Path) -> str:
    """A file's path from the ``repro`` package root down.

    Files outside any ``repro`` package (e.g. test fixtures in a temp
    directory) fall back to their plain file name, so path-scoped rules
    simply do not apply to them unless the fixture builds a
    ``repro/...`` directory shape.
    """
    parts = Path(path).as_posix().split("/")
    for position in range(len(parts) - 1, -1, -1):
        if parts[position] == "repro":
            return "/".join(parts[position:])
    return parts[-1]
