"""The lint driver: file discovery, AST parsing, rules, suppressions.

Suppression syntax (inline, always rule-scoped)::

    table._rows[rowid] = row  # repro-analysis: ignore[index-invariant] -- why

A suppression comment covers findings on its own line and on the line
directly below it (comment-above style).  When the comment sits on a
``def`` line — or the line directly above one — it covers the whole
function body, which keeps replay-style functions from needing one
comment per statement.  Unused suppressions are themselves reported in
strict mode (rule id ``unused-suppression``), so stale escapes cannot
accumulate.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.config import AnalysisConfig, module_relpath
from repro.analysis.findings import Finding, Severity, sort_findings
from repro.analysis.registry import ModuleContext, Rule, RuleRegistry, default_registry

__all__ = ["LintResult", "lint_paths", "lint_source"]

_SUPPRESS_RE = re.compile(
    r"#\s*repro-analysis:\s*ignore\[([A-Za-z0-9_,\- ]+)\]"
)


@dataclass
class _Suppression:
    line: int
    rules: frozenset[str]
    used: bool = False

    def matches(self, rule_id: str) -> bool:
        return rule_id in self.rules


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    unused_suppressions: list[Finding] = field(default_factory=list)

    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def exit_code(self, strict: bool = False) -> int:
        """0 when clean; 1 when findings should gate.

        Non-strict gates on errors only; strict also gates on warnings
        and on unused suppressions.
        """
        if strict:
            return 1 if (self.findings or self.unused_suppressions) else 0
        return 1 if self.errors() else 0


def _parse_suppressions(source: str) -> list[_Suppression]:
    """Collect suppression comments via tokenize.

    Tokenizing (rather than regex over raw lines) means the syntax is
    only honoured in *actual comments* — a docstring that merely shows
    the syntax is not a suppression.
    """
    suppressions = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match:
                rules = frozenset(
                    part.strip()
                    for part in match.group(1).split(",")
                    if part.strip()
                )
                suppressions.append(_Suppression(token.start[0], rules))
    except tokenize.TokenError:  # unterminated constructs: ast.parse
        pass  # already reported the syntax error as a finding
    return suppressions


def _function_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """(def_line, end_line) for every function, for scope suppressions."""
    spans = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            spans.append((node.lineno, node.end_lineno or node.lineno))
    return spans


def _is_suppressed(
    finding: Finding,
    suppressions: list[_Suppression],
    spans: list[tuple[int, int]],
) -> bool:
    for suppression in suppressions:
        if not suppression.matches(finding.rule):
            continue
        # Same line, or comment-above.
        if finding.line in (suppression.line, suppression.line + 1):
            suppression.used = True
            return True
        # Function-scope: comment on (or directly above) the def line
        # covers the whole body.
        for def_line, end_line in spans:
            if suppression.line in (def_line, def_line - 1) and (
                def_line <= finding.line <= end_line
            ):
                suppression.used = True
                return True
    return False


def lint_source(
    source: str,
    relpath: str,
    *,
    config: AnalysisConfig | None = None,
    rules: Sequence[Rule] | None = None,
    path: str | None = None,
) -> list[Finding]:
    """Lint one module given as text (the unit tests' entry point).

    ``rules`` may carry accumulated cross-module state; when omitted, a
    fresh default rule set is created and finalized immediately, so the
    result includes whole-program findings for this single module.
    """
    config = config or AnalysisConfig()
    own_rules = rules is None
    if rules is None:
        rules = default_registry().create_rules(config)
    findings, _suppressed, _unused = _lint_one(
        source, path or relpath, relpath, config, rules
    )
    if own_rules:
        for rule in rules:
            findings.extend(rule.finalize())
    return sort_findings(findings)


def _lint_one(
    source: str,
    path: str,
    relpath: str,
    config: AnalysisConfig,
    rules: Sequence[Rule],
) -> tuple[list[Finding], int, list[Finding]]:
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        finding = Finding(
            rule="parse-error",
            message=f"could not parse: {exc.msg}",
            path=path,
            line=exc.lineno or 0,
            col=(exc.offset or 0),
        )
        return [finding], 0, []
    ctx = ModuleContext(
        path=path, relpath=relpath, source=source, tree=tree, config=config
    )
    suppressions = _parse_suppressions(source)
    spans = _function_spans(tree)
    kept: list[Finding] = []
    suppressed = 0
    for rule in rules:
        for finding in rule.check_module(ctx):
            if _is_suppressed(finding, suppressions, spans):
                suppressed += 1
            else:
                kept.append(finding)
    unused = [
        Finding(
            rule="unused-suppression",
            message=(
                "suppression never matched a finding: "
                f"ignore[{', '.join(sorted(s.rules))}]"
            ),
            path=path,
            line=s.line,
            col=1,
            severity=Severity.WARNING,
        )
        for s in suppressions
        if not s.used
    ]
    return kept, suppressed, unused


def _discover(paths: Iterable[str | Path]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return files


def lint_paths(
    paths: Sequence[str | Path],
    *,
    config: AnalysisConfig | None = None,
    registry: RuleRegistry | None = None,
    only: Sequence[str] | None = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths`` with one shared rule set.

    Rules see all modules before ``finalize`` runs, so cross-module
    checks (the trigger graph) span the whole scan.
    """
    config = config or AnalysisConfig()
    registry = registry or default_registry()
    rules = registry.create_rules(config, only=only)
    result = LintResult()
    for file_path in _discover(paths):
        source = file_path.read_text(encoding="utf-8")
        findings, suppressed, unused = _lint_one(
            source,
            str(file_path),
            module_relpath(file_path),
            config,
            rules,
        )
        result.findings.extend(findings)
        result.suppressed += suppressed
        result.unused_suppressions.extend(unused)
        result.files_checked += 1
    for rule in rules:
        result.findings.extend(rule.finalize())
    result.findings = sort_findings(result.findings)
    result.unused_suppressions = sort_findings(result.unused_suppressions)
    return result
