"""The pluggable lint-rule registry.

A rule is a class with a stable ``id``, a one-line ``summary`` and a
``check_module`` method; rules that need whole-program state (e.g. the
trigger graph, which spans modules) accumulate it across calls and emit
the cross-module findings from ``finalize``.  Rules register themselves
with a :class:`RuleRegistry`; :func:`default_registry` returns the
standard WDDB rule set, and external code may register more::

    registry = default_registry()

    @registry.register
    class NoPrintRule(Rule):
        id = "no-print"
        summary = "print() in library code"
        def check_module(self, ctx):
            ...

Registries hand out *fresh rule instances* per lint run, so rule state
never leaks between runs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.analysis.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.config import AnalysisConfig

__all__ = ["ModuleContext", "Rule", "RuleRegistry", "default_registry"]


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule sees about one module under analysis."""

    path: str  # path as given to the linter (for reporting)
    relpath: str  # module-relative path, e.g. "repro/rdb/table.py"
    source: str
    tree: ast.Module
    config: "AnalysisConfig"

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
        *,
        severity: Severity | None = None,
        detail: dict | None = None,
    ) -> Finding:
        """Build a finding attributed to ``node`` in this module."""
        return Finding(
            rule=rule.id,
            message=message,
            path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0) + 1,
            severity=severity if severity is not None else rule.severity,
            source="lint",
            detail=detail,
        )


class Rule:
    """Base class for lint rules (subclass and override ``check_module``)."""

    id: str = "abstract"
    summary: str = ""
    severity: Severity = Severity.ERROR

    def __init__(self, config: "AnalysisConfig") -> None:
        self.config = config

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finalize(self) -> Iterable[Finding]:
        """Cross-module findings, emitted after every module was checked."""
        return ()


class RuleRegistry:
    """Holds rule classes; instantiates a fresh set per lint run."""

    def __init__(self) -> None:
        self._rules: dict[str, type[Rule]] = {}

    def register(self, rule_cls: type[Rule]) -> type[Rule]:
        """Register a rule class (usable as a decorator)."""
        rule_id = rule_cls.id
        if not rule_id or rule_id == "abstract":
            raise ValueError(f"rule {rule_cls.__name__} needs a stable id")
        if rule_id in self._rules:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        self._rules[rule_id] = rule_cls
        return rule_cls

    def ids(self) -> list[str]:
        return sorted(self._rules)

    def catalogue(self) -> list[tuple[str, str, str]]:
        """(id, severity, summary) rows for ``python -m repro.analysis rules``."""
        return [
            (rule_id, cls.severity.value, cls.summary)
            for rule_id, cls in sorted(self._rules.items())
        ]

    def create_rules(
        self, config: "AnalysisConfig", only: Iterable[str] | None = None
    ) -> list[Rule]:
        """Fresh instances of every enabled rule for one run."""
        wanted = set(only) if only is not None else None
        if wanted is not None:
            unknown = wanted - set(self._rules)
            if unknown:
                raise ValueError(f"unknown rule ids: {sorted(unknown)!r}")
        instances = []
        for rule_id, cls in sorted(self._rules.items()):
            if wanted is not None and rule_id not in wanted:
                continue
            if wanted is None and config.is_disabled(rule_id):
                continue
            instances.append(cls(config))
        return instances


def default_registry() -> RuleRegistry:
    """The standard WDDB rule set (importing the rules registers them)."""
    from repro.analysis.rules import standard_rules

    registry = RuleRegistry()
    for rule_cls in standard_rules():
        registry.register(rule_cls)
    return registry
