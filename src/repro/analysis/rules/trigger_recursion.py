"""Rule: trigger-recursion.

AFTER triggers observe applied mutations; the tiers result-cache and the
integrity alert engine both hang version-bump/alert callbacks on them
(PR 2's cache-correctness invariant).  An AFTER trigger whose callback
*mutates the table it watches* re-fires itself; a set of triggers whose
mutations form a cycle across tables re-fire each other.  Either way the
engine never terminates the statement.

Static approximation: for every ``register_trigger(name, table, event,
AFTER, fn)`` call with a *literal* table name, resolve ``fn`` to a
function/lambda in the same module and collect the literal table names
it passes to DML calls (``insert``/``update``/``update_pk``/``upsert``/
``delete``/``delete_pk``/``insert_many``).  Self-loops are reported at
the registration site; cross-trigger cycles are reported once per cycle
from ``finalize`` after all modules were scanned.  Dynamic table names
or unresolvable callbacks are skipped (no false positives), which is the
usual lint trade-off: the dynamic lock-order detector covers runtime.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleContext, Rule
from repro.analysis.rules._ast_util import (
    attr_chain,
    call_attr,
    literal_str,
    walk_calls,
)

__all__ = ["TriggerRecursionRule"]

_DML = frozenset(
    {
        "insert",
        "insert_many",
        "update",
        "update_pk",
        "upsert",
        "delete",
        "delete_pk",
    }
)
_REGISTER_ARGS = ("name", "table", "event", "timing", "fn")


class TriggerRecursionRule(Rule):
    id = "trigger-recursion"
    summary = (
        "AFTER trigger whose callback can re-fire its own table "
        "(directly or via a trigger cycle)"
    )

    def __init__(self, config) -> None:
        super().__init__(config)
        # (src_table, dst_table, path, line) across all scanned modules.
        self._edges: list[tuple[str, str, str, int]] = []

    # ------------------------------------------------------------------
    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        functions = self._functions_by_name(ctx.tree)
        for call in walk_calls(ctx.tree):
            if call_attr(call) != "register_trigger":
                continue
            args = self._registration_args(call)
            if args is None:
                continue
            timing, table_node, fn_node = args
            if timing != "AFTER":
                continue
            table = literal_str(table_node)
            body = self._resolve_callback(fn_node, functions)
            if body is None:
                continue
            mutated = self._mutated_tables(body)
            if table is None:
                continue  # dynamic registration: runtime detector territory
            for dst in mutated:
                if dst == table:
                    yield ctx.finding(
                        self,
                        call,
                        f"AFTER trigger on {table!r} mutates {table!r}: the "
                        "trigger re-fires itself and the statement never "
                        "terminates",
                    )
                else:
                    self._edges.append((table, dst, ctx.path, call.lineno))

    def finalize(self) -> Iterable[Finding]:
        graph: dict[str, set[str]] = {}
        sites: dict[tuple[str, str], tuple[str, int]] = {}
        for src, dst, path, line in self._edges:
            graph.setdefault(src, set()).add(dst)
            sites.setdefault((src, dst), (path, line))
        reported: set[frozenset[str]] = set()
        for start in sorted(graph):
            cycle = self._find_cycle(graph, start)
            if cycle is None:
                continue
            key = frozenset(cycle)
            if key in reported:
                continue
            reported.add(key)
            path, line = sites[(cycle[0], cycle[1])]
            loop = " -> ".join([*cycle, cycle[0]])
            yield Finding(
                rule=self.id,
                message=(
                    f"AFTER-trigger cycle {loop}: these triggers re-fire "
                    "each other without terminating"
                ),
                path=path,
                line=line,
                col=1,
                severity=self.severity,
                detail={"cycle": list(cycle)},
            )

    # ------------------------------------------------------------------
    @staticmethod
    def _functions_by_name(tree: ast.Module) -> dict[str, ast.AST]:
        functions: dict[str, ast.AST] = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions.setdefault(node.name, node)
        return functions

    @staticmethod
    def _registration_args(
        call: ast.Call,
    ) -> tuple[str | None, ast.AST | None, ast.AST | None] | None:
        """(timing_name, table_node, fn_node) from a register_trigger call."""
        slots: dict[str, ast.AST] = {}
        for position, arg in enumerate(call.args):
            if position < len(_REGISTER_ARGS):
                slots[_REGISTER_ARGS[position]] = arg
        for keyword in call.keywords:
            if keyword.arg in _REGISTER_ARGS:
                slots[keyword.arg] = keyword.value
        timing_node = slots.get("timing")
        chain = attr_chain(timing_node) if timing_node is not None else None
        timing = chain[-1] if chain else None
        return timing, slots.get("table"), slots.get("fn")

    @staticmethod
    def _resolve_callback(
        fn_node: ast.AST | None, functions: dict[str, ast.AST]
    ) -> ast.AST | None:
        if fn_node is None:
            return None
        if isinstance(fn_node, ast.Lambda):
            return fn_node
        if isinstance(fn_node, ast.Name):
            return functions.get(fn_node.id)
        if isinstance(fn_node, ast.Attribute):  # self._on_update
            return functions.get(fn_node.attr)
        return None

    @staticmethod
    def _mutated_tables(body: ast.AST) -> set[str]:
        mutated: set[str] = set()
        for call in walk_calls(body):
            if call_attr(call) in _DML and call.args:
                table = literal_str(call.args[0])
                if table is not None:
                    mutated.add(table)
        return mutated

    @staticmethod
    def _find_cycle(
        graph: dict[str, set[str]], start: str
    ) -> list[str] | None:
        """A cycle reachable from ``start`` that passes through it."""
        stack = [(start, [start])]
        seen: set[str] = set()
        while stack:
            node, trail = stack.pop()
            for neighbour in sorted(graph.get(node, ())):
                if neighbour == start and len(trail) > 1:
                    return trail
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append((neighbour, trail + [neighbour]))
        return None
