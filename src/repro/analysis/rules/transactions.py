"""Rule: mutation-outside-transaction.

``Table.apply_insert`` / ``apply_update`` / ``apply_delete`` mutate heap
rows *without* constraint checks or undo logging — they are the raw
primitives the engine wraps.  Any call site outside the storage layer
must pair the mutation with an undo record (``txn.record(UndoRecord(...))``)
inside the same function, or it produces state that ``rollback`` cannot
revert.  Replay paths (snapshot load, journal replay) are legitimately
exempt and carry inline suppressions explaining why.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleContext, Rule
from repro.analysis.rules._ast_util import call_attr, enclosing_functions, walk_calls

__all__ = ["MutationOutsideTransactionRule"]

_RAW_MUTATORS = frozenset(
    {"apply_insert", "apply_insert_many", "apply_update", "apply_delete"}
)
#: A ``<txn>.record(...)`` call or an ``UndoRecord(...)`` construction
#: inside the same function marks the mutation as transaction-
#: disciplined: an undo record is written for it.
_DISCIPLINE_CALL = "record"
_DISCIPLINE_TYPE = "UndoRecord"


class MutationOutsideTransactionRule(Rule):
    id = "mutation-outside-transaction"
    summary = (
        "raw Table.apply_* call with no undo record in the same function"
    )

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.relpath in self.config.mutation_allowlist:
            return
        scopes = enclosing_functions(ctx.tree)
        disciplined_cache: dict[ast.AST | None, bool] = {}
        for call in walk_calls(ctx.tree):
            name = call_attr(call)
            if name not in _RAW_MUTATORS or not isinstance(
                call.func, ast.Attribute
            ):
                continue
            scope = scopes.get(call)
            if scope not in disciplined_cache:
                disciplined_cache[scope] = self._has_discipline(
                    scope if scope is not None else ctx.tree
                )
            if disciplined_cache[scope]:
                continue
            yield ctx.finding(
                self,
                call,
                f"{name}() reachable without an active transaction/undo-log "
                "scope: record an UndoRecord in this function or route the "
                "mutation through the Database DML API",
            )

    @staticmethod
    def _has_discipline(scope: ast.AST) -> bool:
        for node in ast.walk(scope):
            if isinstance(node, ast.Call):
                name = call_attr(node)
                # Only *calls* count: a variable merely named "record"
                # is not an undo log.
                if name == _DISCIPLINE_CALL and isinstance(
                    node.func, ast.Attribute
                ):
                    return True
                if name == _DISCIPLINE_TYPE:
                    return True
        return False
