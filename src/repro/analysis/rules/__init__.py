"""The standard WDDB rule set.

Each module holds one rule family; :func:`standard_rules` is what
:func:`repro.analysis.registry.default_registry` installs.
"""

from __future__ import annotations

from repro.analysis.registry import Rule
from repro.analysis.rules.codegen import CodegenNamespaceRule
from repro.analysis.rules.determinism import NondeterminismGuardRule
from repro.analysis.rules.exceptions import BareExceptRule, SwallowedLockConflictRule
from repro.analysis.rules.index_invariant import IndexInvariantRule
from repro.analysis.rules.retry import RetryDisciplineRule
from repro.analysis.rules.transactions import MutationOutsideTransactionRule
from repro.analysis.rules.trigger_recursion import TriggerRecursionRule

__all__ = ["standard_rules"]


def standard_rules() -> list[type[Rule]]:
    return [
        MutationOutsideTransactionRule,
        TriggerRecursionRule,
        CodegenNamespaceRule,
        NondeterminismGuardRule,
        IndexInvariantRule,
        BareExceptRule,
        SwallowedLockConflictRule,
        RetryDisciplineRule,
    ]
