"""Rule: codegen-namespace.

The compiled-execution layer (:mod:`repro.rdb.compile`) builds Python
functions at runtime with ``compile``/``exec``.  Generated code must
never be able to capture I/O, import machinery, reflection, or entropy
sources — a predicate compiled from user-shaped expression trees has no
business reaching ``open`` or ``__import__``.  This rule audits that
property statically:

* outside the configured ``codegen_modules``, *any* call to the
  ``exec``/``eval`` builtins is flagged — runtime code construction is
  only allowed where it is declared and audited;
* inside a codegen module, ``exec``/``eval`` must receive an explicit
  globals namespace (never the caller's real globals);
* any dict literal bound to a ``*BUILTINS*``-named constant (the
  whitelist handed to generated namespaces as ``__builtins__``) must
  contain only names outside the banned set below — growing the
  whitelist with ``open``, ``__import__``, ``getattr`` or friends fails
  the build;
* a codegen module that ``exec``s but defines no ``*BUILTINS*``
  whitelist at all is flagged: the namespace pin is the whole point.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import ModuleContext, Rule

__all__ = ["CodegenNamespaceRule"]

#: Builtin names generated code must never see: import machinery, I/O,
#: runtime code construction, reflection over namespaces/attributes,
#: debugger hooks and entropy/clocks.
_BANNED_BUILTINS = frozenset({
    "__import__",
    "open",
    "input",
    "exec",
    "eval",
    "compile",
    "globals",
    "locals",
    "vars",
    "getattr",
    "setattr",
    "delattr",
    "breakpoint",
    "memoryview",
    "print",
    "exit",
    "quit",
    "help",
})


def _is_builtins_name(name: str) -> bool:
    return "BUILTINS" in name.upper()


class CodegenNamespaceRule(Rule):
    id = "codegen-namespace"
    summary = (
        "exec/eval outside declared codegen modules, or generated-code "
        "namespaces that could capture I/O/import/entropy builtins"
    )
    severity = Severity.ERROR

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        in_codegen = ctx.relpath in self.config.codegen_modules
        has_whitelist = False
        has_exec = False
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                finding, was_exec = self._check_call(ctx, node, in_codegen)
                has_exec = has_exec or was_exec
                if finding is not None:
                    yield finding
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if not (
                        isinstance(target, ast.Name)
                        and _is_builtins_name(target.id)
                    ):
                        continue
                    has_whitelist = True
                    yield from self._check_whitelist(ctx, target.id, node.value)
        if in_codegen and has_exec and not has_whitelist:
            yield ctx.finding(
                self,
                ctx.tree,
                "codegen module execs generated code but defines no "
                "*BUILTINS* whitelist to pin the namespace with",
            )

    def _check_call(
        self, ctx: ModuleContext, call: ast.Call, in_codegen: bool
    ) -> tuple[Finding | None, bool]:
        """(finding, is-exec/eval-call) for one call node."""
        func = call.func
        if not isinstance(func, ast.Name) or func.id not in {"exec", "eval"}:
            return None, False
        if not in_codegen:
            return ctx.finding(
                self,
                call,
                f"{func.id}() outside a declared codegen module — runtime "
                "code construction is only allowed in "
                f"codegen_modules={list(self.config.codegen_modules)!r}",
            ), True
        if len(call.args) < 2:
            return ctx.finding(
                self,
                call,
                f"{func.id}() without an explicit globals namespace runs "
                "generated code against this module's real globals",
            ), True
        return None, True

    def _check_whitelist(
        self, ctx: ModuleContext, name: str, value: ast.AST | None
    ) -> Iterable[Finding]:
        if not isinstance(value, ast.Dict):
            return
        for key in value.keys:
            if not isinstance(key, ast.Constant) or not isinstance(
                key.value, str
            ):
                yield ctx.finding(
                    self,
                    key if key is not None else value,
                    f"{name} whitelist has a non-literal key — the allowed "
                    "builtins must be auditable string constants",
                )
                continue
            if key.value in _BANNED_BUILTINS or key.value.startswith("__"):
                yield ctx.finding(
                    self,
                    key,
                    f"{name} whitelist exposes {key.value!r} to generated "
                    "code (I/O/import/reflection/entropy builtins are "
                    "banned from codegen namespaces)",
                )
