"""Rule: nondeterminism-guard.

Simulation and experiment code must be bit-for-bit repeatable from an
explicit seed (see :mod:`repro.util.rng`).  Inside the configured
simulation paths this rule flags the ambient entropy sources that break
that guarantee: the stdlib ``random`` module, wall-clock reads,
``uuid4``, ``os.urandom``, the legacy global numpy RNG, and *unseeded*
``numpy.random.default_rng()`` calls.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import ModuleContext, Rule
from repro.analysis.rules._ast_util import attr_chain, walk_calls

__all__ = ["NondeterminismGuardRule"]

_CLOCK_CALLS = frozenset(
    {("time", "time"), ("time", "time_ns"), ("os", "urandom")}
)
_DATETIME_NOW = frozenset({"now", "utcnow", "today"})
_NUMPY_ALIASES = frozenset({"numpy", "np"})


class NondeterminismGuardRule(Rule):
    id = "nondeterminism-guard"
    summary = (
        "ambient entropy (random/time/uuid4/global numpy RNG) in "
        "simulation paths; derive streams from util.rng instead"
    )
    severity = Severity.ERROR

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.config.in_simulation_path(ctx.relpath):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self._flag(ctx, node, "import random")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self._flag(ctx, node, "from random import ...")
        for call in walk_calls(ctx.tree):
            chain = attr_chain(call.func)
            if chain is None:
                continue
            reason = self._call_reason(chain, call)
            if reason is not None:
                yield self._flag(ctx, call, reason)

    @staticmethod
    def _call_reason(chain: list[str], call: ast.Call) -> str | None:
        tail2 = tuple(chain[-2:])
        if tail2 in _CLOCK_CALLS:
            return f"{'.'.join(chain)}() is wall-clock/OS entropy"
        if chain[-1] == "uuid4":
            return "uuid4() is nondeterministic"
        if len(chain) >= 2 and chain[-1] in _DATETIME_NOW and "datetime" in chain:
            return f"{'.'.join(chain)}() reads the wall clock"
        if len(chain) >= 2 and chain[-2] == "random" and chain[0] in _NUMPY_ALIASES:
            if chain[-1] == "default_rng":
                if not call.args and not call.keywords:
                    return "default_rng() without a seed is nondeterministic"
                return None
            if chain[-1] in {"Generator", "SeedSequence", "PCG64"}:
                return None
            return (
                f"{'.'.join(chain)}() uses numpy's global RNG; build a "
                "seeded Generator via util.rng.make_rng"
            )
        return None

    def _flag(self, ctx: ModuleContext, node: ast.AST, what: str) -> Finding:
        return ctx.finding(
            self,
            node,
            f"{what} — simulation code must derive randomness/clocks "
            "from explicit seeds (repro.util.rng)",
        )
