"""Small AST helpers shared by the rule implementations."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "attr_chain",
    "call_attr",
    "enclosing_functions",
    "literal_str",
    "walk_calls",
]


def attr_chain(node: ast.AST) -> list[str] | None:
    """``a.b.c`` → ``["a", "b", "c"]``; None when not a name/attr chain."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return list(reversed(parts))
    return None


def call_attr(call: ast.Call) -> str | None:
    """The terminal method/function name of a call, if any."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def literal_str(node: ast.AST | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def walk_calls(root: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(root):
        if isinstance(node, ast.Call):
            yield node


def enclosing_functions(
    tree: ast.Module,
) -> dict[ast.AST, ast.FunctionDef | ast.AsyncFunctionDef | None]:
    """Map every node to its innermost enclosing function (or None)."""
    mapping: dict[ast.AST, ast.FunctionDef | ast.AsyncFunctionDef | None] = {}

    def visit(
        node: ast.AST, scope: ast.FunctionDef | ast.AsyncFunctionDef | None
    ) -> None:
        mapping[node] = scope
        child_scope = (
            node if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            else scope
        )
        for child in ast.iter_child_nodes(node):
            visit(child, child_scope)

    visit(tree, None)
    return mapping
