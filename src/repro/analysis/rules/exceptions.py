"""Rules: bare-except and swallowed-lock-conflict.

``bare-except`` flags ``except:`` and ``except BaseException:`` handlers
that do not re-raise — they eat ``KeyboardInterrupt``/``SystemExit`` and
hide real faults (the engine's rollback wrappers catch ``BaseException``
*and re-raise*, which is the sanctioned shape).

``swallowed-lock-conflict`` is scoped to the lock-sensitive paths
(core/fault/distribution/tiers): silently discarding a
``LockConflictError`` there turns a concurrency-control signal into a
lost update.  Handlers that return a value, log, retry or otherwise
react are fine; only ``pass``-bodies are flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleContext, Rule

__all__ = ["BareExceptRule", "SwallowedLockConflictRule"]

_LOCK_ERRORS = frozenset({"LockConflictError", "LockHierarchyError"})


def _handler_names(handler: ast.ExceptHandler) -> list[str]:
    """Exception class names a handler catches ([] for a bare except)."""
    node = handler.type
    if node is None:
        return []
    elements = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for element in elements:
        if isinstance(element, ast.Name):
            names.append(element.id)
        elif isinstance(element, ast.Attribute):
            names.append(element.attr)
    return names


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


def _body_is_silent(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing at all."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Continue):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / ellipsis
        return False
    return True


class BareExceptRule(Rule):
    id = "bare-except"
    summary = "bare except / except BaseException without re-raise"

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            names = _handler_names(node)
            is_bare = node.type is None
            is_base = "BaseException" in names
            if (is_bare or is_base) and not _reraises(node):
                what = "bare except:" if is_bare else "except BaseException:"
                yield ctx.finding(
                    self,
                    node,
                    f"{what} without re-raise swallows SystemExit/"
                    "KeyboardInterrupt and hides faults; catch the specific "
                    "error or re-raise",
                )


class SwallowedLockConflictRule(Rule):
    id = "swallowed-lock-conflict"
    summary = (
        "LockConflictError silently discarded in lock-sensitive code"
    )

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.config.in_lock_sensitive_path(ctx.relpath):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _LOCK_ERRORS & set(_handler_names(node)):
                continue
            if _body_is_silent(node):
                yield ctx.finding(
                    self,
                    node,
                    "LockConflictError swallowed with no reaction: a denied "
                    "lock must surface (retry, report, or propagate), or the "
                    "conflicting write is silently lost",
                )
