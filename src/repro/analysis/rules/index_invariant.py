"""Rule: index-invariant.

Every index (and therefore every planner statistic from
:mod:`repro.rdb.stats`) is maintained incrementally by
``Table.apply_*`` / ``IndexSet.insert_row`` / ``remove_row``.  Code that
writes ``table._rows`` or ``table._next_rowid`` directly bypasses that
maintenance and silently corrupts both index lookups and the cost-based
planner's selectivity estimates.  Only the table module itself may touch
those internals; the one deliberate exception (undo of a delete, which
must reuse the original rowid) carries an inline suppression.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleContext, Rule
from repro.analysis.rules._ast_util import call_attr

__all__ = ["IndexInvariantRule"]

_PROTECTED_ATTRS = frozenset({"_rows", "_next_rowid"})
_MUTATING_METHODS = frozenset(
    {"pop", "popitem", "clear", "update", "setdefault", "__setitem__"}
)


def _protected_attr(node: ast.AST) -> str | None:
    """``<expr>._rows`` / ``<expr>._next_rowid`` → the attribute name."""
    if isinstance(node, ast.Attribute) and node.attr in _PROTECTED_ATTRS:
        return node.attr
    return None


class IndexInvariantRule(Rule):
    id = "index-invariant"
    summary = (
        "direct Table._rows/_next_rowid mutation bypasses index and "
        "statistics maintenance"
    )

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.relpath in self.config.index_internal_modules:
            return
        for node in ast.walk(ctx.tree):
            attr = self._mutated_attr(node)
            if attr is not None:
                yield ctx.finding(
                    self,
                    node,
                    f"direct mutation of Table.{attr} skips index/statistics "
                    "maintenance: use apply_insert/apply_update/apply_delete",
                )

    @staticmethod
    def _mutated_attr(node: ast.AST) -> str | None:
        # table._rows[k] = v   /   table._next_rowid = n
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript):
                    attr = _protected_attr(target.value)
                    if attr:
                        return attr
                attr = _protected_attr(target)
                if attr:
                    return attr
        # del table._rows[k]
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    attr = _protected_attr(target.value)
                    if attr:
                        return attr
        # table._rows.pop(k) and friends
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if call_attr(node) in _MUTATING_METHODS:
                attr = _protected_attr(node.func.value)
                if attr:
                    return attr
        return None
