"""Rule: retry-discipline.

A retry loop that neither honours a deadline nor backs off is a retry
storm waiting for a brown-out: it multiplies offered load exactly when
capacity is scarcest, and it keeps retrying work whose caller gave up
long ago.  The overload-robustness layer (:mod:`repro.admission`)
supplies both disciplines — :func:`~repro.admission.retry_schedule`
glues a :class:`~repro.fault.policy.RetryPolicy` to a deadline and a
:class:`~repro.admission.RetryBudget` — so inside the configured
``retry_paths`` this rule flags loops that retry bare.

Heuristic: a ``while``/``for`` loop is a *retry loop* when its body
contains a ``try`` whose exception handler ``continue``s (swallow the
failure, go around again).  Such a loop must show evidence of **either**
discipline:

* a deadline/budget bound — an identifier mentioning ``deadline``,
  ``timeout``, ``budget`` or ``attempts_left``, or a call to
  ``allows``/``check_deadline``/``expired``/``remaining``/``try_retry``
  anywhere in the loop (condition included);
* backoff pacing — a call to ``sleep``/``schedule``/``timeout_for``/
  ``backoff``/``retry_schedule``/``wait`` in the loop body.

A loop showing neither is flagged.  False positives suppress with
``# repro-analysis: ignore[retry-discipline]`` on the loop line.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import ModuleContext, Rule
from repro.analysis.rules._ast_util import attr_chain, walk_calls

__all__ = ["RetryDisciplineRule"]

_BOUND_NAME_HINTS = ("deadline", "timeout", "budget", "attempts_left")
_BOUND_CALLS = frozenset({
    "allows", "check_deadline", "expired", "remaining", "try_retry",
})
_BACKOFF_CALLS = frozenset({
    "sleep", "schedule", "schedule_at", "timeout_for", "backoff",
    "retry_schedule", "wait", "wait_time",
})


def _is_retry_loop(loop: ast.While | ast.For) -> ast.Try | None:
    """The loop's retry ``try`` (an except handler that continues), or
    None when the loop doesn't match the retry shape."""
    for node in ast.walk(loop):
        if not isinstance(node, ast.Try):
            continue
        for handler in node.handlers:
            for stmt in ast.walk(handler):
                if isinstance(stmt, ast.Continue):
                    return node
    return None


def _names_in(node: ast.AST) -> Iterable[str]:
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id
        elif isinstance(child, ast.Attribute):
            yield child.attr


def _has_bound(loop: ast.AST) -> bool:
    lowered = (name.lower() for name in _names_in(loop))
    if any(
        hint in name for name in lowered for hint in _BOUND_NAME_HINTS
    ):
        return True
    for call in walk_calls(loop):
        chain = attr_chain(call.func)
        if chain and chain[-1] in _BOUND_CALLS:
            return True
    return False


def _has_backoff(loop: ast.AST) -> bool:
    for call in walk_calls(loop):
        chain = attr_chain(call.func)
        if chain and chain[-1] in _BACKOFF_CALLS:
            return True
    return False


class RetryDisciplineRule(Rule):
    id = "retry-discipline"
    summary = (
        "retry loop with neither a deadline/budget bound nor backoff "
        "pacing; use admission.retry_schedule or RetryPolicy.allows"
    )
    severity = Severity.ERROR

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.config.in_retry_path(ctx.relpath):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.While, ast.For)):
                continue
            if _is_retry_loop(node) is None:
                continue
            if _has_bound(node) or _has_backoff(node):
                continue
            yield ctx.finding(
                self,
                node,
                "retry loop is unbounded and unpaced: no deadline/"
                "budget check and no backoff wait — a brown-out turns "
                "this into a retry storm; bound it with "
                "admission.retry_schedule (or RetryPolicy.allows with "
                "now/deadline) and pace it with the policy's "
                "timeout_for",
            )
