"""Text and JSON renderings of findings (lint and detector alike)."""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.findings import Finding, sort_findings

__all__ = ["render_text", "render_json"]


def render_text(
    findings: list[Finding],
    *,
    files_checked: int | None = None,
    suppressed: int = 0,
    baselined: int = 0,
) -> str:
    """One ``location: severity: rule: message`` line per finding."""
    lines = []
    for finding in sort_findings(findings):
        lines.append(
            f"{finding.location()}: {finding.severity.value}: "
            f"{finding.rule}: {finding.message}"
        )
        if finding.detail:
            for key, value in sorted(finding.detail.items()):
                lines.append(f"    {key}: {value}")
    tail = f"{len(findings)} finding{'s' if len(findings) != 1 else ''}"
    extras = []
    if files_checked is not None:
        extras.append(f"{files_checked} files checked")
    if suppressed:
        extras.append(f"{suppressed} suppressed")
    if baselined:
        extras.append(f"{baselined} baselined")
    if extras:
        tail += f" ({', '.join(extras)})"
    lines.append(tail)
    return "\n".join(lines)


def render_json(
    findings: list[Finding],
    *,
    files_checked: int | None = None,
    suppressed: int = 0,
    baselined: int = 0,
) -> str:
    """Machine-readable report (stable ordering, versioned envelope)."""
    payload: dict[str, Any] = {
        "version": 1,
        "findings": [f.to_dict() for f in sort_findings(findings)],
        "summary": {
            "total": len(findings),
            "suppressed": suppressed,
            "baselined": baselined,
        },
    }
    if files_checked is not None:
        payload["summary"]["files_checked"] = files_checked
    return json.dumps(payload, indent=2, sort_keys=True)
