"""The findings model shared by the linter and the lock-order detector.

A :class:`Finding` is one verified-or-suspected defect: which rule
produced it, where it is (file/line for lint findings, a logical
location such as ``"<lock-order>"`` for runtime findings), how severe,
and an optional structured ``detail`` payload (e.g. the cycle a deadlock
report refers to).  Findings are value objects — reporters, baselines
and tests all consume the same type regardless of which half of the
subsystem produced it.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Severity", "Finding", "RUNTIME_PATH", "sort_findings"]

#: Pseudo-path used by runtime (detector) findings, which have no file.
RUNTIME_PATH = "<runtime>"


class Severity(enum.Enum):
    """How seriously a finding should gate CI."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "error": 2}[self.value]


@dataclass(frozen=True, slots=True)
class Finding:
    """One defect located by a rule or the lock-order detector."""

    rule: str
    message: str
    path: str = RUNTIME_PATH
    line: int = 0
    col: int = 0
    severity: Severity = Severity.ERROR
    source: str = "lint"  # "lint" | "detector"
    detail: dict[str, Any] | None = field(default=None, hash=False)

    def fingerprint(self) -> str:
        """Stable identity for baselines.

        Deliberately excludes the line number so a finding survives in
        the baseline when unrelated edits shift the file.
        """
        digest = hashlib.blake2b(digest_size=8)
        for part in (self.rule, self.path, self.message):
            digest.update(part.encode("utf-8"))
            digest.update(b"\x1f")
        return digest.hexdigest()

    def location(self) -> str:
        """``path:line:col`` for lint findings, ``path`` for runtime ones."""
        if self.source == "lint":
            return f"{self.path}:{self.line}:{self.col}"
        return self.path

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "source": self.source,
            "fingerprint": self.fingerprint(),
        }
        if self.detail is not None:
            payload["detail"] = self.detail
        return payload


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Stable display order: by path, line, column, then rule id."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
