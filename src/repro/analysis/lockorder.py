"""The dynamic lock-order race detector (sanitizer-style).

Attached to a :class:`repro.core.locking.LockManager`, the detector
observes every grant and maintains a **global lock-order graph**: an
edge ``A -> B`` means some session acquired ``B`` while holding ``A``.
Two properties are checked *at acquire time*:

* **Potential deadlock** — adding an edge closes a cycle in the graph
  (session 1 locked X then Y, session 2 locked Y then X).  The sessions
  need not overlap in time: like a lock-order sanitizer, the detector
  flags schedules that *could* interleave into a deadlock, not just ones
  that did.

* **Lock-hierarchy violation** — a session acquires an object while
  already holding one of its *descendants* in the
  :class:`~repro.core.locking.ObjectTree`.  The paper's protocol
  acquires top-down (database → script → implementation → files);
  bottom-up acquisition is the classic inversion that deadlocks against
  a top-down peer.  In ``strict`` mode the violating acquire raises
  :class:`~repro.core.locking.LockHierarchyError` and the lock is *not*
  granted; otherwise a finding is recorded and execution continues.

Findings reuse the shared :class:`repro.analysis.findings.Finding`
model, so the text/JSON reporters and baselines work unchanged.  Edges
persist across releases on purpose — ordering discipline is a global
property of the program, not of one moment's lock table.

Opt in per manager::

    detector = attach_detector(manager)           # record findings
    detector = attach_detector(manager, strict=True)  # and raise

or process-wide by exporting ``REPRO_LOCK_DETECTOR=1`` (or ``strict``)
before the first :class:`LockManager` is built.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.findings import Finding, Severity
from repro.analysis.reporters import render_json, render_text

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.locking import LockManager, LockMode

__all__ = [
    "LockOrderDetector",
    "attach_detector",
    "detach_detector",
    "detector_for",
]

LOCK_ORDER_PATH = "<lock-order>"


@dataclass
class _Edge:
    """One observed ordering ``src held while dst acquired``."""

    count: int = 0
    users: set[str] = field(default_factory=set)


class LockOrderDetector:
    """Observer for one LockManager; see the module docstring."""

    def __init__(self, manager: "LockManager", *, strict: bool = False) -> None:
        self.manager = manager
        self.strict = strict
        self.findings: list[Finding] = []
        self._edges: dict[str, dict[str, _Edge]] = {}
        self._reported_cycles: set[frozenset[str]] = set()
        self._reported_hierarchy: set[tuple[str, str, str]] = set()

    # -- LockObserver protocol -----------------------------------------
    def on_acquire(
        self, user: str, object_id: str, mode: "LockMode", *,
        already_held: bool,
    ) -> None:
        if already_held:
            # Reentrant re-acquire or upgrade: ordering already recorded.
            return
        held = [h for h in self.manager.held_by(user) if h != object_id]
        for held_object in held:
            edge = self._edges.setdefault(held_object, {}).setdefault(
                object_id, _Edge()
            )
            edge.count += 1
            edge.users.add(user)
        self._check_cycles(user, object_id, held)
        self._check_hierarchy(user, object_id, mode, held)

    def on_release(self, user: str, object_id: str) -> None:
        # Edges survive releases: lock-order discipline is global.
        return

    # -- checks --------------------------------------------------------
    def _check_cycles(
        self, user: str, object_id: str, held: list[str]
    ) -> None:
        for held_object in held:
            cycle = self._path(object_id, held_object)
            if cycle is None:
                continue
            key = frozenset(cycle)
            if key in self._reported_cycles:
                continue
            self._reported_cycles.add(key)
            loop = " -> ".join([*cycle, cycle[0]])
            users = sorted(
                {
                    u
                    for src, dst in zip(cycle, [*cycle[1:], cycle[0]])
                    for u in self._edges.get(src, {}).get(dst, _Edge()).users
                }
            )
            self.findings.append(
                Finding(
                    rule="lock-order-cycle",
                    message=(
                        f"potential deadlock: lock-order cycle {loop} "
                        f"(sessions {', '.join(users)}); these schedules can "
                        "interleave into a deadly embrace"
                    ),
                    path=LOCK_ORDER_PATH,
                    severity=Severity.ERROR,
                    source="detector",
                    detail={"cycle": cycle, "sessions": users},
                )
            )

    def _check_hierarchy(
        self, user: str, object_id: str, mode: "LockMode", held: list[str]
    ) -> None:
        from repro.core.locking import LockHierarchyError

        tree = self.manager.tree
        for held_object in held:
            # relation(held, requested) == "ancestor" means the requested
            # object sits above the held one: child locked first.
            if tree.relation(held_object, object_id) != "ancestor":
                continue
            held_mode = self.manager.holders(held_object).get(user, mode)
            if self.strict:
                raise LockHierarchyError(
                    user, object_id, mode, held_object, held_mode
                )
            key = (user, object_id, held_object)
            if key in self._reported_hierarchy:
                continue
            self._reported_hierarchy.add(key)
            self.findings.append(
                Finding(
                    rule="lock-hierarchy",
                    message=(
                        f"hierarchy violation: {user} acquired ancestor "
                        f"{object_id!r} while holding descendant "
                        f"{held_object!r}; the paper's protocol locks "
                        "top-down (database -> script -> implementation)"
                    ),
                    path=LOCK_ORDER_PATH,
                    severity=Severity.ERROR,
                    source="detector",
                    detail={
                        "session": user,
                        "ancestor": object_id,
                        "descendant": held_object,
                    },
                )
            )

    def _path(self, start: str, goal: str) -> list[str] | None:
        """Nodes from ``start`` to ``goal`` along recorded edges, if any.

        Callers pass the object being acquired as ``start`` and a
        currently-held object as ``goal``; the just-recorded edge
        ``goal -> start`` closes the loop, so the returned path is the
        cycle itself.
        """
        if start == goal:
            return [start]
        stack = [(start, [start])]
        seen = {start}
        while stack:
            node, trail = stack.pop()
            for neighbour in sorted(self._edges.get(node, ())):
                if neighbour == goal:
                    return trail + [neighbour]
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append((neighbour, trail + [neighbour]))
        return None

    # -- reporting ------------------------------------------------------
    def edge_count(self) -> int:
        return sum(len(dsts) for dsts in self._edges.values())

    def edges(self) -> dict[str, dict[str, int]]:
        """The lock-order graph as plain counts (introspection/tests)."""
        return {
            src: {dst: edge.count for dst, edge in dsts.items()}
            for src, dsts in self._edges.items()
        }

    def report(self, fmt: str = "text") -> str:
        if fmt == "json":
            return render_json(self.findings)
        return render_text(self.findings)

    def clear(self) -> None:
        """Drop findings and the recorded graph (tests, new scenarios)."""
        self.findings.clear()
        self._edges.clear()
        self._reported_cycles.clear()
        self._reported_hierarchy.clear()


def attach_detector(
    manager: "LockManager", *, strict: bool = False
) -> LockOrderDetector:
    """Create a detector for ``manager`` and register it as an observer.

    Idempotent per manager: a second call returns the existing detector
    (updating its ``strict`` flag).
    """
    existing = detector_for(manager)
    if existing is not None:
        existing.strict = strict
        return existing
    detector = LockOrderDetector(manager, strict=strict)
    manager.add_observer(detector)
    return detector


def detector_for(manager: "LockManager") -> LockOrderDetector | None:
    """The detector attached to ``manager``, if any."""
    for observer in getattr(manager, "_observers", ()):
        if isinstance(observer, LockOrderDetector):
            return observer
    return None


def detach_detector(manager: "LockManager") -> LockOrderDetector | None:
    """Remove (and return) the detector attached to ``manager``."""
    detector = detector_for(manager)
    if detector is not None:
        manager.remove_observer(detector)
    return detector
