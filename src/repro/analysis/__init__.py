"""Correctness tooling for the WDDB core: lint + race detection.

The paper's collaborative-authoring story rests on hierarchical locking
and referential-integrity triggers being correct *under concurrency*.
This package verifies those invariants mechanically, in two halves that
share one findings model (:mod:`repro.analysis.findings`), one
baseline/suppression mechanism and the same text/JSON reporters:

* a **static AST lint framework** (:mod:`repro.analysis.linter`) with a
  pluggable rule registry and domain-specific rules — transaction
  discipline, trigger-recursion, nondeterminism, index invariants and
  exception hygiene — run as ``python -m repro.analysis lint``;

* a **dynamic lock-order race detector**
  (:mod:`repro.analysis.lockorder`) that observes
  :class:`repro.core.locking.LockManager` acquisitions, maintains a
  global lock-order graph and reports potential deadlocks (cycles) and
  lock-hierarchy violations at acquire time.  Opt in per manager with
  :func:`attach_detector`, or process-wide with the
  ``REPRO_LOCK_DETECTOR`` environment variable.
"""

from __future__ import annotations

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.config import AnalysisConfig, load_config
from repro.analysis.findings import Finding, Severity
from repro.analysis.linter import LintResult, lint_paths, lint_source
from repro.analysis.lockorder import (
    LockOrderDetector,
    attach_detector,
    detach_detector,
    detector_for,
)
from repro.analysis.registry import Rule, RuleRegistry, default_registry
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "AnalysisConfig",
    "Finding",
    "LintResult",
    "LockOrderDetector",
    "Rule",
    "RuleRegistry",
    "Severity",
    "apply_baseline",
    "attach_detector",
    "default_registry",
    "detach_detector",
    "detector_for",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "load_config",
    "render_json",
    "render_text",
    "write_baseline",
]
