"""Baseline files: accepted historical findings.

A baseline is a JSON file of finding fingerprints (rule + path +
message, line-independent).  ``lint --write-baseline`` records the
current findings; later runs subtract baselined findings so CI only
gates on *new* defects.  Strict mode also fails on unused baseline
entries, forcing the file to shrink as debt is paid down.  The merged
tree keeps a zero-finding (empty) baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.findings import Finding

__all__ = ["Baseline", "apply_baseline", "load_baseline", "write_baseline"]

_VERSION = 1


@dataclass
class Baseline:
    """Accepted fingerprints plus enough context to audit them."""

    entries: dict[str, str]  # fingerprint -> human-readable description

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries


def load_baseline(path: str | Path) -> Baseline:
    """Load a baseline; a missing file is an empty baseline."""
    path = Path(path)
    if not path.is_file():
        return Baseline(entries={})
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != _VERSION:
        raise ValueError(
            f"unsupported baseline version {data.get('version')!r} in {path}"
        )
    entries = {
        str(entry["fingerprint"]): str(entry.get("description", ""))
        for entry in data.get("findings", [])
    }
    return Baseline(entries=entries)


def write_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Write the baseline for ``findings`` (sorted, stable output)."""
    payload = {
        "version": _VERSION,
        "findings": sorted(
            (
                {
                    "fingerprint": finding.fingerprint(),
                    "rule": finding.rule,
                    "description": f"{finding.location()}: {finding.message}",
                }
                for finding in findings
            ),
            key=lambda entry: (entry["rule"], entry["fingerprint"]),
        ),
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def apply_baseline(
    findings: list[Finding], baseline: Baseline
) -> tuple[list[Finding], int, list[str]]:
    """Split findings against a baseline.

    Returns ``(new_findings, baselined_count, unused_fingerprints)``.
    """
    fresh: list[Finding] = []
    used: set[str] = set()
    for finding in findings:
        fingerprint = finding.fingerprint()
        if fingerprint in baseline:
            used.add(fingerprint)
        else:
            fresh.append(finding)
    unused = sorted(set(baseline.entries) - used)
    return fresh, len(findings) - len(fresh), unused
