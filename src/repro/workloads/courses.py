"""Synthetic course/document generation.

Generates whole virtual courses in the shape the paper's tools produce:
a script SCI, one implementation with a linked page graph (every page
reachable from the start page), optional control programs, and
multimedia resources drawn from :class:`~repro.workloads.media.MediaModel`.

``reuse_probability`` controls cross-course resource sharing: with
probability p a course reuses a media resource some earlier course
already registered (same label and size → same digest → shared BLOB),
which is precisely the in-station sharing E4 measures.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field

from repro.core.objects import ImplementationSCI, ScriptSCI
from repro.core.wddb import WebDocumentDatabase
from repro.storage.blob import BlobKind
from repro.storage.files import DocumentFile, FileKind
from repro.util.rng import make_rng
from repro.workloads.media import MediaModel

__all__ = ["GeneratedPage", "GeneratedCourse", "CourseGenerator"]

_TOPICS = (
    "computer engineering", "multimedia computing", "engineering drawing",
    "operating systems", "data structures", "networking", "databases",
    "software engineering", "graphics", "distance learning",
)


@dataclass(frozen=True, slots=True)
class GeneratedPage:
    """One generated HTML page with outbound links already inlined."""

    path: str
    content: str

    def as_document_file(self) -> DocumentFile:
        return DocumentFile(self.path, FileKind.HTML, self.content)


@dataclass
class GeneratedCourse:
    """Everything the generator produced for one course."""

    script: ScriptSCI
    implementation: ImplementationSCI
    pages: list[GeneratedPage] = field(default_factory=list)
    programs: list[DocumentFile] = field(default_factory=list)
    #: (label, size, kind) media the course references
    media: list[tuple[str, int, BlobKind]] = field(default_factory=list)

    @property
    def media_bytes(self) -> int:
        return sum(size for _label, size, _kind in self.media)


class CourseGenerator:
    """Seeded generator of course documents into a WebDocumentDatabase."""

    def __init__(
        self,
        seed: int,
        *,
        pages_per_course: int = 8,
        media_per_course: int = 5,
        programs_per_course: int = 1,
        reuse_probability: float = 0.0,
    ) -> None:
        self._rng = make_rng(seed, "courses")
        self._media_model = MediaModel(seed)
        self.pages_per_course = pages_per_course
        self.media_per_course = media_per_course
        self.programs_per_course = programs_per_course
        self.reuse_probability = reuse_probability
        #: media already handed out, available for reuse
        self._media_pool: list[tuple[str, int, BlobKind]] = []
        self._course_counter = 0

    # ------------------------------------------------------------------
    def generate_course(
        self,
        db: WebDocumentDatabase,
        db_name: str,
        *,
        author: str = "instructor",
        broken_link_rate: float = 0.0,
        orphan_page_rate: float = 0.0,
    ) -> GeneratedCourse:
        """Generate one course and insert it into ``db``.

        ``broken_link_rate`` / ``orphan_page_rate`` inject the defects
        the QA subsystem detects (bad URLs, redundant objects).
        """
        self._course_counter += 1
        index = self._course_counter
        topic = _TOPICS[int(self._rng.integers(len(_TOPICS)))]
        script_name = f"course-{index:04d}"
        prefix = f"{script_name}"
        script = ScriptSCI(
            script_name=script_name,
            db_name=db_name,
            author=author,
            description=f"Introduction to {topic}",
            keywords=["course", *topic.split()],
            created_at=_dt.datetime(1999, 1, 1)
            + _dt.timedelta(days=int(self._rng.integers(0, 300))),
        )
        media = self._pick_media(prefix)
        pages = self._build_pages(
            prefix,
            media,
            broken_link_rate=broken_link_rate,
            orphan_page_rate=orphan_page_rate,
        )
        programs = [
            DocumentFile(
                f"{prefix}/ctl{i}.class", FileKind.PROGRAM,
                f"bytecode for {topic} control {i}",
            )
            for i in range(self.programs_per_course)
        ]
        db.add_script(script)
        digests = [
            db.register_blob(label, size, kind)
            for label, size, kind in media
        ]
        implementation = db.add_implementation(
            ImplementationSCI(
                starting_url=f"http://mmu/{prefix}/index.html",
                script_name=script_name,
                author=author,
                multimedia=digests,
                created_at=script.created_at,
            ),
            html_files=[page.as_document_file() for page in pages],
            program_files=programs,
        )
        return GeneratedCourse(
            script=script,
            implementation=implementation,
            pages=pages,
            programs=programs,
            media=media,
        )

    def generate_corpus(
        self,
        db: WebDocumentDatabase,
        db_name: str,
        n_courses: int,
        **kwargs,
    ) -> list[GeneratedCourse]:
        """Generate ``n_courses`` into one document database."""
        return [
            self.generate_course(db, db_name, **kwargs)
            for _ in range(n_courses)
        ]

    # ------------------------------------------------------------------
    def _pick_media(self, prefix: str) -> list[tuple[str, int, BlobKind]]:
        chosen: list[tuple[str, int, BlobKind]] = []
        fresh = self._media_model.sample_mixed(self.media_per_course)
        for position, (kind, size) in enumerate(fresh):
            if (
                self._media_pool
                and self._rng.random() < self.reuse_probability
            ):
                pick = int(self._rng.integers(len(self._media_pool)))
                chosen.append(self._media_pool[pick])
            else:
                resource = (
                    f"{prefix}/media{position}.{kind.value}",
                    int(size),
                    kind,
                )
                chosen.append(resource)
                self._media_pool.append(resource)
        return chosen

    def _build_pages(
        self,
        prefix: str,
        media: list[tuple[str, int, BlobKind]],
        *,
        broken_link_rate: float,
        orphan_page_rate: float,
    ) -> list[GeneratedPage]:
        """A connected page graph: index links a spine; pages cross-link.

        Orphan pages (never linked) and broken links are injected at the
        requested rates for QA workloads.
        """
        n = max(self.pages_per_course, 1)
        paths = [f"{prefix}/index.html"] + [
            f"{prefix}/p{i}.html" for i in range(1, n)
        ]
        orphans = {
            paths[i]
            for i in range(1, n)
            if self._rng.random() < orphan_page_rate
        }
        links: dict[str, list[str]] = {path: [] for path in paths}
        reachable = [paths[0]]
        for path in paths[1:]:
            if path in orphans:
                continue
            source = reachable[int(self._rng.integers(len(reachable)))]
            links[source].append(path)
            reachable.append(path)
        # A few extra cross links among reachable pages.
        for _ in range(n // 2):
            if len(reachable) < 2:
                break
            a, b = self._rng.choice(len(reachable), size=2, replace=False)
            target = reachable[int(b)]
            if target not in links[reachable[int(a)]]:
                links[reachable[int(a)]].append(target)
        # Broken links.
        for path in paths:
            if self._rng.random() < broken_link_rate:
                links[path].append(f"{prefix}/missing{int(self._rng.integers(99))}.html")
        pages: list[GeneratedPage] = []
        media_labels = [label for label, _size, _kind in media]
        for position, path in enumerate(paths):
            hrefs = "".join(
                f'<a href="{target}">link</a>\n' for target in links[path]
            )
            # Sprinkle media references across the first pages.
            srcs = ""
            if media_labels and position < len(media_labels):
                srcs = f'<img src="{media_labels[position]}">\n'
            pages.append(
                GeneratedPage(
                    path=path,
                    content=(
                        f"<html><head><title>{path}</title></head>"
                        f"<body>\n{hrefs}{srcs}</body></html>"
                    ),
                )
            )
        return pages
