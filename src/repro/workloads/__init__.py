"""Synthetic workloads standing in for the MMU project's real courses.

The paper's evaluation substrate — FrontPage-authored HTML courses,
multimedia lecture files, and students on the 1999 Internet — is not
available, so this package generates the closest synthetic equivalents:

* :mod:`repro.workloads.media` — multimedia size/playback-rate models
  per :class:`~repro.storage.blob.BlobKind` (video / audio / image /
  animation / MIDI), log-normal sizes around 1999-era figures.
* :mod:`repro.workloads.courses` — whole course documents: scripts,
  page graphs with links, control programs and media, with a tunable
  cross-course resource-reuse probability (drives the sharing
  experiments).
* :mod:`repro.workloads.traces` — student access traces with Zipf
  document popularity and exponential interarrivals (drives the
  watermark and library experiments).

Everything is seeded and deterministic.
"""

from repro.workloads.media import MediaModel, MediaProfile, PLAYBACK_RATES
from repro.workloads.courses import CourseGenerator, GeneratedCourse, GeneratedPage
from repro.workloads.traces import AccessTraceGenerator, zipf_weights

__all__ = [
    "MediaModel",
    "MediaProfile",
    "PLAYBACK_RATES",
    "CourseGenerator",
    "GeneratedCourse",
    "GeneratedPage",
    "AccessTraceGenerator",
    "zipf_weights",
]
