"""Multimedia size and playback-rate models.

Sizes are log-normal per media kind, calibrated to late-1990s course
material (MPEG-1 lecture video, 8-bit WAV narration, GIF/JPEG stills,
small animations, tiny MIDI scores).  Playback rates feed the
real-time-demonstration experiment (E3): a medium is demonstrable in
real time only if delivery sustains its playback rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.storage.blob import BlobKind
from repro.util.rng import make_rng
from repro.util.units import KIB, MIB, mbps

__all__ = ["MediaProfile", "PLAYBACK_RATES", "MediaModel"]


@dataclass(frozen=True, slots=True)
class MediaProfile:
    """Log-normal size model for one media kind."""

    kind: BlobKind
    median_bytes: float
    sigma: float  # log-space spread

    def sample_sizes(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` sizes (integer bytes, >= 1 KiB)."""
        sizes = rng.lognormal(mean=np.log(self.median_bytes), sigma=self.sigma,
                              size=n)
        return np.maximum(sizes, KIB).astype(np.int64)


#: Default 1999-era profiles.
DEFAULT_PROFILES: dict[BlobKind, MediaProfile] = {
    BlobKind.VIDEO: MediaProfile(BlobKind.VIDEO, 25 * MIB, 0.7),
    BlobKind.AUDIO: MediaProfile(BlobKind.AUDIO, 3 * MIB, 0.6),
    BlobKind.IMAGE: MediaProfile(BlobKind.IMAGE, 80 * KIB, 0.8),
    BlobKind.ANIMATION: MediaProfile(BlobKind.ANIMATION, 600 * KIB, 0.7),
    BlobKind.MIDI: MediaProfile(BlobKind.MIDI, 20 * KIB, 0.5),
}

#: Sustained playback rates in bytes/second (for real-time delivery).
PLAYBACK_RATES: dict[BlobKind, float] = {
    BlobKind.VIDEO: mbps(1.5),  # MPEG-1
    BlobKind.AUDIO: mbps(0.128),
    BlobKind.IMAGE: 0.0,  # static; no sustained rate
    BlobKind.ANIMATION: mbps(0.5),
    BlobKind.MIDI: mbps(0.004),
    BlobKind.OTHER: 0.0,
}


class MediaModel:
    """Seeded sampler over the per-kind profiles."""

    def __init__(
        self,
        seed: int,
        profiles: dict[BlobKind, MediaProfile] | None = None,
    ) -> None:
        self.profiles = dict(profiles or DEFAULT_PROFILES)
        self._rng = make_rng(seed, "media")

    def sample(self, kind: BlobKind, n: int = 1) -> list[int]:
        """Sample ``n`` sizes for ``kind``."""
        profile = self.profiles.get(kind)
        if profile is None:
            raise LookupError(f"no media profile for {kind!r}")
        return [int(s) for s in profile.sample_sizes(self._rng, n)]

    def sample_mixed(self, n: int, weights: dict[BlobKind, float] | None = None
                     ) -> list[tuple[BlobKind, int]]:
        """Sample ``n`` (kind, size) pairs with the given kind weights.

        Default mix is image-heavy with occasional video — a typical
        lecture page set.
        """
        if weights is None:
            weights = {
                BlobKind.IMAGE: 0.55,
                BlobKind.AUDIO: 0.15,
                BlobKind.VIDEO: 0.12,
                BlobKind.ANIMATION: 0.12,
                BlobKind.MIDI: 0.06,
            }
        kinds = list(weights)
        probabilities = np.array([weights[k] for k in kinds], dtype=float)
        probabilities = probabilities / probabilities.sum()
        chosen = self._rng.choice(len(kinds), size=n, p=probabilities)
        out: list[tuple[BlobKind, int]] = []
        for index in chosen:
            kind = kinds[int(index)]
            out.append((kind, self.sample(kind, 1)[0]))
        return out

    def playback_rate(self, kind: BlobKind) -> float:
        """Sustained playback bytes/second (0 for static media)."""
        return PLAYBACK_RATES.get(kind, 0.0)
