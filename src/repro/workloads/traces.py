"""Student access traces: Zipf popularity, exponential interarrivals.

Drives the watermark (E5) and migration (E6) experiments and the
virtual-library sessions (E9).  Document popularity follows a Zipf law
— a few hot lectures dominate, matching course-material access — and
request times follow a Poisson process.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import make_rng
from repro.util.validation import check_positive

__all__ = ["zipf_weights", "AccessTraceGenerator", "flash_crowd_arrivals"]


def zipf_weights(n: int, alpha: float = 1.0) -> np.ndarray:
    """Normalized Zipf weights for ranks 1..n.

    >>> w = zipf_weights(4, 1.0)
    >>> bool((w[0] > w[1] > w[2] > w[3]) and abs(w.sum() - 1) < 1e-12)
    True
    """
    check_positive(n, "n")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-alpha)
    return weights / weights.sum()


def flash_crowd_arrivals(
    seed: int,
    *,
    base_rps: float,
    peak_rps: float,
    duration_s: float,
    surge_start_s: float,
    surge_s: float,
    label: str = "flash-crowd",
) -> list[float]:
    """Arrival times for a flash crowd: baseline Poisson traffic with a
    burst window whose rate jumps to ``peak_rps``.

    Models the paper's lecture-release moment — a million students
    hitting the course page at once — as a piecewise-constant-rate
    Poisson process.  The E21 overload experiments feed these arrivals
    to :func:`repro.admission.run_offered_load` and check that goodput
    through the surge never collapses below half the knee.

    >>> times = flash_crowd_arrivals(
    ...     7, base_rps=10, peak_rps=100, duration_s=30,
    ...     surge_start_s=10, surge_s=5)
    >>> in_surge = sum(1 for t in times if 10 <= t < 15)
    >>> bool(in_surge > len(times) - in_surge)  # surge dominates
    True
    """
    check_positive(base_rps, "base_rps")
    check_positive(peak_rps, "peak_rps")
    check_positive(duration_s, "duration_s")
    check_positive(surge_s, "surge_s")
    if not 0.0 <= surge_start_s <= duration_s:
        raise ValueError(
            f"surge_start_s must lie within [0, duration_s], "
            f"got {surge_start_s!r}"
        )
    rng = make_rng(seed, "flash-crowd", label)
    surge_end_s = min(surge_start_s + surge_s, duration_s)
    arrivals: list[float] = []
    now = 0.0
    while True:
        in_surge = surge_start_s <= now < surge_end_s
        rate = peak_rps if in_surge else base_rps
        gap = float(rng.exponential(1.0 / rate))
        # The piecewise process switches rate *at* each boundary: a gap
        # that would leap across one is truncated there and redrawn at
        # the new rate (memorylessness makes the redraw exact).
        boundary = surge_end_s if in_surge else (
            surge_start_s if now < surge_start_s else duration_s
        )
        if now + gap >= boundary:
            now = boundary
            if now >= duration_s:
                return arrivals
            continue
        now += gap
        arrivals.append(now)


@dataclass(frozen=True, slots=True)
class TraceConfig:
    """Parameters of one generated trace."""

    n_accesses: int
    mean_interarrival_s: float
    zipf_alpha: float


class AccessTraceGenerator:
    """Generates time-sorted (time, station, doc_id) access traces."""

    def __init__(self, seed: int) -> None:
        self._seed = seed

    def generate(
        self,
        stations: list[str],
        doc_ids: list[str],
        n_accesses: int,
        *,
        mean_interarrival_s: float = 1.0,
        zipf_alpha: float = 1.0,
        station_zipf_alpha: float = 0.0,
        start_time: float = 0.0,
        label: str = "trace",
    ) -> list[tuple[float, str, str]]:
        """One Poisson/Zipf trace.

        ``zipf_alpha`` skews document popularity; ``station_zipf_alpha``
        optionally skews which stations are active (0 = uniform).
        """
        if not stations or not doc_ids:
            raise ValueError("stations and doc_ids must be non-empty")
        check_positive(n_accesses, "n_accesses")
        check_positive(mean_interarrival_s, "mean_interarrival_s")
        rng = make_rng(self._seed, "trace", label)
        gaps = rng.exponential(mean_interarrival_s, size=n_accesses)
        times = start_time + np.cumsum(gaps)
        doc_probabilities = zipf_weights(len(doc_ids), zipf_alpha)
        doc_picks = rng.choice(len(doc_ids), size=n_accesses, p=doc_probabilities)
        if station_zipf_alpha > 0:
            station_probabilities = zipf_weights(
                len(stations), station_zipf_alpha
            )
            station_picks = rng.choice(
                len(stations), size=n_accesses, p=station_probabilities
            )
        else:
            station_picks = rng.integers(0, len(stations), size=n_accesses)
        return [
            (float(times[i]), stations[int(station_picks[i])],
             doc_ids[int(doc_picks[i])])
            for i in range(n_accesses)
        ]

    def generate_sessions(
        self,
        students: list[str],
        doc_ids: list[str],
        n_sessions: int,
        *,
        docs_per_session_mean: float = 3.0,
        hold_time_mean_s: float = 600.0,
        zipf_alpha: float = 1.0,
        label: str = "sessions",
    ) -> list[tuple[float, str, str, str]]:
        """Library sessions: (time, student, doc_id, action) events.

        Each session checks out a Poisson-sized set of documents and
        checks each back in after an exponential hold time.  Events are
        returned time-sorted; a session never double-checks-out a doc.
        """
        check_positive(n_sessions, "n_sessions")
        rng = make_rng(self._seed, "sessions", label)
        doc_probabilities = zipf_weights(len(doc_ids), zipf_alpha)
        events: list[tuple[float, str, str, str]] = []
        #: (student, doc) -> time its open loan will be checked back in
        open_until: dict[tuple[str, str], float] = {}
        time = 0.0
        for _ in range(n_sessions):
            time += float(rng.exponential(120.0))
            student = students[int(rng.integers(len(students)))]
            n_docs = max(1, int(rng.poisson(docs_per_session_mean)))
            picks = rng.choice(
                len(doc_ids), size=min(n_docs, len(doc_ids)),
                replace=False, p=doc_probabilities,
            )
            for pick in picks:
                doc_id = doc_ids[int(pick)]
                key = (student, doc_id)
                if time < open_until.get(key, -1.0):
                    continue  # still out from an earlier session
                events.append((time, student, doc_id, "check_out"))
                hold = float(rng.exponential(hold_time_mean_s))
                events.append((time + hold, student, doc_id, "check_in"))
                open_until[key] = time + hold
        events.sort(key=lambda e: e[0])
        return events
