"""repro — a reproduction of "The Design and Implementation of a
Distributed Web Document Database" (Shih, Ma & Huang, ICPP 1999).

The package rebuilds the paper's entire system in Python:

* :mod:`repro.core` — the three-layer Web document database (scripts,
  implementations, test records, bug reports, annotations), referential
  integrity alerts, hierarchical locking, class/instance/reference
  reuse and configuration management;
* :mod:`repro.rdb` — the relational engine substrate (the paper's
  "off-the-rack" MS SQL Server stand-in);
* :mod:`repro.storage` — BLOB store with in-station sharing, document
  files, disk accounting;
* :mod:`repro.net` — the deterministic discrete-event network
  simulator;
* :mod:`repro.distribution` — m-ary-tree pre-broadcast, on-demand pull,
  watermark duplication, instance→reference migration, adaptive arity;
* :mod:`repro.fault` — fault injection, heartbeat failure detection,
  m-ary tree self-healing, broadcast redelivery and crashed-station
  rejoin, shared retry policies, health reporting;
* :mod:`repro.library` — the Web-savvy virtual library with
  check-in/out assessment;
* :mod:`repro.qa` — traversal testing and the four bug-report defect
  checks;
* :mod:`repro.annotations` — the annotation daemon (draw primitives +
  playback);
* :mod:`repro.tiers` — the three-tier architecture (clients, class
  administrator, ODBC-style connection);
* :mod:`repro.workloads` — synthetic courses, media and access traces.

Quickstart::

    from repro.core import WebDocumentDatabase, ScriptSCI

    db = WebDocumentDatabase("instructor")
    db.create_document_database("mmu", author="shih")
    db.add_script(ScriptSCI("cs101", "mmu", author="shih"))

See ``examples/`` for complete scenarios and ``EXPERIMENTS.md`` for the
paper-claim reproductions.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
