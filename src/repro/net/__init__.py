"""Deterministic discrete-event network simulator.

Stand-in for the paper's "networked stations" on the 1999 Internet.  The
distribution experiments (E2, E3, E6) need reproducible timing for bulk
transfers between workstations, so this package models:

* an event loop with a virtual clock (:mod:`repro.net.sim`),
* stations with full-duplex up/down links whose serialization delay
  creates the m-ary-tree trade-off the paper exploits
  (:mod:`repro.net.station`, :mod:`repro.net.link`),
* typed message envelopes (:mod:`repro.net.messages`), and
* a transport facade with mpi4py-flavoured ``send``/``bcast`` verbs
  (:mod:`repro.net.transport`).

The model is store-and-forward per message: a transfer occupies the
sender's uplink and the receiver's downlink for ``size / min(up, down)``
seconds plus propagation latency, so a node fanning out to ``m``
children pays ``m`` sequential serializations per tree level — exactly
the cost the paper's full m-ary tree amortizes.
"""

from repro.net.sim import Simulator
from repro.net.messages import (
    Message,
    REPL_FRAMES,
    REPL_SNAPSHOT_CHUNK,
    REPL_SNAPSHOT_META,
    REPL_STATUS,
    REPL_SUBSCRIBE,
    ReplFrameBatch,
    ReplSnapshotChunk,
    ReplSnapshotMeta,
    ReplStatus,
    ReplSubscribe,
)
from repro.net.link import DuplexLink
from repro.net.station import Station
from repro.net.transport import Network
from repro.net.shardrpc import SHARD_CALL, SHARD_REPLY, ShardClient, ShardServer

__all__ = [
    "Simulator",
    "Message",
    "DuplexLink",
    "Station",
    "Network",
    "SHARD_CALL",
    "SHARD_REPLY",
    "ShardClient",
    "ShardServer",
    "REPL_FRAMES",
    "REPL_SNAPSHOT_CHUNK",
    "REPL_SNAPSHOT_META",
    "REPL_STATUS",
    "REPL_SUBSCRIBE",
    "ReplFrameBatch",
    "ReplSnapshotChunk",
    "ReplSnapshotMeta",
    "ReplStatus",
    "ReplSubscribe",
]
