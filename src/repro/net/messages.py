"""Typed message envelopes.

Everything that crosses the simulated network is a :class:`Message`:
a source, destination, kind tag (dispatch key), an arbitrary payload
object (never serialized — this is a simulation) and the byte size that
*would* cross the wire, which is what the link model charges for.

This module also defines the **replication stream** payloads — the
typed envelopes :mod:`repro.replication` exchanges between a primary's
:class:`~repro.replication.shipper.WalShipper` and a follower's
:class:`~repro.replication.recoverer.Recoverer`.  They live here, with
the message plumbing, because they are wire vocabulary rather than
replication logic: any station can relay or inspect them without
importing the replication subsystem.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.util.validation import check_non_negative

__all__ = [
    "Message",
    "REPL_SUBSCRIBE",
    "REPL_SNAPSHOT_META",
    "REPL_SNAPSHOT_CHUNK",
    "REPL_FRAMES",
    "REPL_STATUS",
    "ReplSubscribe",
    "ReplSnapshotMeta",
    "ReplSnapshotChunk",
    "ReplFrameBatch",
    "ReplStatus",
]

_msg_counter = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Message:
    """One network message.

    ``size_bytes`` is the simulated wire size (payload is metadata, so a
    50 MB lecture transfer is a tiny Python object with
    ``size_bytes=50_000_000``).  ``sent_at`` is stamped by the transport.
    """

    src: str
    dst: str
    kind: str
    payload: Any
    size_bytes: int
    msg_id: int = field(default_factory=lambda: next(_msg_counter))
    sent_at: float = 0.0
    #: absolute deadline (simulated seconds); the transport discards a
    #: message still in flight past its deadline instead of delivering
    #: work nobody awaits.  None = no deadline (v1 messages).
    deadline: float | None = None

    def __post_init__(self) -> None:
        check_non_negative(self.size_bytes, "size_bytes")

    def reply_kind(self) -> str:
        """Conventional kind tag for a response to this message."""
        return f"{self.kind}.reply"


# ---------------------------------------------------------------------------
# Replication stream vocabulary (used by repro.replication)
# ---------------------------------------------------------------------------
#: follower -> primary: (re)subscribe to the WAL stream
REPL_SUBSCRIBE = "repl.subscribe"
#: primary -> follower: a snapshot transfer is starting
REPL_SNAPSHOT_META = "repl.snapshot.meta"
#: primary -> follower: one chunk of snapshot bytes
REPL_SNAPSHOT_CHUNK = "repl.snapshot.chunk"
#: primary -> follower: a batch of WAL frames
REPL_FRAMES = "repl.frames"
#: follower -> primary: applied-LSN progress report
REPL_STATUS = "repl.status"


@dataclass(frozen=True, slots=True)
class ReplSubscribe:
    """A follower announcing itself and where its history ends.

    ``applied_lsn`` is the last LSN durably applied locally; the
    primary resumes the stream just above it, or falls back to a full
    snapshot when that history has been checkpointed away (or the
    follower has diverged past the primary — a stale-epoch rejoin).
    """

    follower: str
    applied_lsn: int
    epoch: int = 0


@dataclass(frozen=True, slots=True)
class ReplSnapshotMeta:
    """Header of a chunked snapshot transfer."""

    epoch: int
    snapshot_lsn: int
    size_bytes: int
    chunks: int


@dataclass(frozen=True, slots=True)
class ReplSnapshotChunk:
    """One run of snapshot bytes (``seq`` counts from 0)."""

    epoch: int
    snapshot_lsn: int
    seq: int
    data: bytes
    last: bool


@dataclass(frozen=True, slots=True)
class ReplFrameBatch:
    """A batch of WAL frames plus the primary's current horizon.

    ``frames`` is a list of ``(lsn, frame_bytes)`` pairs — the exact
    bytes the primary journaled, CRC and all.  ``primary_lsn`` lets the
    follower judge whether it has caught up; ``epoch`` fences batches
    from a deposed primary after a failover.
    """

    epoch: int
    frames: list[tuple[int, bytes]]
    primary_lsn: int


@dataclass(frozen=True, slots=True)
class ReplStatus:
    """Follower progress report (drives replica-lag accounting)."""

    follower: str
    epoch: int
    applied_lsn: int
    stage: str
