"""Typed message envelopes.

Everything that crosses the simulated network is a :class:`Message`:
a source, destination, kind tag (dispatch key), an arbitrary payload
object (never serialized — this is a simulation) and the byte size that
*would* cross the wire, which is what the link model charges for.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.util.validation import check_non_negative

__all__ = ["Message"]

_msg_counter = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Message:
    """One network message.

    ``size_bytes`` is the simulated wire size (payload is metadata, so a
    50 MB lecture transfer is a tiny Python object with
    ``size_bytes=50_000_000``).  ``sent_at`` is stamped by the transport.
    """

    src: str
    dst: str
    kind: str
    payload: Any
    size_bytes: int
    msg_id: int = field(default_factory=lambda: next(_msg_counter))
    sent_at: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative(self.size_bytes, "size_bytes")

    def reply_kind(self) -> str:
        """Conventional kind tag for a response to this message."""
        return f"{self.kind}.reply"
