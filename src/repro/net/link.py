"""Full-duplex link model with serialization queuing.

Each station owns one :class:`DuplexLink` (its connection to "the
Internet" of the simulation).  A transfer from A to B:

* starts when *both* A's uplink and B's downlink are free,
* occupies them for ``size / min(up_bw_A, down_bw_B)`` seconds, and
* completes after an additional propagation latency.

This single-resource-per-direction model is what makes fan-out costly:
a parent pushing a lecture to ``m`` children performs ``m`` sequential
uplink serializations, the quantity the paper's m-ary tree trades
against tree depth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import Bandwidth
from repro.util.validation import check_non_negative

__all__ = ["DuplexLink", "TransferTiming"]


def _check_bandwidth(value: Bandwidth, name: str) -> Bandwidth:
    """Reject non-:class:`Bandwidth` rates and non-positive rates early.

    A zero or negative rate would make :func:`schedule_transfer` divide
    by zero (or schedule time-travelling transfers) two layers down, so
    the link constructor and rate setters fail loudly instead.
    """
    if not isinstance(value, Bandwidth):
        raise TypeError(
            f"{name} must be a Bandwidth (e.g. Bandwidth.from_mbps(10)), "
            f"got {type(value).__name__}"
        )
    if not value.bytes_per_second > 0:
        raise ValueError(
            f"{name} must be positive, got {value.bytes_per_second!r} B/s"
        )
    return value


@dataclass(frozen=True, slots=True)
class TransferTiming:
    """Computed schedule of one transfer."""

    start: float  # when serialization begins (both ends reserved)
    serialized: float  # when the last byte leaves the sender
    arrival: float  # serialized + propagation latency

    @property
    def duration(self) -> float:
        return self.arrival - self.start


class DuplexLink:
    """One station's up/down link bandwidth and busy horizons."""

    __slots__ = ("up", "down", "up_busy_until", "down_busy_until",
                 "bytes_up", "bytes_down")

    def __init__(self, up: Bandwidth, down: Bandwidth | None = None) -> None:
        self.up = _check_bandwidth(up, "up")
        self.down = _check_bandwidth(down, "down") if down is not None else up
        self.up_busy_until = 0.0
        self.down_busy_until = 0.0
        self.bytes_up = 0
        self.bytes_down = 0

    @classmethod
    def symmetric_mbps(cls, mbit: float) -> "DuplexLink":
        """A symmetric link of ``mbit`` megabits/second each way."""
        return cls(Bandwidth.from_mbps(mbit))

    def set_rate(self, up: Bandwidth, down: Bandwidth | None = None) -> None:
        """Change the link's bandwidth ("changing network conditions").

        Applies to transfers scheduled from now on; in-flight transfers
        keep the rate they were committed at (their busy horizons stand).
        """
        self.up = _check_bandwidth(up, "up")
        self.down = _check_bandwidth(down, "down") if down is not None else up

    def set_rate_mbps(self, mbit: float) -> None:
        """Symmetric convenience form of :meth:`set_rate`."""
        if not mbit > 0:
            raise ValueError(f"mbit must be > 0, got {mbit!r}")
        self.set_rate(Bandwidth.from_mbps(mbit))

    def reset(self) -> None:
        """Clear busy horizons and byte counters (new experiment run)."""
        self.up_busy_until = 0.0
        self.down_busy_until = 0.0
        self.bytes_up = 0
        self.bytes_down = 0


def schedule_transfer(
    now: float,
    size_bytes: int,
    sender: DuplexLink,
    receiver: DuplexLink,
    latency_s: float,
) -> TransferTiming:
    """Reserve both link ends for a transfer and return its timing.

    Mutates the busy horizons: the links are committed once this returns,
    which keeps the model single-pass (no retries/backtracking) and
    deterministic.
    """
    check_non_negative(latency_s, "latency_s")
    check_non_negative(size_bytes, "size_bytes")
    effective = min(sender.up.bytes_per_second, receiver.down.bytes_per_second)
    start = max(now, sender.up_busy_until, receiver.down_busy_until)
    serialization = size_bytes / effective
    serialized = start + serialization
    sender.up_busy_until = serialized
    receiver.down_busy_until = serialized
    sender.bytes_up += size_bytes
    receiver.bytes_down += size_bytes
    return TransferTiming(start=start, serialized=serialized,
                          arrival=serialized + latency_s)
