"""The transport facade: stations + links + the event loop.

Verbs follow the mpi4py tutorial's shape — ``send`` (point-to-point),
``bcast`` (one-to-many, which on this link model is *sequential* unicast
from the root, the very cost the paper's tree distribution avoids) —
but delivery is asynchronous through the simulator, and handlers run at
arrival time.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.admission import current_deadline
from repro.net.link import schedule_transfer
from repro.obs.instrument import OBS
from repro.net.messages import Message
from repro.net.sim import Simulator
from repro.net.station import Station
from repro.util.rng import make_rng
from repro.util.validation import check_non_negative, check_probability

__all__ = ["Network"]


class Network:
    """A set of stations wired through one simulator.

    ``default_latency_s`` models propagation delay between any pair;
    per-pair overrides are available through :meth:`set_latency` for
    experiments with heterogeneous paths.

    Failure injection: :meth:`set_down` crashes/revives a station
    (messages to or from a down station are silently lost — the sender
    cannot know), and :meth:`set_drop_rate` loses a seeded-random
    fraction of messages, modelling the lossy 1999 Internet the paper's
    mechanisms must survive.
    """

    def __init__(
        self,
        sim: Simulator,
        default_latency_s: float = 0.05,
        *,
        drop_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        check_non_negative(default_latency_s, "default_latency_s")
        check_probability(drop_rate, "drop_rate")
        self.sim = sim
        self.default_latency_s = default_latency_s
        self._stations: dict[str, Station] = {}
        self._latency: dict[tuple[str, str], float] = {}
        self._down: set[str] = set()
        self._partition: dict[str, int] | None = None
        self.drop_rate = drop_rate
        self._drop_rng = make_rng(seed, "network-drops")
        self.total_bytes = 0
        self.total_messages = 0
        self.messages_dropped = 0
        self.messages_expired = 0
        self._obs_cache: dict[str, Any] | None = None

    def _obs(self) -> dict[str, Any]:
        registry = OBS.registry
        cache = self._obs_cache
        if cache is None or cache["registry"] is not registry:
            assert registry is not None
            cache = self._obs_cache = {
                "registry": registry,
                "messages": registry.counter("net.messages"),
                "bytes": registry.counter("net.bytes"),
                "dropped": registry.counter("net.dropped"),
                "expired": registry.counter("net.expired"),
            }
        return cache

    # -- membership ----------------------------------------------------------
    def add(self, station: Station) -> Station:
        """Register a station (names must be unique) and attach it."""
        if station.name in self._stations:
            raise ValueError(f"duplicate station name {station.name!r}")
        self._stations[station.name] = station
        station.network = self
        return station

    def station(self, name: str) -> Station:
        """Look up a station by name; raises LookupError if unknown."""
        try:
            return self._stations[name]
        except KeyError:
            raise LookupError(f"unknown station {name!r}") from None

    def stations(self) -> list[Station]:
        """All registered stations, in registration order."""
        return list(self._stations.values())

    def names(self) -> list[str]:
        """Station names in registration order."""
        return list(self._stations)

    def __len__(self) -> int:
        return len(self._stations)

    def __contains__(self, name: str) -> bool:
        return name in self._stations

    # -- latency topology ---------------------------------------------------
    def set_latency(self, a: str, b: str, latency_s: float) -> None:
        """Override propagation latency for the (a, b) pair, both ways."""
        check_non_negative(latency_s, "latency_s")
        self._latency[(a, b)] = latency_s
        self._latency[(b, a)] = latency_s

    def latency(self, a: str, b: str) -> float:
        """Propagation latency between two stations."""
        return self._latency.get((a, b), self.default_latency_s)

    # -- failure injection ---------------------------------------------------
    def set_down(self, name: str, down: bool = True) -> None:
        """Crash (or revive) a station.

        While down, everything it would send or receive is lost; a
        revived station resumes with whatever state it had (the paper's
        workstations keep their disk across reboots).
        """
        self.station(name)  # raise early on unknown
        if down:
            self._down.add(name)
        else:
            self._down.discard(name)

    def is_down(self, name: str) -> bool:
        """True while a station is crashed (see :meth:`set_down`)."""
        return name in self._down

    def set_drop_rate(self, drop_rate: float) -> None:
        """Lose this fraction of messages (seeded, deterministic)."""
        check_probability(drop_rate, "drop_rate")
        self.drop_rate = drop_rate

    def set_partition(self, groups: Sequence[Iterable[str]] | None) -> None:
        """Split the network: traffic between groups is lost.

        ``groups`` is a sequence of station-name collections; stations
        in different groups cannot exchange messages while the partition
        stands.  Stations named in no group form one implicit residual
        group (still connected to each other).  Pass ``None`` to heal.
        """
        if groups is None:
            self._partition = None
            return
        mapping: dict[str, int] = {}
        for index, group in enumerate(groups):
            for name in group:
                self.station(name)  # raise early on unknown
                if name in mapping:
                    raise ValueError(
                        f"station {name!r} appears in more than one group"
                    )
                mapping[name] = index
        self._partition = mapping

    def is_partitioned(self, a: str, b: str) -> bool:
        """True while a partition separates stations ``a`` and ``b``."""
        if self._partition is None:
            return False
        return self._partition.get(a, -1) != self._partition.get(b, -1)

    def _should_drop(self, src: str, dst: str) -> bool:
        if src in self._down or dst in self._down:
            return True
        if self._partition is not None and self.is_partitioned(src, dst):
            return True
        if self.drop_rate and self._drop_rng.random() < self.drop_rate:
            return True
        return False

    # -- verbs -------------------------------------------------------------
    def send(
        self,
        src: str,
        dst: str,
        kind: str,
        payload: Any = None,
        size_bytes: int = 0,
    ) -> Message:
        """Queue a transfer; the destination handler runs at arrival time.

        Returns the message (stamped with the send time) immediately;
        completion is observable through handlers or by running the
        simulator and checking link horizons.
        """
        sender = self.station(src)
        receiver = self.station(dst)
        if src == dst:
            raise ValueError(f"station {src!r} cannot send to itself")
        message = Message(
            src=src,
            dst=dst,
            kind=kind,
            payload=payload,
            size_bytes=size_bytes,
            sent_at=self.sim.now,
            # The ambient caller deadline rides every message sent from
            # inside a deadline scope; background traffic (replication
            # streams, broadcasts) carries none and is never expired.
            deadline=current_deadline(),
        )
        sender.messages_sent += 1
        self.total_messages += 1
        if OBS.enabled:
            self._obs()["messages"].inc()
        if self._should_drop(src, dst):
            # The bytes never make it; a down/ lossy path costs the
            # sender nothing observable (fire-and-forget datagrams).
            self.messages_dropped += 1
            if OBS.enabled:
                self._obs()["dropped"].inc()
            return message
        timing = schedule_transfer(
            self.sim.now,
            size_bytes,
            sender.link,
            receiver.link,
            self.latency(src, dst),
        )
        self.total_bytes += size_bytes
        if OBS.enabled:
            self._obs()["bytes"].inc(size_bytes)
        # A station may crash while the message is in flight; check
        # again at delivery time.
        self.sim.schedule_at(timing.arrival, self._deliver, receiver, message)
        return message

    def _deliver(self, receiver: Station, message: Message) -> None:
        if receiver.name in self._down:
            self.messages_dropped += 1
            if OBS.enabled:
                self._obs()["dropped"].inc()
            return
        if message.deadline is not None and self.sim.now >= message.deadline:
            # Expired in flight: delivering would start work nobody is
            # waiting for.  The receiver-side refusal still exists for
            # messages that expire *after* delivery begins.
            self.messages_expired += 1
            if OBS.enabled:
                self._obs()["expired"].inc()
            return
        receiver.deliver(message)

    def bcast(
        self,
        src: str,
        dsts: Sequence[str] | Iterable[str],
        kind: str,
        payload: Any = None,
        size_bytes: int = 0,
    ) -> list[Message]:
        """Flat broadcast: sequential unicasts out of the root's uplink.

        This is the baseline the paper's m-ary tree beats — every copy
        serializes through the single source link.
        """
        return [
            self.send(src, dst, kind, payload, size_bytes)
            for dst in dsts
            if dst != src
        ]

    # -- introspection -----------------------------------------------------
    def quiesce(self) -> float:
        """Run the simulator dry; returns the final virtual time."""
        self.sim.run()
        return self.sim.now

    def stats(self) -> dict[str, Any]:
        """Aggregate traffic counters and the current virtual time."""
        return {
            "stations": len(self._stations),
            "messages": self.total_messages,
            "bytes": self.total_bytes,
            "dropped": self.messages_dropped,
            "expired": self.messages_expired,
            "time": self.sim.now,
            "events": self.sim.events_processed,
        }
