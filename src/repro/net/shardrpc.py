"""Coordinator ↔ shard RPC over the simulated network.

A thin, generic method-call protocol: the coordinator-side
:class:`ShardClient` proxies a whitelisted set of
:class:`~repro.sharding.participant.ShardParticipant` methods; the
shard-side :class:`ShardServer` dispatches each call to its local
participant and replies with the return value.  Payloads travel as
live Python objects (the simulator's links pass references, charging
only modeled bytes), so WHERE expressions and plan objects cross the
wire unchanged.

Failure semantics mirror :mod:`repro.replication.chaos`: an
application error (constraint violation, 2PC refusal) is shipped back
and re-raised at the caller, while a
:class:`~repro.fault.crashsim.SimulatedCrashError` inside a handler
propagates out of the simulator drain — the shard process died
mid-call, the caller never gets an ack, and recovery tooling takes
over.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable

from repro.admission import (
    CircuitBreaker,
    DeadlineExceededError,
    current_deadline,
)
from repro.net.station import Station
from repro.net.transport import Network
from repro.obs.instrument import OBS

__all__ = ["ShardServer", "ShardClient", "SHARD_CALL", "SHARD_REPLY"]

SHARD_CALL = "shard.call"
SHARD_REPLY = "shard.reply"
_BASE_BYTES = 96

_call_ids = itertools.count(1)


@dataclass(frozen=True, slots=True)
class ShardCall:
    """One proxied method invocation."""

    call_id: int
    method: str
    args: tuple[Any, ...] = ()
    kwargs: dict[str, Any] = field(default_factory=dict)
    #: absolute deadline (simulated seconds); the server refuses to
    #: start work for a call whose deadline already passed
    deadline: float | None = None


@dataclass(frozen=True, slots=True)
class ShardReply:
    call_id: int
    ok: bool
    value: Any = None
    error: Exception | None = None


def _wire_size(value: Any) -> int:
    """Rough modeled byte count of a payload."""
    if value is None:
        return 0
    if isinstance(value, (list, tuple, set)):
        return sum(_wire_size(v) for v in value)
    if isinstance(value, dict):
        return sum(len(str(k)) + _wire_size(v) for k, v in value.items())
    return len(str(value))


class ShardServer:
    """Hosts one shard participant behind a network station."""

    def __init__(
        self, network: Network, station_name: str, participant: Any
    ) -> None:
        self.network = network
        self.station_name = station_name
        self.participant = participant
        self.calls_served = 0
        station = network.station(station_name)
        # A restarted shard re-registers on its old station.
        station.off(SHARD_CALL)
        station.on(SHARD_CALL, self._on_call)

    def _on_call(self, _station: Station, message: Any) -> None:
        call: ShardCall = message.payload
        now = self.network.sim.now
        if call.deadline is not None and now >= call.deadline:
            # The caller's deadline passed in flight: refuse before any
            # work — executing would burn shard capacity nobody awaits.
            if OBS.enabled and OBS.registry is not None:
                OBS.registry.counter(
                    "admission.deadline_expired", site="shardrpc-server"
                ).inc()
            reply = ShardReply(
                call.call_id, False,
                error=DeadlineExceededError(
                    f"deadline {call.deadline:.6f} passed before "
                    f"{call.method!r} started at {self.station_name!r}"
                ),
            )
            self.network.send(
                self.station_name, message.src, SHARD_REPLY, reply,
                _BASE_BYTES,
            )
            return
        self.calls_served += 1
        try:
            value = getattr(self.participant, call.method)(
                *call.args, **call.kwargs
            )
            reply = ShardReply(call.call_id, True, value)
        except Exception as exc:
            # Deferred to dodge the fault->distribution import cycle.
            from repro.fault.crashsim import SimulatedCrashError

            if isinstance(exc, SimulatedCrashError):
                # The shard process died mid-call: no reply leaves.
                raise
            reply = ShardReply(call.call_id, False, error=exc)
        self.network.send(
            self.station_name, message.src, SHARD_REPLY, reply,
            _BASE_BYTES + _wire_size(reply.value),
        )


class ShardClient:
    """Coordinator-side proxy for one remote shard.

    Quacks like a :class:`~repro.sharding.participant.ShardParticipant`
    for every whitelisted method, so :class:`~repro.sharding
    .coordinator.TwoPhaseCoordinator` and the query tier work
    identically in-process and over the wire.
    """

    #: participant methods the proxy exposes
    METHODS = frozenset({
        "execute", "prepare", "commit", "abort",
        "select", "count", "get", "exists", "aggregate", "join",
        "explain_plan", "status", "last_lsn",
    })

    #: fallback per-call wait when no caller deadline is in scope
    DEFAULT_TIMEOUT_S = 3600.0

    def __init__(
        self,
        network: Network,
        station_name: str,
        server_station: str,
        *,
        shard_id: int | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.network = network
        self.station_name = station_name
        self.server_station = server_station
        self.shard_id = shard_id
        #: Per-endpoint circuit breaker: timeouts count as failures, so
        #: a dead shard fails calls fast instead of absorbing full
        #: waits.  Pass an explicitly-tuned breaker to share one across
        #: clients of the same endpoint.
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            f"shard:{server_station}"
        )
        station = network.station(station_name)
        if not station.handles(SHARD_REPLY):
            station.on(SHARD_REPLY, self._on_reply)

    @staticmethod
    def _on_reply(station: Station, message: Any) -> None:
        reply: ShardReply = message.payload
        boxes = station.state.setdefault("shard_rpc_pending", {})
        box = boxes.pop(reply.call_id, None)
        if box is not None:
            box.append(reply)

    def _call(self, method: str, *args: Any, **kwargs: Any) -> Any:
        now = self.network.sim.now
        caller_deadline = current_deadline()
        if caller_deadline is not None and now >= caller_deadline:
            raise DeadlineExceededError(
                f"deadline passed before sending {method!r} to "
                f"{self.server_station!r}"
            )
        self.breaker.check(now)
        call = ShardCall(
            next(_call_ids), method, args, dict(kwargs),
            deadline=caller_deadline,
        )
        station = self.network.station(self.station_name)
        box: list[ShardReply] = []
        station.state.setdefault("shard_rpc_pending", {})[call.call_id] = box
        self.network.send(
            self.station_name, self.server_station, SHARD_CALL, call,
            _BASE_BYTES + _wire_size(call.args) + _wire_size(call.kwargs),
        )
        wait_until = now + self.DEFAULT_TIMEOUT_S
        if caller_deadline is not None:
            wait_until = min(wait_until, caller_deadline)
        while not box and self.network.sim.now < wait_until:
            if not self.network.sim.step():
                break
        if not box:
            self.breaker.record_failure(self.network.sim.now)
            if (
                caller_deadline is not None
                and self.network.sim.now >= caller_deadline
            ):
                raise DeadlineExceededError(
                    f"deadline passed awaiting {method!r} from shard "
                    f"station {self.server_station!r}"
                )
            raise TimeoutError(
                f"no reply to {method!r} from shard station "
                f"{self.server_station!r}"
            )
        # Any reply — success or shipped-back application error — means
        # the endpoint is alive; only silence counts against it.
        self.breaker.record_success(self.network.sim.now)
        reply = box[0]
        if not reply.ok:
            assert reply.error is not None
            raise reply.error
        return reply.value

    def __getattr__(self, name: str) -> Callable[..., Any]:
        if name in self.METHODS:
            return partial(self._call, name)
        raise AttributeError(name)
