"""Simulated workstations.

A :class:`Station` is a named network endpoint with a handler table
(dispatch by message kind), its own storage stack — BLOB store, file
store, disk accountant — and traffic counters.  Higher layers (the
distribution managers, the three-tier server) register handlers rather
than subclassing, mirroring how the paper's "Java-based daemons" attach
to a workstation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.net.link import DuplexLink
from repro.net.messages import Message
from repro.storage.accounting import DiskAccountant
from repro.storage.blob import BlobStore
from repro.storage.files import FileStore
from repro.util.validation import check_identifier

if TYPE_CHECKING:
    from repro.net.transport import Network

__all__ = ["Station"]

Handler = Callable[["Station", Message], None]


class Station:
    """One workstation in the simulated network."""

    def __init__(
        self,
        name: str,
        link: DuplexLink | None = None,
        *,
        disk_capacity: int | None = None,
    ) -> None:
        check_identifier(name, "station name")
        self.name = name
        self.link = link if link is not None else DuplexLink.symmetric_mbps(10.0)
        self.blobs = BlobStore(station=name)
        self.files = FileStore(station=name)
        self.disk = DiskAccountant(station=name, capacity=disk_capacity)
        self._handlers: dict[str, Handler] = {}
        self._default_handler: Handler | None = None
        self.network: "Network | None" = None  # set on Network.add
        self.messages_received = 0
        self.messages_sent = 0
        #: free-form per-daemon state, keyed by subsystem name
        self.state: dict[str, Any] = {}

    # -- handler registration -----------------------------------------------
    def on(self, kind: str, handler: Handler) -> None:
        """Register ``handler`` for message ``kind`` (one per kind)."""
        if kind in self._handlers:
            raise ValueError(
                f"station {self.name!r} already handles kind {kind!r}"
            )
        self._handlers[kind] = handler

    def off(self, kind: str) -> bool:
        """Remove the handler for ``kind``; False when none was bound.

        Lets a daemon that restarts on the same station (e.g. a
        replication follower re-entering catch-up after a crash)
        re-register its handler table without tripping the
        one-handler-per-kind rule.
        """
        return self._handlers.pop(kind, None) is not None

    def on_default(self, handler: Handler) -> None:
        """Handler for kinds with no specific registration."""
        self._default_handler = handler

    def handles(self, kind: str) -> bool:
        return kind in self._handlers or self._default_handler is not None

    # -- delivery (called by the transport) --------------------------------
    def deliver(self, message: Message) -> None:
        self.messages_received += 1
        handler = self._handlers.get(message.kind, self._default_handler)
        if handler is None:
            raise LookupError(
                f"station {self.name!r} has no handler for message kind "
                f"{message.kind!r}"
            )
        handler(self, message)

    # -- convenience -----------------------------------------------------------
    def send(
        self, dst: str, kind: str, payload: Any = None, size_bytes: int = 0
    ) -> Message:
        """Send through the attached network (must be registered first)."""
        if self.network is None:
            raise RuntimeError(
                f"station {self.name!r} is not attached to a network"
            )
        return self.network.send(self.name, dst, kind, payload, size_bytes)

    def __repr__(self) -> str:
        return f"Station({self.name!r})"
