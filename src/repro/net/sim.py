"""The discrete-event core: a clock and an ordered event queue.

Events are ``(time, seq, callback)`` tuples in a heap; ``seq`` breaks
ties in scheduling order so runs are fully deterministic.  The loop is
deliberately minimal — no processes or coroutines — because every
protocol in the reproduction is naturally callback-shaped.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.util.validation import check_non_negative

__all__ = ["Simulator"]


class Simulator:
    """A virtual clock with an event queue.

    >>> sim = Simulator()
    >>> order = []
    >>> _ = sim.schedule(2.0, order.append, "b")
    >>> _ = sim.schedule(1.0, order.append, "a")
    >>> sim.run()
    >>> order, sim.now
    (['a', 'b'], 2.0)
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: list[tuple[float, int, Callable[..., None], tuple]] = []
        self._seq = 0
        self.events_processed = 0
        self._running = False

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> int:
        """Schedule ``callback(*args)`` at ``now + delay``; returns an id."""
        check_non_negative(delay, "delay")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, callback, args))
        return self._seq

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> int:
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self.now}"
            )
        self._seq += 1
        heapq.heappush(self._queue, (float(time), self._seq, callback, args))
        return self._seq

    @property
    def pending(self) -> int:
        """Number of events not yet executed."""
        return len(self._queue)

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        if not self._queue:
            return False
        time, _seq, callback, args = heapq.heappop(self._queue)
        self.now = time
        self.events_processed += 1
        callback(*args)
        return True

    def run(self, until: float | None = None) -> None:
        """Drain the event queue (optionally stopping at time ``until``).

        With ``until``, events scheduled later stay queued and the clock
        advances exactly to ``until``.
        """
        if self._running:
            raise RuntimeError("Simulator.run() is not re-entrant")
        self._running = True
        try:
            while self._queue:
                if until is not None and self._queue[0][0] > until:
                    break
                self.step()
            if until is not None and self.now < until:
                self.now = float(until)
        finally:
            self._running = False
