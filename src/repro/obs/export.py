"""Text and JSON exporters for metric snapshots and span lists.

The JSON schema is flat and diff-friendly::

    {
      "format": "repro.obs/1",
      "counters":   {"rdb.statements{kind=insert}": 12, ...},
      "gauges":     {"tiers.cache_entries": 8.0, ...},
      "histograms": {"tiers.request_seconds{op=roster}":
                        {"bounds": [...], "counts": [...],
                         "sum": 0.01, "count": 4,
                         "min": 0.001, "max": 0.004}, ...}
    }

``python -m repro.obs dump/diff`` round-trips through these helpers, so
snapshots written by one run (or one station) can be inspected, merged
and compared offline.
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterable

from repro.obs.metrics import (
    HistogramSnapshot,
    MetricsSnapshot,
    format_key,
    parse_key,
)
from repro.obs.trace import Span

__all__ = [
    "snapshot_to_json",
    "snapshot_from_json",
    "write_snapshot",
    "read_snapshot",
    "render_text",
    "render_diff",
    "spans_to_json",
    "spans_from_json",
]

FORMAT = "repro.obs/1"


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------
def snapshot_to_json(snapshot: MetricsSnapshot) -> dict[str, Any]:
    return {
        "format": FORMAT,
        "counters": {
            format_key(k): v for k, v in sorted(snapshot.counters.items())
        },
        "gauges": {
            format_key(k): v for k, v in sorted(snapshot.gauges.items())
        },
        "histograms": {
            format_key(k): {
                "bounds": list(h.bounds),
                "counts": list(h.counts),
                "sum": h.sum,
                "count": h.count,
                "min": None if math.isinf(h.min) else h.min,
                "max": None if math.isinf(h.max) else h.max,
            }
            for k, h in sorted(snapshot.histograms.items())
        },
    }


def snapshot_from_json(data: dict[str, Any]) -> MetricsSnapshot:
    if data.get("format") != FORMAT:
        raise ValueError(
            f"not a {FORMAT} snapshot (format={data.get('format')!r})"
        )
    return MetricsSnapshot(
        counters={parse_key(k): v for k, v in data["counters"].items()},
        gauges={parse_key(k): v for k, v in data["gauges"].items()},
        histograms={
            parse_key(k): HistogramSnapshot(
                bounds=tuple(h["bounds"]),
                counts=tuple(h["counts"]),
                sum=h["sum"],
                count=h["count"],
                min=float("inf") if h["min"] is None else h["min"],
                max=float("-inf") if h["max"] is None else h["max"],
            )
            for k, h in data["histograms"].items()
        },
    )


def write_snapshot(path: str, snapshot: MetricsSnapshot) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot_to_json(snapshot), fh, indent=2, sort_keys=True)
        fh.write("\n")


def read_snapshot(path: str) -> MetricsSnapshot:
    with open(path, encoding="utf-8") as fh:
        return snapshot_from_json(json.load(fh))


# ---------------------------------------------------------------------------
# Text
# ---------------------------------------------------------------------------
def render_text(snapshot: MetricsSnapshot) -> str:
    """Aligned human-readable listing, grouped by metric kind."""
    lines: list[str] = []
    if snapshot.counters:
        lines.append("counters:")
        width = max(len(format_key(k)) for k in snapshot.counters)
        for key in sorted(snapshot.counters):
            lines.append(
                f"  {format_key(key).ljust(width)}  "
                f"{_num(snapshot.counters[key])}"
            )
    if snapshot.gauges:
        lines.append("gauges:")
        width = max(len(format_key(k)) for k in snapshot.gauges)
        for key in sorted(snapshot.gauges):
            lines.append(
                f"  {format_key(key).ljust(width)}  "
                f"{_num(snapshot.gauges[key])}"
            )
    if snapshot.histograms:
        lines.append("histograms:")
        width = max(len(format_key(k)) for k in snapshot.histograms)
        for key in sorted(snapshot.histograms):
            h = snapshot.histograms[key]
            summary = (
                f"count={h.count} sum={_num(h.sum)} mean={_num(h.mean)}"
            )
            if h.count:
                summary += f" min={_num(h.min)} max={_num(h.max)}"
            lines.append(f"  {format_key(key).ljust(width)}  {summary}")
    return "\n".join(lines) if lines else "(no metrics recorded)"


def render_diff(after: MetricsSnapshot, before: MetricsSnapshot) -> str:
    """Human-readable counter/histogram deltas between two snapshots."""
    delta = after.diff(before)
    if not delta.counters and not delta.histograms:
        return "(no change)"
    lines: list[str] = []
    for key in sorted(delta.counters):
        lines.append(f"  {format_key(key)}  {_signed(delta.counters[key])}")
    for key in sorted(delta.histograms):
        h = delta.histograms[key]
        lines.append(
            f"  {format_key(key)}  {h.count:+,} observations "
            f"({_signed(h.sum)}s)"
        )
    return "\n".join(lines)


def _num(value: float) -> str:
    if isinstance(value, int) or float(value).is_integer():
        return f"{int(value):,}"
    if abs(value) >= 1:
        return f"{value:,.3f}"
    return f"{value:.6f}"


def _signed(value: float) -> str:
    return ("+" if value >= 0 else "-") + _num(abs(value))


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------
def spans_to_json(spans: Iterable[Span]) -> list[dict[str, Any]]:
    return [
        {
            "span_id": s.span_id,
            "parent_id": s.parent_id,
            "name": s.name,
            "start": s.start,
            "end": s.end,
            "status": s.status,
            "attributes": dict(s.attributes),
        }
        for s in spans
    ]


def spans_from_json(data: Iterable[dict[str, Any]]) -> list[Span]:
    return [
        Span(
            span_id=d["span_id"],
            parent_id=d["parent_id"],
            name=d["name"],
            start=d["start"],
            end=d["end"],
            status=d.get("status", "ok"),
            attributes=dict(d.get("attributes", {})),
        )
        for d in data
    ]
