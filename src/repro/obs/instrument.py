"""The global observability switch and the instrument-point helpers.

Hot paths across the reproduction are pre-instrumented but **dark by
default**: every instrument point is guarded by a single attribute read
(``OBS.enabled``), so a disabled build pays one boolean check and
nothing else — no handle lookups, no clock reads, no allocations.

Enabling (programmatically via :func:`enable`, or process-wide with
``REPRO_OBS=1``) installs a :class:`~repro.obs.metrics.MetricsRegistry`
and a :class:`~repro.obs.trace.Tracer` behind that flag.  The tracer's
clock (and the clock used for metric latency timings) is injectable, so
components running on :mod:`repro.net.sim` virtual time produce
deterministic traces.

:data:`INSTRUMENT_POINTS` is the audited catalogue of every metric name
the subsystems emit; the test suite asserts no instrumented code path
invents names outside it (typos in metric names would otherwise split
series silently).
"""

from __future__ import annotations

import contextlib
import functools
import os
import time
from typing import Any, Callable, Iterator, TypeVar

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = [
    "ENV_VAR",
    "INSTRUMENT_POINTS",
    "OBS",
    "enable",
    "disable",
    "is_enabled",
    "active_registry",
    "active_tracer",
    "enabled",
    "timed",
    "instrumented",
]

ENV_VAR = "REPRO_OBS"

#: Every metric name an instrumented subsystem may emit, with its home.
#: Keep sorted; tests fail on names outside this catalogue.
INSTRUMENT_POINTS: dict[str, str] = {
    # rdb.engine / rdb.query — the relational substrate
    "rdb.batches": "row batches pulled by the vectorized executor",
    "rdb.plan": "access-path choices by table and path kind",
    "rdb.rows_returned": "rows a select handed back, by table",
    "rdb.rows_scanned": "candidate rows examined by the access path",
    "rdb.statement_seconds": "latency of one DML statement (autocommit unit)",
    "rdb.statements": "DML/select statements by kind",
    "rdb.txn_seconds": "explicit transaction open→commit/rollback latency",
    # rdb.wal — journal durability and crash recovery
    "wal.records_recovered": "journal records replayed during recovery",
    "wal.torn_tails": "torn journal tails tolerated (crash mid-append)",
    "wal.checksum_failures": "corrupt journal records skipped in salvage",
    "wal.sync_batches": "fsync batches flushed, by sync policy",
    "wal.checkpoint_seconds": "snapshot + journal checkpoint latency",
    # tiers.server / tiers.cache — the class administrator
    "tiers.cache": "result-cache outcomes (hit/miss/bypass)",
    "tiers.request_seconds": "request latency by operation",
    "tiers.requests": "requests by operation and status",
    # net.transport — bytes on the wire
    "net.bytes": "payload bytes accepted onto links",
    "net.messages": "messages sent (including dropped)",
    "net.dropped": "messages lost to crashes, partitions or loss",
    "net.expired": "messages discarded because their deadline passed",
    # distribution.broadcast — the m-ary tree
    "broadcast.bytes_sent": "lecture bytes pushed down tree edges",
    "broadcast.chunks_sent": "lecture chunks pushed down tree edges",
    "broadcast.bytes_redelivered": "redundant bytes re-sent by healing",
    "broadcast.stations_completed": "stations that hold the full lecture",
    # core.locking — the compatibility table
    "lock.acquired": "granted lock requests",
    "lock.conflicts": "denied lock requests (compatibility conflicts)",
    "lock.released": "explicit releases",
    "lock.upgrades": "READ→WRITE upgrades",
    "lock.acquire_seconds": "time spent inside acquire (grant or deny)",
    # fault.* — detection, repair, redelivery
    "fault.detector_events": "suspect/confirm/recover transitions",
    "fault.redeliveries": "healing passes that re-sent chunks",
    "fault.chunks_redelivered": "chunks re-sent by the redelivery service",
    "fault.repairs": "tree repairs after confirmed failures",
    "fault.rejoins": "crashed stations brought back into membership",
    # replication.* — WAL shipping, recovery staging, failover
    "replication.frames_shipped": "WAL frames streamed to followers",
    "replication.bytes_shipped": "journal bytes streamed to followers",
    "replication.snapshot_chunks": "snapshot chunks served to syncing followers",
    "replication.resyncs": "followers resynced via full snapshot",
    "replication.stage_transitions": "follower recovery-stage entries, by stage",
    "replication.promotions": "failover promotions to primary",
    # replica.* — follower progress and replica-tier reads
    "replica.applied_lsn": "last LSN a follower durably applied (gauge)",
    "replica.lag_records": "primary-to-follower LSN lag at status time",
    "replica.reads": "read requests served, by target (primary/replica)",
    "replica.fallback": "all-replicas-lagged fallbacks, by target taken",
    # admission.* — overload defense at the middle tier
    "admission.admitted": "requests past the admission gates, by priority",
    "admission.shed": "requests refused before work, by reason",
    "admission.queue_depth": "admitted requests in flight (gauge)",
    "admission.deadline_expired": "requests cancelled past deadline, by site",
    "admission.stale_served": "degraded stale-cache replies while shedding",
    # breaker.* — per-endpoint circuit breakers
    "breaker.transitions": "breaker state changes, by endpoint and state",
    "breaker.rejected": "calls refused by an open breaker, by endpoint",
    # shard.* — horizontal sharding and two-phase commit
    "shard.statements": "statements routed by the shard tier, by route",
    "shard.fanout": "shards touched per scatter-gather read",
    "shard.2pc": "cross-shard transaction outcomes (commit/abort)",
    "shard.2pc_seconds": "two-phase commit latency, by outcome",
    "shard.in_doubt": "in-doubt transactions awaiting resolution (gauge)",
}


class _ObsState:
    """The process-wide switch; mutated only by enable()/disable()."""

    __slots__ = ("enabled", "registry", "tracer", "clock")

    def __init__(self) -> None:
        self.enabled = False
        self.registry: MetricsRegistry | None = None
        self.tracer: Tracer | None = None
        self.clock: Callable[[], float] = time.perf_counter


OBS = _ObsState()


def enable(
    *,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    clock: Callable[[], float] | None = None,
) -> tuple[MetricsRegistry, Tracer]:
    """Turn instrumentation on; returns the active (registry, tracer).

    Arguments left as None keep whatever is already installed (so a
    test can bind a simulated-time tracer without discarding the metric
    registry another fixture installed), creating fresh defaults when
    nothing is.  ``clock`` feeds metric latency timings; the tracer
    keeps its own clock.
    """
    if registry is not None:
        OBS.registry = registry
    elif OBS.registry is None:
        OBS.registry = MetricsRegistry()
    if tracer is not None:
        OBS.tracer = tracer
    elif OBS.tracer is None:
        OBS.tracer = Tracer()
    if clock is not None:
        OBS.clock = clock
    OBS.enabled = True
    return OBS.registry, OBS.tracer


def disable() -> None:
    """Turn instrumentation off and drop the installed registry/tracer.

    Already-captured snapshots and span lists stay valid (callers hold
    their own references); instrumented code reverts to the single
    boolean check.
    """
    OBS.enabled = False
    OBS.registry = None
    OBS.tracer = None
    OBS.clock = time.perf_counter


def is_enabled() -> bool:
    return OBS.enabled


def active_registry() -> MetricsRegistry | None:
    """The live registry, or None while disabled."""
    return OBS.registry if OBS.enabled else None


def active_tracer() -> Tracer | None:
    """The live tracer, or None while disabled."""
    return OBS.tracer if OBS.enabled else None


@contextlib.contextmanager
def enabled(
    *,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    clock: Callable[[], float] | None = None,
) -> Iterator[tuple[MetricsRegistry, Tracer]]:
    """``with obs.enabled() as (registry, tracer):`` — scoped switch-on.

    Restores the previous state (including a previously-enabled
    registry/tracer pair) on exit, so nesting is safe.
    """
    previous = (OBS.enabled, OBS.registry, OBS.tracer, OBS.clock)
    try:
        yield enable(registry=registry, tracer=tracer, clock=clock)
    finally:
        OBS.enabled, OBS.registry, OBS.tracer, OBS.clock = previous


F = TypeVar("F", bound=Callable[..., Any])


@contextlib.contextmanager
def timed(name: str, **labels: Any) -> Iterator[None]:
    """Time a block into histogram ``name`` (no-op while disabled)."""
    if not OBS.enabled:
        yield
        return
    clock = OBS.clock
    start = clock()
    try:
        yield
    finally:
        registry = OBS.registry
        if registry is not None:
            registry.histogram(name, **labels).observe(clock() - start)


def instrumented(name: str, **labels: Any) -> Callable[[F], F]:
    """Decorator form of :func:`timed` for opt-in profiling hooks.

    The wrapper's disabled-path cost is one attribute read and the
    delegated call — cheap enough for warm paths, though the hottest
    loops inline their own ``if OBS.enabled:`` guard instead.
    """

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not OBS.enabled:
                return fn(*args, **kwargs)
            clock = OBS.clock
            start = clock()
            try:
                return fn(*args, **kwargs)
            finally:
                registry = OBS.registry
                if registry is not None:
                    registry.histogram(name, **labels).observe(
                        clock() - start
                    )

        return wrapper  # type: ignore[return-value]

    return decorate


if os.environ.get(ENV_VAR, "").strip().lower() in {"1", "on", "true"}:
    enable()
