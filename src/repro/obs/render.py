"""ASCII rendering of span trees.

Turns a list of spans (typically one lecture broadcast) into the tree
the paper draws: the instructor at the root, each hop indented under
its up-tree parent, with virtual-time intervals and per-hop byte
counts::

    broadcast:lec-1  [0.000s .. 3.414s]  bytes=4,000,000 chunks=4 m=3 n=13
    |- hop:s2  [0.854s .. 1.707s]  depth=1 bytes=4,000,000
    |  |- hop:s5  [1.707s .. 2.561s]  depth=2 bytes=4,000,000
    ...

Rendering is pure (spans in, string out), so it works on live tracer
output and on spans re-read from a JSON export alike.
"""

from __future__ import annotations

from typing import Iterable

from repro.obs.trace import Span, iter_tree

__all__ = ["render_span_tree"]

_SHOWN_ATTRS = ("depth", "bytes", "chunks", "m", "n", "station", "op")


def _attrs(span: Span) -> str:
    parts = []
    for key in _SHOWN_ATTRS:
        if key in span.attributes:
            value = span.attributes[key]
            parts.append(
                f"{key}={value:,}" if isinstance(value, int)
                else f"{key}={value}"
            )
    for key in sorted(span.attributes):
        if key not in _SHOWN_ATTRS:
            parts.append(f"{key}={span.attributes[key]}")
    return "  " + " ".join(parts) if parts else ""


def render_span_tree(spans: Iterable[Span]) -> str:
    """Render a span forest as an indented ASCII tree."""
    span_list = list(spans)
    if not span_list:
        return "(no spans recorded)"
    lines: list[str] = []
    for depth, span in iter_tree(span_list):
        prefix = "|  " * max(0, depth - 1) + ("|- " if depth else "")
        if span.end is None:
            interval = f"[{span.start:.3f}s .. open]"
        else:
            interval = f"[{span.start:.3f}s .. {span.end:.3f}s]"
        status = "" if span.status == "ok" else f"  !{span.status}"
        lines.append(
            f"{prefix}{span.name}  {interval}{status}{_attrs(span)}"
        )
    return "\n".join(lines)
