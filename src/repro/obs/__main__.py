"""``python -m repro.obs`` — snapshot dump/diff and a traced demo.

Subcommands:

* ``demo``  — run a small instrumented scenario (an m-ary course
  broadcast plus a library session through the class administrator),
  print the metric snapshot and the broadcast span tree; ``--json``
  writes the snapshot for later ``dump``/``diff``.
* ``dump SNAPSHOT.json``          — pretty-print a saved snapshot.
* ``diff BEFORE.json AFTER.json`` — counter/histogram deltas.
* ``points``                      — list the instrument-point catalogue.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs import (
    INSTRUMENT_POINTS,
    MetricsRegistry,
    Tracer,
    disable,
    enable,
    read_snapshot,
    render_diff,
    render_span_tree,
    render_text,
    write_snapshot,
)

__all__ = ["main"]


def _demo(args: argparse.Namespace) -> int:
    from repro.distribution.broadcast import PreBroadcaster
    from repro.distribution.mtree import MAryTree
    from repro.net import Network, Simulator, Station
    from repro.net.link import DuplexLink
    from repro.tiers import (
        AdministratorClient, ClassAdministrator, InstructorClient,
        StudentClient,
    )

    sim = Simulator()
    network = Network(sim, default_latency_s=0.05)
    for position in range(1, args.stations + 1):
        network.add(Station(f"s{position}", DuplexLink.symmetric_mbps(10.0)))

    registry, tracer = enable(
        registry=MetricsRegistry(), tracer=Tracer(clock=lambda: sim.now)
    )
    try:
        # 1. Pre-broadcast one lecture down the m-ary tree.
        tree = MAryTree(args.stations, args.m, names=network.names())
        broadcaster = PreBroadcaster(network)
        broadcaster.broadcast(
            "demo-lecture", 4_000_000, tree, chunk_size_bytes=1_000_000
        )
        network.quiesce()

        # 2. A browser session against the class administrator.
        server = ClassAdministrator()
        admin = AdministratorClient(server, "registrar")
        admin.login()
        admin.register_course("mm101", "multimedia systems",
                              instructor="shih")
        instructor = InstructorClient(server, "shih")
        instructor.login()
        instructor.publish(
            "mm101-notes", "lecture notes", "mm101",
            keywords=("multimedia",), size_bytes=1_000_000,
        )
        for index in range(1, 4):
            user = f"stu{index}"
            admin.admit_student(user, name=f"student {index}")
            student = StudentClient(server, user)
            student.login()
            student.enroll("mm101")
            student.check_out("mm101-notes", time=float(index))
            student.check_in("mm101-notes", time=float(index) + 0.5)

        snapshot = registry.snapshot()
        print("== metrics ==")
        print(render_text(snapshot))
        print()
        print("== broadcast span tree ==")
        print(render_span_tree(tracer.spans()))
        if args.json:
            write_snapshot(args.json, snapshot)
            print(f"\nsnapshot written to {args.json}")
    finally:
        disable()
    return 0


def _dump(args: argparse.Namespace) -> int:
    print(render_text(read_snapshot(args.path)))
    return 0


def _diff(args: argparse.Namespace) -> int:
    before = read_snapshot(args.before)
    after = read_snapshot(args.after)
    print(render_diff(after, before))
    return 0


def _points(_args: argparse.Namespace) -> int:
    width = max(len(name) for name in INSTRUMENT_POINTS)
    for name in sorted(INSTRUMENT_POINTS):
        print(f"{name.ljust(width)}  {INSTRUMENT_POINTS[name]}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="observability snapshots: demo, dump, diff, points",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a traced broadcast + library demo")
    demo.add_argument("--stations", type=int, default=13)
    demo.add_argument("--m", type=int, default=3)
    demo.add_argument("--json", help="also write the snapshot to this path")
    demo.set_defaults(fn=_demo)

    dump = sub.add_parser("dump", help="pretty-print a snapshot JSON file")
    dump.add_argument("path")
    dump.set_defaults(fn=_dump)

    diff = sub.add_parser("diff", help="delta between two snapshots")
    diff.add_argument("before")
    diff.add_argument("after")
    diff.set_defaults(fn=_diff)

    points = sub.add_parser("points", help="list the instrument catalogue")
    points.set_defaults(fn=_points)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `... | head` closed our stdout
        sys.exit(0)
