"""A structured tracer: nested spans on an injectable clock.

Two ways to produce spans:

* :meth:`Tracer.span` — a context manager that opens a child of the
  current span (stack discipline).  Because entry/exit bracket the
  work, any interleaving of context-managed operations yields a
  **well-nested** tree: every child's ``[start, end]`` interval lies
  within its parent's.
* :meth:`Tracer.start_span` / :meth:`Tracer.end_span` (or the one-shot
  :meth:`Tracer.record_span`) — manual spans with an explicit parent,
  used where the tree structure comes from topology rather than call
  stack: the broadcast layer records one span per tree hop, parented on
  the up-tree station's span.

The clock is injectable so traces are deterministic under simulated
time: bind ``clock=lambda: network.sim.now`` and every span timestamp
is virtual time.  The default is ``time.perf_counter`` (wall profiling).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["Span", "Tracer"]

STATUS_OK = "ok"
STATUS_ERROR = "error"


@dataclass(slots=True)
class Span:
    """One timed operation; ``end`` is None while the span is open."""

    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float | None = None
    status: str = STATUS_OK
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self


class Tracer:
    """Produces spans; owns the clock and the current-span stack."""

    def __init__(
        self, clock: Callable[[], float] = time.perf_counter
    ) -> None:
        self.clock = clock
        self._spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1

    # -- stack-based spans -------------------------------------------------
    def span(self, name: str, **attributes: Any) -> "_SpanContext":
        """``with tracer.span("name"):`` — child of the current span."""
        return _SpanContext(self, name, attributes)

    @property
    def current(self) -> Span | None:
        """The innermost open context-managed span, if any."""
        return self._stack[-1] if self._stack else None

    # -- manual spans ------------------------------------------------------
    def start_span(
        self,
        name: str,
        *,
        parent: Span | None = None,
        start: float | None = None,
        **attributes: Any,
    ) -> Span:
        """Open a span with an explicit parent (no stack involvement)."""
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            start=self.clock() if start is None else start,
            attributes=dict(attributes),
        )
        self._next_id += 1
        self._spans.append(span)
        return span

    def end_span(
        self, span: Span, *, end: float | None = None, status: str = STATUS_OK
    ) -> Span:
        """Close a manual span (idempotent: a later end extends it)."""
        stamp = self.clock() if end is None else end
        if span.end is None or stamp > span.end:
            span.end = stamp
        if status != STATUS_OK:
            span.status = status
        return span

    def extend(self, span: Span, end: float) -> None:
        """Stretch ``span`` (and nothing else) to cover ``end``."""
        if span.end is None or end > span.end:
            span.end = end

    def record_span(
        self,
        name: str,
        *,
        start: float,
        end: float,
        parent: Span | None = None,
        status: str = STATUS_OK,
        **attributes: Any,
    ) -> Span:
        """One-shot: record an already-finished interval."""
        span = self.start_span(name, parent=parent, start=start, **attributes)
        span.end = end
        span.status = status
        return span

    # -- queries -----------------------------------------------------------
    def spans(self) -> list[Span]:
        """Every span recorded so far, in creation order."""
        return list(self._spans)

    def finished(self) -> list[Span]:
        """Closed spans only."""
        return [s for s in self._spans if s.end is not None]

    def roots(self) -> list[Span]:
        return [s for s in self._spans if s.parent_id is None]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self._spans if s.parent_id == span.span_id]

    def find(self, name: str) -> list[Span]:
        """All spans with exactly this name."""
        return [s for s in self._spans if s.name == name]

    def clear(self) -> None:
        if self._stack:
            raise RuntimeError("cannot clear a tracer with open spans")
        self._spans.clear()
        self._next_id = 1

    def __len__(self) -> int:
        return len(self._spans)


class _SpanContext:
    """Context manager backing :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_attributes", "span")

    def __init__(
        self, tracer: Tracer, name: str, attributes: dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self.span: Span | None = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        parent = tracer._stack[-1] if tracer._stack else None
        self.span = tracer.start_span(
            self._name, parent=parent, **self._attributes
        )
        tracer._stack.append(self.span)
        return self.span

    def __exit__(self, exc_type: type | None, _exc: object, _tb: object) -> None:
        tracer = self._tracer
        span = tracer._stack.pop()
        assert span is self.span, "span stack corrupted"
        span.end = tracer.clock()
        if exc_type is not None:
            span.status = STATUS_ERROR
        return None


def iter_tree(
    spans: list[Span],
) -> Iterator[tuple[int, Span]]:
    """Depth-first ``(depth, span)`` walk over a span forest.

    Orphans (parent not in ``spans``) are treated as roots so partial
    traces still render.
    """
    by_id = {s.span_id: s for s in spans}
    children: dict[int | None, list[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)
    for group in children.values():
        group.sort(key=lambda s: (s.start, s.span_id))

    def walk(parent: int | None, depth: int) -> Iterator[tuple[int, Span]]:
        for span in children.get(parent, ()):
            yield depth, span
            yield from walk(span.span_id, depth + 1)

    yield from walk(None, 0)
