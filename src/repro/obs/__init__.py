"""repro.obs — the observability layer: metrics, tracing, profiling.

The paper's performance story (real-time BLOB delivery over the m-ary
tree, hierarchical locking, check-in/check-out through the class
administrator) can only be defended with end-to-end visibility into
where time and bytes go.  This package is the measurement substrate the
rest of the reproduction instruments into:

* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms with labels and mergeable snapshots;
* :mod:`repro.obs.trace` — nested spans on an injectable clock
  (deterministic under :mod:`repro.net.sim` virtual time);
* :mod:`repro.obs.instrument` — the global switch (``REPRO_OBS=1`` or
  :func:`enable`), the audited :data:`INSTRUMENT_POINTS` catalogue, and
  the :func:`timed` / :func:`instrumented` profiling hooks;
* :mod:`repro.obs.export` — text/JSON exporters and snapshot diffs;
* :mod:`repro.obs.render` — the span→tree renderer for broadcast
  traces;
* ``python -m repro.obs`` — dump / diff / demo CLI.

Everything is dark by default: instrument points cost one boolean check
until :func:`enable` flips the switch (E16 quantifies both sides).
"""

from repro.obs.export import (
    read_snapshot,
    render_diff,
    render_text,
    snapshot_from_json,
    snapshot_to_json,
    spans_from_json,
    spans_to_json,
    write_snapshot,
)
from repro.obs.instrument import (
    ENV_VAR,
    INSTRUMENT_POINTS,
    OBS,
    active_registry,
    active_tracer,
    disable,
    enable,
    enabled,
    instrumented,
    is_enabled,
    timed,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.render import render_span_tree
from repro.obs.trace import Span, Tracer

__all__ = [
    "ENV_VAR",
    "INSTRUMENT_POINTS",
    "OBS",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Span",
    "Tracer",
    "active_registry",
    "active_tracer",
    "disable",
    "enable",
    "enabled",
    "instrumented",
    "is_enabled",
    "read_snapshot",
    "render_diff",
    "render_span_tree",
    "render_text",
    "snapshot_from_json",
    "snapshot_to_json",
    "spans_from_json",
    "spans_to_json",
    "timed",
    "write_snapshot",
]
