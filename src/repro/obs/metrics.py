"""Counters, gauges and fixed-bucket histograms with label support.

The registry is the metric substrate every tier instruments into: the
relational engine counts statements and rows, the class administrator
times requests, the broadcast layer accounts bytes per lecture, the
failure detector counts its transitions.  Design constraints, in order:

* **cheap on the hot path** — a metric handle (`Counter`, `Gauge`,
  `Histogram`) is looked up once and then mutated with plain attribute
  arithmetic; instrumented code caches handles so steady-state cost is
  one integer add;
* **mergeable** — :meth:`MetricsRegistry.snapshot` produces an
  immutable :class:`MetricsSnapshot`; snapshots from different stations
  (or different runs) merge associatively and commutatively, which is
  what lets per-station registries roll up into a fleet view;
* **zero dependencies** — stdlib only, importable from any tier.

Histograms use fixed bucket bounds chosen at creation; two histograms
merge only when their bounds agree (enforced), so bucket counts are
never silently lost or re-binned.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "metric_key",
    "format_key",
    "parse_key",
]

#: Default latency buckets (seconds): sub-millisecond through 10s, the
#: spread between a hash probe and a full broadcast makespan.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: A metric identity: (name, sorted (label, value) pairs).
MetricKey = tuple[str, tuple[tuple[str, str], ...]]


def metric_key(name: str, labels: Mapping[str, Any]) -> MetricKey:
    """Normalize a name + labels into the registry's dictionary key."""
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def format_key(key: MetricKey) -> str:
    """Render ``("a.b", (("x","1"),))`` as ``a.b{x=1}`` (JSON/export form)."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def parse_key(text: str) -> MetricKey:
    """Inverse of :func:`format_key`."""
    if "{" not in text:
        return (text, ())
    name, _, rest = text.partition("{")
    body = rest.rstrip("}")
    labels = []
    if body:
        for part in body.split(","):
            k, _, v = part.partition("=")
            labels.append((k, v))
    return (name, tuple(sorted(labels)))


class Counter:
    """A monotonically non-decreasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be non-negative: counters are monotone)."""
        if amount < 0:
            raise ValueError(f"counters are monotone; cannot add {amount}")
        self.value += amount


class Gauge:
    """A point-in-time level (cache residency, stations alive)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """A fixed-bucket distribution with sum/count/min/max.

    ``bounds`` are inclusive upper bucket edges; one implicit overflow
    bucket catches everything above the last bound, so no observation
    is ever dropped.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "min", "max")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram bounds must be sorted and unique")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-upper-bound estimate of the ``q`` quantile."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank and count:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max
        return self.max


@dataclass(frozen=True, slots=True)
class HistogramSnapshot:
    """An immutable histogram state; merges bucket-by-bucket."""

    bounds: tuple[float, ...]
    counts: tuple[int, ...]
    sum: float
    count: int
    min: float
    max: float

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        if self.bounds != other.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds"
            )
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            sum=self.sum + other.sum,
            count=self.count + other.count,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
        )

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


@dataclass(frozen=True, slots=True)
class MetricsSnapshot:
    """An immutable copy of a registry's state at one instant.

    Merging is associative and commutative: counters and histogram
    buckets add, gauges add (per-station levels roll up into fleet
    totals), min/max fold.  ``diff`` subtracts an earlier snapshot to
    isolate one phase of a run.
    """

    counters: Mapping[MetricKey, int | float]
    gauges: Mapping[MetricKey, float]
    histograms: Mapping[MetricKey, HistogramSnapshot]

    @staticmethod
    def empty() -> "MetricsSnapshot":
        return MetricsSnapshot(counters={}, gauges={}, histograms={})

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        counters = dict(self.counters)
        for key, value in other.counters.items():
            counters[key] = counters.get(key, 0) + value
        gauges = dict(self.gauges)
        for key, value in other.gauges.items():
            gauges[key] = gauges.get(key, 0.0) + value
        histograms = dict(self.histograms)
        for key, snap in other.histograms.items():
            mine = histograms.get(key)
            histograms[key] = snap if mine is None else mine.merge(snap)
        return MetricsSnapshot(
            counters=counters, gauges=gauges, histograms=histograms
        )

    def diff(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """Counter/histogram deltas since ``earlier``; gauges stay as-is."""
        counters = {
            key: value - earlier.counters.get(key, 0)
            for key, value in self.counters.items()
            if value != earlier.counters.get(key, 0)
        }
        histograms: dict[MetricKey, HistogramSnapshot] = {}
        for key, snap in self.histograms.items():
            old = earlier.histograms.get(key)
            if old is None:
                histograms[key] = snap
            elif snap.count != old.count:
                histograms[key] = HistogramSnapshot(
                    bounds=snap.bounds,
                    counts=tuple(
                        a - b for a, b in zip(snap.counts, old.counts)
                    ),
                    sum=snap.sum - old.sum,
                    count=snap.count - old.count,
                    min=snap.min,
                    max=snap.max,
                )
        return MetricsSnapshot(
            counters=counters, gauges=dict(self.gauges), histograms=histograms
        )

    def counter_total(self, name: str) -> int | float:
        """Sum of one counter across all label sets."""
        return sum(v for (n, _), v in self.counters.items() if n == name)

    def names(self) -> set[str]:
        out = {name for name, _ in self.counters}
        out.update(name for name, _ in self.gauges)
        out.update(name for name, _ in self.histograms)
        return out

    def __iter__(self) -> Iterator[tuple[str, MetricKey, Any]]:
        """Yields ``(kind, key, value)`` for every metric, sorted."""
        for key in sorted(self.counters):
            yield ("counter", key, self.counters[key])
        for key in sorted(self.gauges):
            yield ("gauge", key, self.gauges[key])
        for key in sorted(self.histograms):
            yield ("histogram", key, self.histograms[key])


class MetricsRegistry:
    """Get-or-create home for every metric in one process/station.

    Handles are stable for the registry's lifetime: instrumented code
    may cache the returned objects and mutate them directly.
    """

    def __init__(self) -> None:
        self._counters: dict[MetricKey, Counter] = {}
        self._gauges: dict[MetricKey, Gauge] = {}
        self._histograms: dict[MetricKey, Histogram] = {}

    # -- handles -----------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = metric_key(name, labels)
        handle = self._counters.get(key)
        if handle is None:
            handle = self._counters[key] = Counter()
        return handle

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = metric_key(name, labels)
        handle = self._gauges.get(key)
        if handle is None:
            handle = self._gauges[key] = Gauge()
        return handle

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] | None = None,
        **labels: Any,
    ) -> Histogram:
        key = metric_key(name, labels)
        handle = self._histograms.get(key)
        if handle is None:
            handle = self._histograms[key] = Histogram(
                buckets if buckets is not None else DEFAULT_BUCKETS
            )
        return handle

    # -- introspection -----------------------------------------------------
    def names(self) -> set[str]:
        """Distinct metric names (without labels) currently registered."""
        out = {name for name, _ in self._counters}
        out.update(name for name, _ in self._gauges)
        out.update(name for name, _ in self._histograms)
        return out

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def clear(self) -> None:
        """Drop every metric (a fresh registry without re-handing refs).

        Cached handles in instrumented code become dangling after a
        clear; the instrument layer re-resolves handles whenever the
        active registry object changes, so prefer swapping registries
        over clearing a live one.
        """
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def snapshot(self) -> MetricsSnapshot:
        """An immutable, mergeable copy of the current state."""
        return MetricsSnapshot(
            counters={k: c.value for k, c in self._counters.items()},
            gauges={k: g.value for k, g in self._gauges.items()},
            histograms={
                k: HistogramSnapshot(
                    bounds=h.bounds,
                    counts=tuple(h.counts),
                    sum=h.sum,
                    count=h.count,
                    min=h.min,
                    max=h.max,
                )
                for k, h in self._histograms.items()
            },
        )
