"""``python -m repro`` — a 30-second self-demonstration.

Runs a miniature version of every major mechanism and prints what
happened; a smoke check that the installation works end to end.
"""

from __future__ import annotations

from repro.core import ScriptSCI, ImplementationSCI, WebDocumentDatabase
from repro.distribution import AdaptiveMSelector, MAryTree, PreBroadcaster
from repro.distribution.vector import BroadcastVector
from repro.fault import (
    FailureDetector,
    FaultInjector,
    FaultSchedule,
    HealthMonitor,
    RedeliveryService,
    RetryPolicy,
    TreeRepairer,
)
from repro.library import CatalogEntry, CirculationDesk, VirtualLibrary, assess
from repro.net import Network, Simulator, Station
from repro.net.link import DuplexLink
from repro.qa import QARunner
from repro.storage.blob import BlobKind
from repro.storage.files import DocumentFile, FileKind
from repro.util.units import MIB, Bandwidth, format_duration


def main() -> int:
    print("repro — 'The Design and Implementation of a Distributed Web "
          "Document Database' (Shih, Ma & Huang, ICPP 1999)\n")

    # 1. The Web document database.
    db = WebDocumentDatabase("demo")
    db.create_document_database("mmu", author="shih")
    db.add_script(ScriptSCI("cs101", "mmu", author="shih",
                            description="Intro course",
                            keywords=["intro"]))
    video = db.register_blob("lec.mpg", 10 * MIB, BlobKind.VIDEO)
    impl = db.add_implementation(
        ImplementationSCI("http://mmu/cs101/", "cs101", author="shih",
                          multimedia=[video]),
        html_files=[DocumentFile("cs101/index.html", FileKind.HTML,
                                 "<html>hello</html>")],
    )
    print(f"[core]         course {impl.script_name!r} stored "
          f"({db.engine.count('scripts')} script, 1 implementation, "
          f"1 BLOB)")

    # 2. QA + integrity.
    outcome = QARunner(db, "ma").run(impl.starting_url)
    db.update_script("cs101", {"percent_complete": 100.0})
    alerts = db.alerts.drain()
    print(f"[qa/integrity] traversal passed={outcome.passed}; script "
          f"update raised {len(alerts)} alerts")

    # 3. Distribution: adaptive tree broadcast.
    n = 32
    sim = Simulator()
    net = Network(sim, default_latency_s=0.05)
    names = [f"s{k}" for k in range(1, n + 1)]
    for name in names:
        net.add(Station(name, DuplexLink.symmetric_mbps(10)))
    selector = AdaptiveMSelector(Bandwidth.from_mbps(10), latency_s=0.05)
    m = selector.m_for(BlobKind.VIDEO, n, 10 * MIB)
    tree = MAryTree(n, m, names=names)
    report = PreBroadcaster(net).broadcast("lec", 10 * MIB, tree,
                                           chunk_size_bytes=MIB)
    net.quiesce()
    print(f"[distribution] {n}-station pre-broadcast with adaptive m={m}: "
          f"makespan {format_duration(report.makespan)}")

    # 4. Fault tolerance: crash mid-broadcast, detect, repair, redeliver.
    sim = Simulator()
    net = Network(sim, default_latency_s=0.05)
    names = [f"s{k}" for k in range(1, 9)]
    for name in names:
        net.add(Station(name, DuplexLink.symmetric_mbps(10)))
    vector = BroadcastVector(net)
    for name in names:
        vector.join(name)
    injector = FaultInjector(net)
    injector.arm(FaultSchedule().crash(2.0, "s2"))
    detector = FailureDetector(net, "s1", names)
    detector.start(until=80.0)
    broadcaster = PreBroadcaster(net)
    broadcaster.broadcast("lec2", 5 * MIB, vector.tree(2),
                          chunk_size_bytes=MIB)
    net.quiesce()
    repair = TreeRepairer(vector, 2).repair(detector.confirmed_dead)
    # The recheck interval must outlast a full-lecture transfer, or the
    # healer re-sends chunks that are merely still in flight.
    service = RedeliveryService(
        broadcaster, policy=RetryPolicy.exponential(30.0)
    )
    heal = service.redeliver("lec2", repair.tree)
    net.quiesce()
    monitor = HealthMonitor(net)
    monitor.observe_injector(injector)
    monitor.observe_detector(detector)
    monitor.observe_redelivery(heal)
    status = monitor.summary()
    survivors_ok = all(
        broadcaster.is_complete(name, "lec2") for name in vector.members()
    )
    print(f"[fault]        s2 crashed mid-broadcast; detector confirmed "
          f"{sorted(detector.confirmed_dead)}, tree repaired "
          f"({len(repair.reparented)} reparented), redelivery healed "
          f"{len(heal.stations_healed)} stations "
          f"({heal.bytes_redelivered // MIB} MiB redundant); "
          f"survivors complete={survivors_ok}, "
          f"mean uptime {status['mean_uptime']:.2f}")

    # 5. Virtual library.
    library = VirtualLibrary(instructors={"shih"})
    library.add_document("shih", CatalogEntry(
        doc_id="cs101-l1", title="CS101 Lecture 1", course_number="CS101",
        instructor="shih", keywords=("intro",),
    ))
    desk = CirculationDesk(library)
    desk.check_out("alice", "cs101-l1", time=0.0)
    desk.check_in("alice", "cs101-l1", time=1200.0)
    top = assess(desk, library).ranking()[0]
    print(f"[library]      search 'intro' -> "
          f"{[r.doc_id for r in library.search(keywords='intro')]}; "
          f"assessment: {top.student} score={top.activity_score:.0f}")

    print("\nAll subsystems OK.  See examples/ and EXPERIMENTS.md for more.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
