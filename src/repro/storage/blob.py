"""Content-addressed, reference-counted BLOB store.

One :class:`BlobStore` lives on each workstation.  BLOBs are addressed
by digest, so storing the same multimedia resource twice costs nothing
— this is the mechanism behind the paper's rule that "BLOB objects in
the same station should be shared as much as possible among different
documents".  Owners (documents, classes, presentations) take references
with :meth:`BlobStore.acquire`; a BLOB's bytes are reclaimed when its
last reference is released.

Two storage modes:

* **real** BLOBs carry actual ``bytes`` (small fixtures in tests);
* **synthetic** BLOBs carry only a size and a deterministic digest —
  the experiments move gigabytes of simulated video without allocating
  it.

The store meters ``physical_bytes`` (what is resident) and
``logical_bytes`` (what residency *would* cost if every reference held a
private copy); their ratio is the sharing factor reported by E4.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Iterator

from repro.util.validation import check_non_negative

__all__ = ["BlobKind", "Blob", "BlobStore", "MissingBlobError"]


class MissingBlobError(KeyError):
    """A digest was not present in the store."""

    def __init__(self, digest: str) -> None:
        super().__init__(digest)
        self.digest = digest

    def __str__(self) -> str:
        return f"blob {self.digest!r} is not in this store"


class BlobKind(enum.Enum):
    """The multimedia resource types the paper's BLOB layer enumerates."""

    VIDEO = "video"
    AUDIO = "audio"
    IMAGE = "image"
    ANIMATION = "animation"
    MIDI = "midi"
    OTHER = "other"


@dataclass(slots=True)
class Blob:
    """One stored BLOB: identity, type, size and (optionally) bytes."""

    digest: str
    kind: BlobKind
    size: int
    data: bytes | None = None
    owners: set[str] = field(default_factory=set)

    @property
    def refcount(self) -> int:
        return len(self.owners)

    @property
    def is_synthetic(self) -> bool:
        return self.data is None


def digest_bytes(data: bytes) -> str:
    """Content digest for real BLOB data."""
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def synthetic_digest(label: str, size: int) -> str:
    """Deterministic digest for a synthetic BLOB identified by ``label``.

    The same (label, size) pair always produces the same digest, so two
    documents generated to reuse "lecture3.mpg" genuinely share storage.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(label.encode("utf-8"))
    h.update(b"\x00")
    h.update(str(int(size)).encode("ascii"))
    return h.hexdigest()


class BlobStore:
    """Per-station BLOB storage with refcounted sharing."""

    def __init__(self, station: str = "local") -> None:
        self.station = station
        self._blobs: dict[str, Blob] = {}
        #: bytes a copy-per-reference design would be holding right now
        self.logical_bytes = 0
        self.puts = 0
        self.dedup_hits = 0

    # -- storing -----------------------------------------------------------
    def put(self, data: bytes, kind: BlobKind = BlobKind.OTHER, *, owner: str) -> str:
        """Store real bytes under their content digest; returns the digest."""
        digest = digest_bytes(data)
        return self._put(digest, kind, len(data), data, owner)

    def put_synthetic(
        self, label: str, size: int, kind: BlobKind = BlobKind.OTHER, *, owner: str
    ) -> str:
        """Store a synthetic BLOB (metadata only); returns its digest."""
        check_non_negative(size, "size")
        digest = synthetic_digest(label, size)
        return self._put(digest, kind, int(size), None, owner)

    def _put(
        self, digest: str, kind: BlobKind, size: int, data: bytes | None, owner: str
    ) -> str:
        self.puts += 1
        blob = self._blobs.get(digest)
        if blob is None:
            blob = Blob(digest=digest, kind=kind, size=size, data=data)
            self._blobs[digest] = blob
        else:
            self.dedup_hits += 1
        if owner not in blob.owners:
            blob.owners.add(owner)
            self.logical_bytes += blob.size
        return digest

    def adopt(self, blob: Blob, *, owner: str) -> str:
        """Install a BLOB copied from another station (same digest)."""
        return self._put(blob.digest, blob.kind, blob.size, blob.data, owner)

    # -- reference management --------------------------------------------------
    def acquire(self, digest: str, owner: str) -> None:
        """Add ``owner``'s reference to an existing BLOB."""
        blob = self._require(digest)
        if owner not in blob.owners:
            blob.owners.add(owner)
            self.logical_bytes += blob.size

    def release(self, digest: str, owner: str) -> bool:
        """Drop ``owner``'s reference; frees the BLOB when it was the last.

        Returns True when the BLOB's bytes were reclaimed.
        """
        blob = self._require(digest)
        if owner in blob.owners:
            blob.owners.discard(owner)
            self.logical_bytes -= blob.size
        if not blob.owners:
            del self._blobs[digest]
            return True
        return False

    def release_owner(self, owner: str) -> int:
        """Drop every reference held by ``owner``; returns bytes reclaimed."""
        reclaimed = 0
        for digest in [d for d, b in self._blobs.items() if owner in b.owners]:
            size = self._blobs[digest].size
            if self.release(digest, owner):
                reclaimed += size
        return reclaimed

    # -- lookup ------------------------------------------------------------
    def __contains__(self, digest: str) -> bool:
        return digest in self._blobs

    def __len__(self) -> int:
        return len(self._blobs)

    def get(self, digest: str) -> Blob:
        return self._require(digest)

    def blobs(self) -> Iterator[Blob]:
        return iter(self._blobs.values())

    def owners_of(self, digest: str) -> frozenset[str]:
        return frozenset(self._require(digest).owners)

    def digests_for(self, owner: str) -> list[str]:
        return [d for d, b in self._blobs.items() if owner in b.owners]

    # -- metering ---------------------------------------------------------
    @property
    def physical_bytes(self) -> int:
        """Bytes actually resident (each BLOB counted once)."""
        return sum(blob.size for blob in self._blobs.values())

    @property
    def sharing_factor(self) -> float:
        """logical / physical bytes; 1.0 means no sharing benefit."""
        physical = self.physical_bytes
        if physical == 0:
            return 1.0
        return self.logical_bytes / physical

    def stats(self) -> dict[str, float | int | str]:
        return {
            "station": self.station,
            "blobs": len(self._blobs),
            "physical_bytes": self.physical_bytes,
            "logical_bytes": self.logical_bytes,
            "sharing_factor": self.sharing_factor,
            "puts": self.puts,
            "dedup_hits": self.dedup_hits,
        }

    def _require(self, digest: str) -> Blob:
        try:
            return self._blobs[digest]
        except KeyError:
            raise MissingBlobError(digest) from None
