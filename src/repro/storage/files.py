"""Document-layer files: HTML, program and annotation files.

Unlike BLOBs, these are the "objects of relatively smaller sizes" that
the paper *duplicates* when a compound object is copied ("the
duplication process involves objects of relatively smaller sizes, such
as HTML files").  A :class:`FileStore` holds them per workstation keyed
by path; a :class:`FileDescriptor` is the pointer stored in database
rows.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Iterator

__all__ = ["FileKind", "DocumentFile", "FileDescriptor", "FileStore"]


class FileKind(enum.Enum):
    """The document-layer file categories of the paper's schema."""

    HTML = "html"
    PROGRAM = "program"  # Java applets / ASP programs in the paper
    ANNOTATION = "annotation"


@dataclass(frozen=True, slots=True)
class DocumentFile:
    """An immutable file version: path, kind, content and checksum."""

    path: str
    kind: FileKind
    content: str

    @property
    def size(self) -> int:
        return len(self.content.encode("utf-8"))

    @property
    def checksum(self) -> str:
        return hashlib.blake2b(
            self.content.encode("utf-8"), digest_size=8
        ).hexdigest()

    def with_content(self, content: str) -> "DocumentFile":
        """A new version of this file with different content."""
        return DocumentFile(self.path, self.kind, content)


@dataclass(frozen=True, slots=True)
class FileDescriptor:
    """A pointer to a file in some station's store (stored in DB rows)."""

    station: str
    path: str

    def as_json(self) -> dict[str, str]:
        return {"station": self.station, "path": self.path}

    @classmethod
    def from_json(cls, payload: dict[str, str]) -> "FileDescriptor":
        return cls(station=payload["station"], path=payload["path"])


class FileStore:
    """Per-station store of document files keyed by path."""

    def __init__(self, station: str = "local") -> None:
        self.station = station
        self._files: dict[str, DocumentFile] = {}
        self.writes = 0

    def write(self, file: DocumentFile) -> FileDescriptor:
        """Store (or overwrite) a file; returns its descriptor."""
        self._files[file.path] = file
        self.writes += 1
        return FileDescriptor(self.station, file.path)

    def read(self, path: str) -> DocumentFile:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundError(
                f"no file {path!r} in store {self.station!r}"
            ) from None

    def delete(self, path: str) -> bool:
        """Remove a file; returns False if it was absent."""
        return self._files.pop(path, None) is not None

    def exists(self, path: str) -> bool:
        return path in self._files

    def copy_to(self, path: str, other: "FileStore") -> FileDescriptor:
        """Duplicate one file into another station's store."""
        return other.write(self.read(path))

    def paths(self, kind: FileKind | None = None) -> list[str]:
        if kind is None:
            return sorted(self._files)
        return sorted(p for p, f in self._files.items() if f.kind is kind)

    def files(self) -> Iterator[DocumentFile]:
        return iter(self._files.values())

    @property
    def total_bytes(self) -> int:
        return sum(f.size for f in self._files.values())

    def __len__(self) -> int:
        return len(self._files)

    def __contains__(self, path: str) -> bool:
        return path in self._files
