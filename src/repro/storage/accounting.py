"""Per-station disk-space accounting.

The paper worries that duplicating lecture instances "may involve extra
disk space" and argues the cost is bounded because duplicates "live only
within a duration of time" (buffer space).  Experiment E6 quantifies
that with this meter: every allocation is tagged with a category
(``persistent`` for the instructor's instances/classes, ``buffer`` for
pre-broadcast duplicates, ...) so usage curves can be split exactly the
way the paper's argument splits them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import check_non_negative, check_positive

__all__ = ["DiskFullError", "DiskAccountant", "UsageSample"]


class DiskFullError(RuntimeError):
    """An allocation would exceed the station's disk capacity."""

    def __init__(self, station: str, requested: int, available: int) -> None:
        super().__init__(
            f"station {station!r}: requested {requested} B but only "
            f"{available} B available"
        )
        self.station = station
        self.requested = requested
        self.available = available


@dataclass(frozen=True, slots=True)
class UsageSample:
    """One point on a station's usage-over-time curve."""

    time: float
    used_bytes: int
    by_category: dict[str, int] = field(hash=False, default_factory=dict)


class DiskAccountant:
    """Tracks allocated bytes per category with an optional capacity cap."""

    def __init__(self, station: str = "local", capacity: int | None = None) -> None:
        self.station = station
        if capacity is not None:
            check_positive(capacity, "capacity")
        self.capacity = capacity
        self._by_category: dict[str, int] = {}
        self.peak_bytes = 0
        self._timeline: list[UsageSample] = []

    # -- allocation ---------------------------------------------------------
    def allocate(self, n_bytes: int, category: str = "data") -> None:
        """Reserve ``n_bytes``; raises :class:`DiskFullError` over capacity."""
        check_non_negative(n_bytes, "n_bytes")
        n = int(n_bytes)
        if self.capacity is not None and self.used_bytes + n > self.capacity:
            raise DiskFullError(
                self.station, n, self.capacity - self.used_bytes
            )
        self._by_category[category] = self._by_category.get(category, 0) + n
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)

    def free(self, n_bytes: int, category: str = "data") -> None:
        """Release ``n_bytes`` from ``category`` (never below zero)."""
        check_non_negative(n_bytes, "n_bytes")
        current = self._by_category.get(category, 0)
        n = int(n_bytes)
        if n > current:
            raise ValueError(
                f"station {self.station!r}: freeing {n} B from "
                f"{category!r} which holds only {current} B"
            )
        remaining = current - n
        if remaining:
            self._by_category[category] = remaining
        else:
            self._by_category.pop(category, None)

    def transfer(self, n_bytes: int, src_category: str, dst_category: str) -> None:
        """Reclassify bytes (e.g. buffer -> persistent on promotion)."""
        self.free(n_bytes, src_category)
        # Cannot raise DiskFullError: the bytes were already counted.
        self._by_category[dst_category] = (
            self._by_category.get(dst_category, 0) + int(n_bytes)
        )

    # -- inspection -----------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return sum(self._by_category.values())

    @property
    def available_bytes(self) -> int | None:
        if self.capacity is None:
            return None
        return self.capacity - self.used_bytes

    def used_in(self, category: str) -> int:
        return self._by_category.get(category, 0)

    def categories(self) -> dict[str, int]:
        return dict(self._by_category)

    # -- timeline sampling -------------------------------------------------
    def sample(self, time: float) -> UsageSample:
        """Record (and return) a usage sample at simulation time ``time``."""
        point = UsageSample(
            time=float(time),
            used_bytes=self.used_bytes,
            by_category=dict(self._by_category),
        )
        self._timeline.append(point)
        return point

    @property
    def timeline(self) -> list[UsageSample]:
        return list(self._timeline)
