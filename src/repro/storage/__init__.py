"""Storage substrate: BLOB store, document files, disk accounting.

The paper's BLOB layer holds "multimedia files in standard formats
(video, audio, still image, animation, and MIDI files)" that are *shared
by instances and classes* within a workstation.  :mod:`repro.storage.blob`
implements that sharing with a content-addressed, reference-counted store
so experiment E4 can measure exactly how much disk the sharing design
saves.  :mod:`repro.storage.files` models the smaller document-layer
files (HTML, program, annotation) that are duplicated rather than shared,
and :mod:`repro.storage.accounting` meters per-station disk usage.
"""

from repro.storage.blob import Blob, BlobKind, BlobStore, MissingBlobError
from repro.storage.files import DocumentFile, FileDescriptor, FileKind, FileStore
from repro.storage.accounting import DiskAccountant, DiskFullError

__all__ = [
    "Blob",
    "BlobKind",
    "BlobStore",
    "MissingBlobError",
    "DocumentFile",
    "FileDescriptor",
    "FileKind",
    "FileStore",
    "DiskAccountant",
    "DiskFullError",
]
