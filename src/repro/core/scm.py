"""Software-configuration management for course components.

The paper (§1): "A software configuration management system allows
checking in/out of course components and maintain versions of a
course."  :class:`ConfigurationManager` layers version chains and an
exclusive check-out protocol on top of the
:class:`~repro.core.locking.LockManager` — a check-out takes a WRITE
lock on the component (so the compatibility table governs who may work
concurrently), and a check-in records a new immutable
:class:`VersionRecord` and releases the lock.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Any

from repro.core.locking import LockConflictError, LockManager, LockMode

__all__ = ["CheckoutError", "VersionRecord", "ConfigurationManager"]


class CheckoutError(RuntimeError):
    """Check-in/out protocol violation (not checked out, wrong user, ...)."""


@dataclass(frozen=True, slots=True)
class VersionRecord:
    """One immutable version of a component."""

    component_id: str
    version: int
    author: str
    content: Any
    comment: str
    created_at: _dt.datetime


@dataclass
class _Component:
    versions: list[VersionRecord] = field(default_factory=list)
    checked_out_by: str | None = None
    #: working copy handed out at check-out (content of latest version)
    working_copy: Any = None


class ConfigurationManager:
    """Version chains + exclusive check-out over the lock manager."""

    def __init__(self, locks: LockManager) -> None:
        self.locks = locks
        self._components: dict[str, _Component] = {}
        self.checkouts = 0
        self.checkins = 0

    # ------------------------------------------------------------------
    def add_component(
        self,
        component_id: str,
        parent_object: str,
        initial_content: Any,
        author: str,
        *,
        created_at: _dt.datetime | None = None,
    ) -> VersionRecord:
        """Register a component under ``parent_object`` in the lock tree."""
        if component_id in self._components:
            raise ValueError(f"component {component_id!r} already exists")
        if component_id not in self.locks.tree:
            self.locks.tree.add(component_id, parent_object)
        record = VersionRecord(
            component_id=component_id,
            version=1,
            author=author,
            content=initial_content,
            comment="initial version",
            created_at=created_at or _dt.datetime(1999, 1, 1),
        )
        self._components[component_id] = _Component(versions=[record])
        return record

    # ------------------------------------------------------------------
    def check_out(self, user: str, component_id: str) -> Any:
        """Take the component for editing; returns a working copy.

        Raises :class:`LockConflictError` if the compatibility table
        denies the WRITE lock, :class:`CheckoutError` on double check-out.
        """
        component = self._component(component_id)
        if component.checked_out_by is not None:
            raise CheckoutError(
                f"component {component_id!r} is already checked out by "
                f"{component.checked_out_by}"
            )
        self.locks.acquire(user, component_id, LockMode.WRITE)
        component.checked_out_by = user
        component.working_copy = component.versions[-1].content
        self.checkouts += 1
        return component.working_copy

    def check_in(
        self,
        user: str,
        component_id: str,
        new_content: Any,
        comment: str = "",
        *,
        created_at: _dt.datetime | None = None,
    ) -> VersionRecord:
        """Commit a new version and release the exclusive lock."""
        component = self._component(component_id)
        if component.checked_out_by != user:
            raise CheckoutError(
                f"component {component_id!r} is not checked out by {user}"
                + (
                    f" (held by {component.checked_out_by})"
                    if component.checked_out_by
                    else ""
                )
            )
        latest = component.versions[-1]
        record = VersionRecord(
            component_id=component_id,
            version=latest.version + 1,
            author=user,
            content=new_content,
            comment=comment,
            created_at=created_at or latest.created_at,
        )
        component.versions.append(record)
        component.checked_out_by = None
        component.working_copy = None
        self.locks.release(user, component_id)
        self.checkins += 1
        return record

    def cancel_checkout(self, user: str, component_id: str) -> None:
        """Abandon a check-out without creating a version."""
        component = self._component(component_id)
        if component.checked_out_by != user:
            raise CheckoutError(
                f"component {component_id!r} is not checked out by {user}"
            )
        component.checked_out_by = None
        component.working_copy = None
        self.locks.release(user, component_id)

    # ------------------------------------------------------------------
    def latest(self, component_id: str) -> VersionRecord:
        return self._component(component_id).versions[-1]

    def version(self, component_id: str, version: int) -> VersionRecord:
        for record in self._component(component_id).versions:
            if record.version == version:
                return record
        raise LookupError(
            f"component {component_id!r} has no version {version}"
        )

    def history(self, component_id: str) -> list[VersionRecord]:
        return list(self._component(component_id).versions)

    def is_checked_out(self, component_id: str) -> bool:
        return self._component(component_id).checked_out_by is not None

    def checked_out_by(self, component_id: str) -> str | None:
        return self._component(component_id).checked_out_by

    def components(self) -> list[str]:
        return sorted(self._components)

    def _component(self, component_id: str) -> _Component:
        try:
            return self._components[component_id]
        except KeyError:
            raise LookupError(
                f"unknown component {component_id!r}"
            ) from None
