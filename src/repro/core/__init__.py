"""The Web document database — the paper's primary contribution.

The package implements §3 and the station-local half of §4:

* :mod:`repro.core.schema` — the three-layer table design (database /
  document / BLOB layers) expressed as relational schemas over
  :mod:`repro.rdb`.
* :mod:`repro.core.objects` — typed SCI objects (Script, Implementation,
  TestRecord, BugReport, Annotation) that load/store those rows.
* :mod:`repro.core.wddb` — :class:`WebDocumentDatabase`, the DBMS facade
  the tools program against.
* :mod:`repro.core.integrity` — the referential-integrity diagram with
  labeled ``+``/``*`` links and update-alert propagation.
* :mod:`repro.core.locking` — the object-locking compatibility table for
  collaborative course editing.
* :mod:`repro.core.reuse` — document classes, instances and references;
  BLOB sharing between them.
* :mod:`repro.core.scm` — software-configuration management: check-in /
  check-out and version chains of course components.
"""

from repro.core.objects import (
    AnnotationSCI,
    BugReportSCI,
    DocumentDatabaseInfo,
    ImplementationSCI,
    ScriptSCI,
    TestRecordSCI,
    TestScope,
)
from repro.core.wddb import WebDocumentDatabase
from repro.core.integrity import Alert, IntegrityDiagram, Multiplicity
from repro.core.locking import (
    LockConflictError,
    LockHierarchyError,
    LockManager,
    LockMode,
    ObjectTree,
)
from repro.core.reuse import DocumentClass, DocumentInstance, DocumentReference, ReuseManager
from repro.core.scm import CheckoutError, ConfigurationManager, VersionRecord
from repro.core.complexity import CourseComplexity, measure_complexity

__all__ = [
    "CourseComplexity",
    "measure_complexity",
    "AnnotationSCI",
    "BugReportSCI",
    "DocumentDatabaseInfo",
    "ImplementationSCI",
    "ScriptSCI",
    "TestRecordSCI",
    "TestScope",
    "WebDocumentDatabase",
    "Alert",
    "IntegrityDiagram",
    "Multiplicity",
    "LockMode",
    "LockManager",
    "LockConflictError",
    "LockHierarchyError",
    "ObjectTree",
    "DocumentClass",
    "DocumentInstance",
    "DocumentReference",
    "ReuseManager",
    "CheckoutError",
    "ConfigurationManager",
    "VersionRecord",
]
