"""The three-layer table design of the Web document database.

Mirrors §3 of the paper.  The paper lists cross-references in *both*
directions ("Starting URLs: foreign key to the implementation table" in
the script table AND "Script name: foreign key to the script table" in
the implementation table); relationally the child side holds the FK, so
each list-valued "foreign key" attribute of a parent is realized as the
child's FK column plus an index — the parent-side lists in the paper's
prose are reconstructed by query (see
:meth:`repro.core.wddb.WebDocumentDatabase.implementations_of` etc.).

Layers:

* **Database layer** — ``doc_databases``: one row per Web document
  database (name, keywords, author, version, date/time).  Script names
  "belonging" to it are the scripts rows carrying its FK.
* **Document layer** — ``scripts``, ``implementations``,
  ``test_records``, ``bug_reports``, ``annotations`` plus the file
  registries ``html_files``, ``program_files``, ``annotation_files``.
* **BLOB layer** — ``blobs``: the registry of multimedia resources
  (video / audio / image / animation / MIDI); actual bytes live in the
  per-station :class:`~repro.storage.blob.BlobStore`, shared by
  instances and classes.
"""

from __future__ import annotations

from repro.rdb import Action, Column, ColumnType, ForeignKey, Schema

__all__ = [
    "DOC_DATABASES",
    "SCRIPTS",
    "IMPLEMENTATIONS",
    "TEST_RECORDS",
    "BUG_REPORTS",
    "ANNOTATIONS",
    "HTML_FILES",
    "PROGRAM_FILES",
    "ANNOTATION_FILES",
    "BLOBS",
    "ALL_SCHEMAS",
]

T = ColumnType

#: Database layer — one row per Web document database.
DOC_DATABASES = Schema(
    name="doc_databases",
    columns=(
        Column("db_name", T.TEXT, nullable=False),
        Column("keywords", T.JSON, default=[]),
        Column("author", T.TEXT, nullable=False),
        Column("version", T.INT, nullable=False, default=1),
        Column("created_at", T.DATETIME, nullable=False),
    ),
    primary_key=("db_name",),
)

#: BLOB layer registry (bytes live in the station BlobStore).
BLOBS = Schema(
    name="blobs",
    columns=(
        Column("digest", T.TEXT, nullable=False),
        Column("kind", T.TEXT, nullable=False),  # BlobKind values
        Column("size_bytes", T.INT, nullable=False,
               check=lambda v: v >= 0, check_label="size_non_negative"),
        Column("label", T.TEXT, nullable=False),
    ),
    primary_key=("digest",),
)

#: Document layer — scripts ("similar to a software system
#: specification, can describe a course material, or a quiz").
SCRIPTS = Schema(
    name="scripts",
    columns=(
        Column("script_name", T.TEXT, nullable=False),
        Column("db_name", T.TEXT, nullable=False),
        Column("keywords", T.JSON, default=[]),
        Column("author", T.TEXT, nullable=False),
        Column("version", T.INT, nullable=False, default=1),
        Column("created_at", T.DATETIME, nullable=False),
        Column("description", T.TEXT, nullable=False, default=""),
        # "the author may have a verbal description which is stored in a
        # multimedia resource file" — optional pointer into the BLOB layer.
        Column("verbal_description", T.TEXT, nullable=True),
        Column("expected_completion", T.DATETIME, nullable=True),
        Column("percent_complete", T.FLOAT, nullable=False, default=0.0,
               check=lambda v: 0.0 <= v <= 100.0,
               check_label="percent_in_range"),
        # file descriptors pointing to multimedia files (BLOB digests)
        Column("multimedia", T.JSON, default=[]),
    ),
    primary_key=("script_name",),
    foreign_keys=(
        ForeignKey(("db_name",), "doc_databases", ("db_name",),
                   on_delete=Action.CASCADE),
        ForeignKey(("verbal_description",), "blobs", ("digest",),
                   on_delete=Action.SET_NULL),
    ),
)

#: Document layer — implementations ("with respect to a script, the
#: instructor can have different tries of implementation; each contains
#: at least one HTML file").
IMPLEMENTATIONS = Schema(
    name="implementations",
    columns=(
        Column("starting_url", T.TEXT, nullable=False),
        Column("script_name", T.TEXT, nullable=False),
        Column("author", T.TEXT, nullable=False),
        Column("created_at", T.DATETIME, nullable=False),
        # lists of FileDescriptor JSON objects
        Column("html_files", T.JSON, nullable=False),
        Column("program_files", T.JSON, default=[]),
        # list of BLOB digests used by this implementation
        Column("multimedia", T.JSON, default=[]),
    ),
    primary_key=("starting_url",),
    foreign_keys=(
        ForeignKey(("script_name",), "scripts", ("script_name",),
                   on_delete=Action.CASCADE, on_update=Action.CASCADE),
    ),
)

#: Document layer — test records for implementations.
TEST_RECORDS = Schema(
    name="test_records",
    columns=(
        Column("test_record_name", T.TEXT, nullable=False),
        Column("scope", T.TEXT, nullable=False, default="local",
               check=lambda v: v in ("local", "global"),
               check_label="scope_local_or_global"),
        # "windowing messages which control a Web document traversal"
        Column("traversal_messages", T.JSON, default=[]),
        Column("script_name", T.TEXT, nullable=False),
        Column("starting_url", T.TEXT, nullable=False),
        Column("created_at", T.DATETIME, nullable=False),
        Column("passed", T.BOOL, nullable=True),
    ),
    primary_key=("test_record_name",),
    foreign_keys=(
        ForeignKey(("script_name",), "scripts", ("script_name",),
                   on_delete=Action.CASCADE, on_update=Action.CASCADE),
        ForeignKey(("starting_url",), "implementations", ("starting_url",),
                   on_delete=Action.CASCADE),
    ),
)

#: Document layer — bug reports filed against test records.
BUG_REPORTS = Schema(
    name="bug_reports",
    columns=(
        Column("bug_report_name", T.TEXT, nullable=False),
        Column("qa_engineer", T.TEXT, nullable=False),
        Column("test_procedure", T.TEXT, nullable=False, default=""),
        Column("bug_description", T.TEXT, nullable=False, default=""),
        Column("bad_urls", T.JSON, default=[]),
        Column("missing_objects", T.JSON, default=[]),
        Column("inconsistency", T.TEXT, nullable=False, default=""),
        Column("redundant_objects", T.JSON, default=[]),
        Column("test_record_name", T.TEXT, nullable=False),
        Column("created_at", T.DATETIME, nullable=False),
    ),
    primary_key=("bug_report_name",),
    foreign_keys=(
        ForeignKey(("test_record_name",), "test_records",
                   ("test_record_name",), on_delete=Action.CASCADE),
    ),
)

#: Document layer — per-instructor annotations over an implementation
#: ("different instructors can use the same virtual course but
#: different annotations").
ANNOTATIONS = Schema(
    name="annotations",
    columns=(
        Column("annotation_name", T.TEXT, nullable=False),
        Column("author", T.TEXT, nullable=False),
        Column("version", T.INT, nullable=False, default=1),
        Column("created_at", T.DATETIME, nullable=False),
        # FileDescriptor JSON of the annotation file
        Column("annotation_file", T.JSON, nullable=False),
        Column("script_name", T.TEXT, nullable=False),
        Column("starting_url", T.TEXT, nullable=False),
    ),
    primary_key=("annotation_name",),
    foreign_keys=(
        ForeignKey(("script_name",), "scripts", ("script_name",),
                   on_delete=Action.CASCADE, on_update=Action.CASCADE),
        ForeignKey(("starting_url",), "implementations", ("starting_url",),
                   on_delete=Action.CASCADE),
    ),
)


def _file_registry(name: str) -> Schema:
    """Registry of document-layer files of one kind for one station."""
    return Schema(
        name=name,
        columns=(
            Column("path", T.TEXT, nullable=False),
            Column("station", T.TEXT, nullable=False),
            Column("starting_url", T.TEXT, nullable=True),
            Column("size_bytes", T.INT, nullable=False, default=0),
            Column("checksum", T.TEXT, nullable=False, default=""),
        ),
        primary_key=("path",),
        foreign_keys=(
            ForeignKey(("starting_url",), "implementations",
                       ("starting_url",), on_delete=Action.SET_NULL),
        ),
    )


HTML_FILES = _file_registry("html_files")
PROGRAM_FILES = _file_registry("program_files")
ANNOTATION_FILES = _file_registry("annotation_files")

#: Creation order respects FK dependencies (parents first).
ALL_SCHEMAS = (
    DOC_DATABASES,
    BLOBS,
    SCRIPTS,
    IMPLEMENTATIONS,
    TEST_RECORDS,
    BUG_REPORTS,
    ANNOTATIONS,
    HTML_FILES,
    PROGRAM_FILES,
    ANNOTATION_FILES,
)
