"""The referential-integrity diagram and update-alert propagation.

The paper (§3): "We maintain a referential integrity diagram.  Each
link in the diagram connects two objects.  If the source object is
updated, the system will trigger a message which alerts the user to
update the destination object.  Each link ... is associated with a
label", carrying a reference multiplicity (``+`` = one or more, ``*`` =
zero or more), and cascades transitively: "if a script SCI is updated,
its corresponding implementations should be updated, which further
triggers the changes of one or more HTML programs, zero or more
multimedia resources, and some control programs."

Alerts are *messages to users*, not automatic writes — the destination
object is updated by its author, so the engine only enqueues
:class:`Alert` records.  The propagation hooks into the relational
engine's AFTER UPDATE triggers.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.rdb import Database, TriggerEvent, TriggerTiming, col

__all__ = ["Multiplicity", "IntegrityLink", "Alert", "IntegrityDiagram", "AlertEngine"]


class Multiplicity(enum.Enum):
    """Reference multiplicity carried in a link label's superscript."""

    ONE = "1"
    ONE_OR_MORE = "+"
    ZERO_OR_MORE = "*"


#: Given the engine and a source row, return (dst_pk, dst_row) pairs.
Resolver = Callable[[Database, dict[str, Any]], list[tuple[tuple, dict[str, Any]]]]


@dataclass(frozen=True, slots=True)
class IntegrityLink:
    """One labeled edge of the diagram (source type -> dependent type)."""

    src_table: str
    dst_table: str
    label: str
    multiplicity: Multiplicity
    resolver: Resolver
    alert_template: str = (
        "{label}: {src_table} {src_key} was updated; "
        "review {dst_table} {dst_key}"
    )

    def render(self, src_key: tuple, dst_key: tuple) -> str:
        return self.alert_template.format(
            label=self.label,
            src_table=self.src_table,
            src_key="/".join(map(str, src_key)),
            dst_table=self.dst_table,
            dst_key="/".join(map(str, dst_key)),
        )


@dataclass(frozen=True, slots=True)
class Alert:
    """One pending "please update the destination object" message."""

    link_label: str
    src_table: str
    src_key: tuple
    dst_table: str
    dst_key: tuple
    message: str
    depth: int  # 1 for direct dependents, 2+ for transitive cascade


def fk_children_resolver(
    dst_table: str, fk_column: str, src_pk_column: str
) -> Resolver:
    """Children of ``dst_table`` whose ``fk_column`` equals the source's
    ``src_pk_column`` value."""

    def resolve(
        db: Database, src_row: dict[str, Any]
    ) -> list[tuple[tuple, dict[str, Any]]]:
        value = src_row[src_pk_column]
        rows = db.select(dst_table, where=col(fk_column) == value)
        schema = db.schema(dst_table)
        return [(schema.primary_key_of(row), row) for row in rows]

    return resolve


def json_list_resolver(dst_table: str, list_column: str, json_key: str | None) -> Resolver:
    """Targets named in a JSON list column of the source row.

    ``json_key`` selects a field of each list element (e.g. ``"path"``
    for FileDescriptor dicts); ``None`` uses the element itself (e.g. a
    BLOB digest string).
    """

    def resolve(
        db: Database, src_row: dict[str, Any]
    ) -> list[tuple[tuple, dict[str, Any]]]:
        out: list[tuple[tuple, dict[str, Any]]] = []
        for element in src_row.get(list_column) or []:
            key_value = element[json_key] if json_key is not None else element
            row = db.get(dst_table, key_value)
            if row is not None:
                out.append(((key_value,), row))
        return out

    return resolve


class IntegrityDiagram:
    """The labeled link graph between object types."""

    def __init__(self) -> None:
        self._links: list[IntegrityLink] = []

    def add_link(self, link: IntegrityLink) -> None:
        self._links.append(link)

    def links_from(self, table: str) -> list[IntegrityLink]:
        return [link for link in self._links if link.src_table == table]

    def links(self) -> list[IntegrityLink]:
        return list(self._links)

    def tables(self) -> set[str]:
        out: set[str] = set()
        for link in self._links:
            out.add(link.src_table)
            out.add(link.dst_table)
        return out

    @classmethod
    def paper_default(cls) -> "IntegrityDiagram":
        """The diagram described in §3 for the course schema.

        Script -> implementations(+) -> HTML files(+), program files(*),
        multimedia(*); implementation -> test records(*) -> bug
        reports(*); implementation -> annotations(*).
        """
        diagram = cls()
        diagram.add_link(IntegrityLink(
            "scripts", "implementations", "realizes",
            Multiplicity.ONE_OR_MORE,
            fk_children_resolver("implementations", "script_name", "script_name"),
        ))
        diagram.add_link(IntegrityLink(
            "implementations", "html_files", "renders",
            Multiplicity.ONE_OR_MORE,
            json_list_resolver("html_files", "html_files", "path"),
        ))
        diagram.add_link(IntegrityLink(
            "implementations", "program_files", "controls",
            Multiplicity.ZERO_OR_MORE,
            json_list_resolver("program_files", "program_files", "path"),
        ))
        diagram.add_link(IntegrityLink(
            "implementations", "blobs", "presents",
            Multiplicity.ZERO_OR_MORE,
            json_list_resolver("blobs", "multimedia", None),
        ))
        diagram.add_link(IntegrityLink(
            "implementations", "test_records", "validated-by",
            Multiplicity.ZERO_OR_MORE,
            fk_children_resolver("test_records", "starting_url", "starting_url"),
        ))
        diagram.add_link(IntegrityLink(
            "test_records", "bug_reports", "reported-in",
            Multiplicity.ZERO_OR_MORE,
            fk_children_resolver(
                "bug_reports", "test_record_name", "test_record_name"
            ),
        ))
        diagram.add_link(IntegrityLink(
            "implementations", "annotations", "annotated-by",
            Multiplicity.ZERO_OR_MORE,
            fk_children_resolver("annotations", "starting_url", "starting_url"),
        ))
        return diagram


class AlertEngine:
    """Watches updates and enqueues transitive integrity alerts."""

    def __init__(
        self,
        db: Database,
        diagram: IntegrityDiagram,
        *,
        max_depth: int = 8,
    ) -> None:
        self.db = db
        self.diagram = diagram
        self.max_depth = max_depth
        self.alerts: list[Alert] = []
        self.cascades: list[int] = []  # alert count per triggering update
        self.resolved = 0
        self._installed: set[str] = set()
        for table in sorted(diagram.tables()):
            if table in db.table_names():
                db.register_trigger(
                    f"__integrity_{table}__",
                    table,
                    TriggerEvent.UPDATE,
                    TriggerTiming.AFTER,
                    self._on_update,
                )
                self._installed.add(table)

    def _on_update(self, ctx) -> None:
        assert ctx.new_row is not None
        # Updating an object *resolves* any alert pointing at it — its
        # author has done what the alert asked — before the update's own
        # cascade is raised.
        key = self.db.schema(ctx.table).primary_key_of(ctx.new_row)
        self.resolve(ctx.table, key)
        self.propagate(ctx.table, ctx.new_row)

    def resolve(self, dst_table: str, dst_key: tuple) -> int:
        """Clear pending alerts targeting one object; returns the count."""
        before = len(self.alerts)
        self.alerts = [
            alert
            for alert in self.alerts
            if not (alert.dst_table == dst_table and alert.dst_key == dst_key)
        ]
        resolved = before - len(self.alerts)
        self.resolved += resolved
        return resolved

    def acknowledge(self, alert: Alert) -> bool:
        """Dismiss one specific alert (reviewed, no change needed)."""
        try:
            self.alerts.remove(alert)
        except ValueError:
            return False
        self.resolved += 1
        return True

    def propagate(self, table: str, row: dict[str, Any]) -> list[Alert]:
        """BFS the diagram from one updated object, enqueueing alerts.

        Each (table, key) is alerted at most once per propagation.
        Returns (and also stores) the alerts of this cascade.
        """
        schema = self.db.schema(table)
        src_key = schema.primary_key_of(row)
        cascade: list[Alert] = []
        seen: set[tuple[str, tuple]] = {(table, src_key)}
        queue: deque[tuple[str, tuple, dict[str, Any], int]] = deque(
            [(table, src_key, row, 0)]
        )
        while queue:
            cur_table, cur_key, cur_row, depth = queue.popleft()
            if depth >= self.max_depth:
                continue
            for link in self.diagram.links_from(cur_table):
                for dst_key, dst_row in link.resolver(self.db, cur_row):
                    node = (link.dst_table, dst_key)
                    if node in seen:
                        continue
                    seen.add(node)
                    alert = Alert(
                        link_label=link.label,
                        src_table=cur_table,
                        src_key=cur_key,
                        dst_table=link.dst_table,
                        dst_key=dst_key,
                        message=link.render(cur_key, dst_key),
                        depth=depth + 1,
                    )
                    cascade.append(alert)
                    queue.append((link.dst_table, dst_key, dst_row, depth + 1))
        self.alerts.extend(cascade)
        self.cascades.append(len(cascade))
        return cascade

    def drain(self) -> list[Alert]:
        """Take (and clear) all pending alerts."""
        out, self.alerts = self.alerts, []
        return out

    def pending_for(self, dst_table: str) -> list[Alert]:
        return [a for a in self.alerts if a.dst_table == dst_table]
