"""Typed SCI (software configuration item) objects.

"A SCI can be a page that shows a piece of lecture, an annotation to
the piece of lecture, or a compound object containing the above."
These dataclasses are the typed face of the document-layer rows:
``to_row`` / ``from_row`` convert to and from the relational engine's
dict rows, so application code never handles raw dicts.
"""

from __future__ import annotations

import datetime as _dt
import enum
from dataclasses import dataclass, field
from typing import Any

from repro.storage.files import FileDescriptor

__all__ = [
    "TestScope",
    "DocumentDatabaseInfo",
    "ScriptSCI",
    "ImplementationSCI",
    "TestRecordSCI",
    "BugReportSCI",
    "AnnotationSCI",
]


class TestScope(enum.Enum):
    """Testing scope of a test record (paper: "local or global")."""

    LOCAL = "local"
    GLOBAL = "global"


@dataclass(slots=True)
class DocumentDatabaseInfo:
    """Database-layer object: one Web document database."""

    db_name: str
    author: str
    keywords: list[str] = field(default_factory=list)
    version: int = 1
    created_at: _dt.datetime = field(
        default_factory=lambda: _dt.datetime(1999, 1, 1)
    )

    def to_row(self) -> dict[str, Any]:
        return {
            "db_name": self.db_name,
            "keywords": list(self.keywords),
            "author": self.author,
            "version": self.version,
            "created_at": self.created_at,
        }

    @classmethod
    def from_row(cls, row: dict[str, Any]) -> "DocumentDatabaseInfo":
        return cls(
            db_name=row["db_name"],
            author=row["author"],
            keywords=list(row["keywords"] or []),
            version=row["version"],
            created_at=row["created_at"],
        )


@dataclass(slots=True)
class ScriptSCI:
    """A document script — "similar to a software system specification"."""

    script_name: str
    db_name: str
    author: str
    description: str = ""
    keywords: list[str] = field(default_factory=list)
    version: int = 1
    created_at: _dt.datetime = field(
        default_factory=lambda: _dt.datetime(1999, 1, 1)
    )
    verbal_description: str | None = None  # BLOB digest of spoken spec
    expected_completion: _dt.datetime | None = None
    percent_complete: float = 0.0
    multimedia: list[str] = field(default_factory=list)  # BLOB digests

    def to_row(self) -> dict[str, Any]:
        return {
            "script_name": self.script_name,
            "db_name": self.db_name,
            "keywords": list(self.keywords),
            "author": self.author,
            "version": self.version,
            "created_at": self.created_at,
            "description": self.description,
            "verbal_description": self.verbal_description,
            "expected_completion": self.expected_completion,
            "percent_complete": self.percent_complete,
            "multimedia": list(self.multimedia),
        }

    @classmethod
    def from_row(cls, row: dict[str, Any]) -> "ScriptSCI":
        return cls(
            script_name=row["script_name"],
            db_name=row["db_name"],
            author=row["author"],
            description=row["description"],
            keywords=list(row["keywords"] or []),
            version=row["version"],
            created_at=row["created_at"],
            verbal_description=row["verbal_description"],
            expected_completion=row["expected_completion"],
            percent_complete=row["percent_complete"],
            multimedia=list(row["multimedia"] or []),
        )


@dataclass(slots=True)
class ImplementationSCI:
    """One "try of implementation" of a script.

    Must contain at least one HTML file (enforced by the facade, per the
    paper: "each implementation contains at least one HTML file").
    """

    starting_url: str
    script_name: str
    author: str
    html_files: list[FileDescriptor] = field(default_factory=list)
    program_files: list[FileDescriptor] = field(default_factory=list)
    multimedia: list[str] = field(default_factory=list)  # BLOB digests
    created_at: _dt.datetime = field(
        default_factory=lambda: _dt.datetime(1999, 1, 1)
    )

    def to_row(self) -> dict[str, Any]:
        return {
            "starting_url": self.starting_url,
            "script_name": self.script_name,
            "author": self.author,
            "created_at": self.created_at,
            "html_files": [fd.as_json() for fd in self.html_files],
            "program_files": [fd.as_json() for fd in self.program_files],
            "multimedia": list(self.multimedia),
        }

    @classmethod
    def from_row(cls, row: dict[str, Any]) -> "ImplementationSCI":
        return cls(
            starting_url=row["starting_url"],
            script_name=row["script_name"],
            author=row["author"],
            html_files=[FileDescriptor.from_json(d) for d in row["html_files"]],
            program_files=[
                FileDescriptor.from_json(d) for d in (row["program_files"] or [])
            ],
            multimedia=list(row["multimedia"] or []),
            created_at=row["created_at"],
        )


@dataclass(slots=True)
class TestRecordSCI:
    """A test record over one implementation."""

    test_record_name: str
    script_name: str
    starting_url: str
    scope: TestScope = TestScope.LOCAL
    traversal_messages: list[str] = field(default_factory=list)
    created_at: _dt.datetime = field(
        default_factory=lambda: _dt.datetime(1999, 1, 1)
    )
    passed: bool | None = None

    def to_row(self) -> dict[str, Any]:
        return {
            "test_record_name": self.test_record_name,
            "scope": self.scope.value,
            "traversal_messages": list(self.traversal_messages),
            "script_name": self.script_name,
            "starting_url": self.starting_url,
            "created_at": self.created_at,
            "passed": self.passed,
        }

    @classmethod
    def from_row(cls, row: dict[str, Any]) -> "TestRecordSCI":
        return cls(
            test_record_name=row["test_record_name"],
            script_name=row["script_name"],
            starting_url=row["starting_url"],
            scope=TestScope(row["scope"]),
            traversal_messages=list(row["traversal_messages"] or []),
            created_at=row["created_at"],
            passed=row["passed"],
        )


@dataclass(slots=True)
class BugReportSCI:
    """A bug report created for a test record."""

    bug_report_name: str
    test_record_name: str
    qa_engineer: str
    test_procedure: str = ""
    bug_description: str = ""
    bad_urls: list[str] = field(default_factory=list)
    missing_objects: list[str] = field(default_factory=list)
    inconsistency: str = ""
    redundant_objects: list[str] = field(default_factory=list)
    created_at: _dt.datetime = field(
        default_factory=lambda: _dt.datetime(1999, 1, 1)
    )

    @property
    def is_clean(self) -> bool:
        """True when the report records no defects."""
        return not (
            self.bad_urls
            or self.missing_objects
            or self.inconsistency
            or self.redundant_objects
            or self.bug_description
        )

    def to_row(self) -> dict[str, Any]:
        return {
            "bug_report_name": self.bug_report_name,
            "qa_engineer": self.qa_engineer,
            "test_procedure": self.test_procedure,
            "bug_description": self.bug_description,
            "bad_urls": list(self.bad_urls),
            "missing_objects": list(self.missing_objects),
            "inconsistency": self.inconsistency,
            "redundant_objects": list(self.redundant_objects),
            "test_record_name": self.test_record_name,
            "created_at": self.created_at,
        }

    @classmethod
    def from_row(cls, row: dict[str, Any]) -> "BugReportSCI":
        return cls(
            bug_report_name=row["bug_report_name"],
            test_record_name=row["test_record_name"],
            qa_engineer=row["qa_engineer"],
            test_procedure=row["test_procedure"],
            bug_description=row["bug_description"],
            bad_urls=list(row["bad_urls"] or []),
            missing_objects=list(row["missing_objects"] or []),
            inconsistency=row["inconsistency"],
            redundant_objects=list(row["redundant_objects"] or []),
            created_at=row["created_at"],
        )


@dataclass(slots=True)
class AnnotationSCI:
    """A per-instructor annotation overlay on an implementation."""

    annotation_name: str
    author: str
    script_name: str
    starting_url: str
    annotation_file: FileDescriptor
    version: int = 1
    created_at: _dt.datetime = field(
        default_factory=lambda: _dt.datetime(1999, 1, 1)
    )

    def to_row(self) -> dict[str, Any]:
        return {
            "annotation_name": self.annotation_name,
            "author": self.author,
            "version": self.version,
            "created_at": self.created_at,
            "annotation_file": self.annotation_file.as_json(),
            "script_name": self.script_name,
            "starting_url": self.starting_url,
        }

    @classmethod
    def from_row(cls, row: dict[str, Any]) -> "AnnotationSCI":
        return cls(
            annotation_name=row["annotation_name"],
            author=row["author"],
            script_name=row["script_name"],
            starting_url=row["starting_url"],
            annotation_file=FileDescriptor.from_json(row["annotation_file"]),
            version=row["version"],
            created_at=row["created_at"],
        )
