""":class:`WebDocumentDatabase` — the virtual course DBMS facade.

One instance corresponds to the paper's "virtual course database
management system" on a workstation: the relational engine loaded with
the three-layer schema, the station's file and BLOB stores, the
referential-integrity alert engine, the hierarchical lock manager and
the configuration manager all wired together.

Object identifiers in the lock tree are namespaced:
``db:<name>``, ``script:<name>``, ``impl:<url>``, ``file:<path>``,
``test:<name>``, ``bug:<name>``, ``ann:<name>`` — a database contains
its scripts, a script its implementations, an implementation its files,
test records and annotations, matching the container hierarchy the
locking compatibility table (§3) quantifies over.
"""

from __future__ import annotations

import datetime as _dt
import json
from pathlib import Path
from typing import Any, Iterable

from repro.core import schema as _schema
from repro.core.integrity import AlertEngine, IntegrityDiagram
from repro.core.locking import LockManager, ObjectTree
from repro.core.objects import (
    AnnotationSCI,
    BugReportSCI,
    DocumentDatabaseInfo,
    ImplementationSCI,
    ScriptSCI,
    TestRecordSCI,
)
from repro.core.reuse import ReuseManager
from repro.core.scm import ConfigurationManager
from repro.rdb import Database, col
from repro.storage.blob import BlobKind, BlobStore
from repro.storage.files import DocumentFile, FileKind, FileStore

__all__ = ["WebDocumentDatabase"]

_EPOCH = _dt.datetime(1999, 1, 1)


class WebDocumentDatabase:
    """The Web document DBMS on one station."""

    def __init__(
        self,
        station: str = "local",
        *,
        with_integrity: bool = True,
        blobs: BlobStore | None = None,
        files: FileStore | None = None,
    ) -> None:
        self.station = station
        self.engine = Database(f"wddb_{station}")
        for table_schema in _schema.ALL_SCHEMAS:
            self.engine.create_table(table_schema)
        self.blobs = blobs if blobs is not None else BlobStore(station=station)
        self.files = files if files is not None else FileStore(station=station)
        self.tree = ObjectTree(root="wddb")
        self.locks = LockManager(self.tree)
        self.scm = ConfigurationManager(self.locks)
        self.reuse = ReuseManager(self.blobs, self.files)
        self.alerts: AlertEngine | None = None
        if with_integrity:
            self.alerts = AlertEngine(
                self.engine, IntegrityDiagram.paper_default()
            )

    # ------------------------------------------------------------------
    # Database layer
    # ------------------------------------------------------------------
    def create_document_database(
        self,
        db_name: str,
        author: str,
        keywords: Iterable[str] = (),
        *,
        created_at: _dt.datetime | None = None,
    ) -> DocumentDatabaseInfo:
        """Create a Web document database (database-layer object)."""
        info = DocumentDatabaseInfo(
            db_name=db_name,
            author=author,
            keywords=list(keywords),
            created_at=created_at or _EPOCH,
        )
        self.engine.insert("doc_databases", info.to_row())
        self.tree.add(f"db:{db_name}", self.tree.root)
        return info

    def document_databases(self) -> list[DocumentDatabaseInfo]:
        """All database-layer objects, ordered by name."""
        return [
            DocumentDatabaseInfo.from_row(row)
            for row in self.engine.select("doc_databases", order_by="db_name")
        ]

    # ------------------------------------------------------------------
    # BLOB layer
    # ------------------------------------------------------------------
    def register_blob(
        self,
        label: str,
        size_bytes: int,
        kind: BlobKind = BlobKind.OTHER,
        *,
        owner: str = "library",
    ) -> str:
        """Register a multimedia resource; returns its digest.

        Registering the same (label, size) twice shares storage — the
        paper's in-station BLOB sharing.
        """
        digest = self.blobs.put_synthetic(label, size_bytes, kind, owner=owner)
        if self.engine.get("blobs", digest) is None:
            self.engine.insert(
                "blobs",
                {
                    "digest": digest,
                    "kind": kind.value,
                    "size_bytes": size_bytes,
                    "label": label,
                },
            )
        return digest

    def blob_info(self, digest: str) -> dict[str, Any] | None:
        """The blobs-table row for ``digest`` (None if unregistered)."""
        return self.engine.get("blobs", digest)

    # ------------------------------------------------------------------
    # Scripts
    # ------------------------------------------------------------------
    def add_script(self, script: ScriptSCI) -> ScriptSCI:
        """Insert a script SCI (its database must exist)."""
        self.engine.insert("scripts", script.to_row())
        self.tree.add(f"script:{script.script_name}", f"db:{script.db_name}")
        return script

    def script(self, script_name: str) -> ScriptSCI | None:
        """Fetch one script SCI by name (None if absent)."""
        row = self.engine.get("scripts", script_name)
        return None if row is None else ScriptSCI.from_row(row)

    def scripts_in(self, db_name: str) -> list[ScriptSCI]:
        """The paper's database-layer "script names" list, by query."""
        return [
            ScriptSCI.from_row(row)
            for row in self.engine.select(
                "scripts", where=col("db_name") == db_name,
                order_by="script_name",
            )
        ]

    def update_script(self, script_name: str, changes: dict[str, Any]) -> bool:
        """Update a script; bumps its version and fires integrity alerts."""
        row = self.engine.get("scripts", script_name)
        if row is None:
            return False
        changes = dict(changes)
        changes.setdefault("version", row["version"] + 1)
        return self.engine.update_pk("scripts", script_name, changes)

    def delete_script(self, script_name: str) -> bool:
        """Delete a script; implementations etc. cascade away."""
        impls = self.implementations_of(script_name)
        deleted = self.engine.delete_pk("scripts", script_name)
        if deleted:
            for impl in impls:
                self._forget_impl_tree(impl)
            self._tree_discard(f"script:{script_name}")
        return deleted

    def search_scripts(
        self,
        keyword: str | None = None,
        author: str | None = None,
    ) -> list[ScriptSCI]:
        """Keyword / author search over script SCIs."""
        where = None
        if keyword is not None:
            where = col("keywords").contains(keyword)
        if author is not None:
            author_expr = col("author") == author
            where = author_expr if where is None else (where & author_expr)
        return [
            ScriptSCI.from_row(row)
            for row in self.engine.select(
                "scripts", where=where, order_by="script_name"
            )
        ]

    # ------------------------------------------------------------------
    # Implementations
    # ------------------------------------------------------------------
    def add_implementation(
        self,
        impl: ImplementationSCI,
        html_files: list[DocumentFile],
        program_files: list[DocumentFile] = (),
    ) -> ImplementationSCI:
        """Record one implementation try with its files.

        Writes the files into the station file store, registers them in
        the file tables, and enforces the paper's rule that "each
        implementation contains at least one HTML file".
        """
        if not html_files:
            raise ValueError(
                "an implementation must contain at least one HTML file"
            )
        for document_file in html_files:
            if document_file.kind is not FileKind.HTML:
                raise ValueError(
                    f"{document_file.path!r} is not an HTML file"
                )
        impl = ImplementationSCI(
            starting_url=impl.starting_url,
            script_name=impl.script_name,
            author=impl.author,
            html_files=[self.files.write(f) for f in html_files],
            program_files=[self.files.write(f) for f in program_files],
            multimedia=list(impl.multimedia),
            created_at=impl.created_at,
        )
        self.engine.insert("implementations", impl.to_row())
        impl_node = f"impl:{impl.starting_url}"
        self.tree.add(impl_node, f"script:{impl.script_name}")
        for document_file, table in (
            *((f, "html_files") for f in html_files),
            *((f, "program_files") for f in program_files),
        ):
            if self.engine.get(table, document_file.path) is None:
                self.engine.insert(
                    table,
                    {
                        "path": document_file.path,
                        "station": self.station,
                        "starting_url": impl.starting_url,
                        "size_bytes": document_file.size,
                        "checksum": document_file.checksum,
                    },
                )
            self.tree.add(f"file:{document_file.path}", impl_node)
        for digest in impl.multimedia:
            if self.engine.get("blobs", digest) is None:
                raise LookupError(
                    f"multimedia digest {digest!r} is not registered"
                )
            self.blobs.acquire(digest, owner=f"impl:{impl.starting_url}")
        return impl

    def implementation(self, starting_url: str) -> ImplementationSCI | None:
        """Fetch one implementation SCI by starting URL (None if absent)."""
        row = self.engine.get("implementations", starting_url)
        return None if row is None else ImplementationSCI.from_row(row)

    def implementations_of(self, script_name: str) -> list[ImplementationSCI]:
        """The script table's "starting URLs" list, by query."""
        return [
            ImplementationSCI.from_row(row)
            for row in self.engine.select(
                "implementations",
                where=col("script_name") == script_name,
                order_by="starting_url",
            )
        ]

    def update_implementation(
        self, starting_url: str, changes: dict[str, Any]
    ) -> bool:
        """Update an implementation row; fires integrity alerts."""
        return self.engine.update_pk("implementations", starting_url, changes)

    def delete_implementation(self, starting_url: str) -> bool:
        """Delete one implementation (dependents cascade; BLOB refs released)."""
        impl = self.implementation(starting_url)
        deleted = self.engine.delete_pk("implementations", starting_url)
        if deleted and impl is not None:
            self._forget_impl_tree(impl)
            self.blobs.release_owner(f"impl:{starting_url}")
        return deleted

    # ------------------------------------------------------------------
    # Test records / bug reports / annotations
    # ------------------------------------------------------------------
    def add_test_record(self, record: TestRecordSCI) -> TestRecordSCI:
        """File a test record against an existing implementation."""
        self.engine.insert("test_records", record.to_row())
        self.tree.add(
            f"test:{record.test_record_name}", f"impl:{record.starting_url}"
        )
        return record

    def test_records_of(self, starting_url: str) -> list[TestRecordSCI]:
        """All test records filed against one implementation."""
        return [
            TestRecordSCI.from_row(row)
            for row in self.engine.select(
                "test_records",
                where=col("starting_url") == starting_url,
                order_by="test_record_name",
            )
        ]

    def add_bug_report(self, report: BugReportSCI) -> BugReportSCI:
        """File a bug report against an existing test record."""
        self.engine.insert("bug_reports", report.to_row())
        self.tree.add(
            f"bug:{report.bug_report_name}", f"test:{report.test_record_name}"
        )
        return report

    def bug_reports_of(self, test_record_name: str) -> list[BugReportSCI]:
        """All bug reports created for one test record."""
        return [
            BugReportSCI.from_row(row)
            for row in self.engine.select(
                "bug_reports",
                where=col("test_record_name") == test_record_name,
                order_by="bug_report_name",
            )
        ]

    def add_annotation(
        self, annotation: AnnotationSCI, annotation_file: DocumentFile
    ) -> AnnotationSCI:
        """Store an instructor's annotation overlay and its file."""
        if annotation_file.kind is not FileKind.ANNOTATION:
            raise ValueError(
                f"{annotation_file.path!r} is not an annotation file"
            )
        descriptor = self.files.write(annotation_file)
        annotation = AnnotationSCI(
            annotation_name=annotation.annotation_name,
            author=annotation.author,
            script_name=annotation.script_name,
            starting_url=annotation.starting_url,
            annotation_file=descriptor,
            version=annotation.version,
            created_at=annotation.created_at,
        )
        self.engine.insert("annotations", annotation.to_row())
        if self.engine.get("annotation_files", annotation_file.path) is None:
            self.engine.insert(
                "annotation_files",
                {
                    "path": annotation_file.path,
                    "station": self.station,
                    "starting_url": annotation.starting_url,
                    "size_bytes": annotation_file.size,
                    "checksum": annotation_file.checksum,
                },
            )
        self.tree.add(
            f"ann:{annotation.annotation_name}",
            f"impl:{annotation.starting_url}",
        )
        return annotation

    def annotations_of(self, starting_url: str) -> list[AnnotationSCI]:
        """All instructors' overlays on one implementation."""
        return [
            AnnotationSCI.from_row(row)
            for row in self.engine.select(
                "annotations",
                where=col("starting_url") == starting_url,
                order_by="annotation_name",
            )
        ]

    def annotations_by(self, author: str) -> list[AnnotationSCI]:
        """One instructor's annotations across all courses."""
        return [
            AnnotationSCI.from_row(row)
            for row in self.engine.select(
                "annotations",
                where=col("author") == author,
                order_by="annotation_name",
            )
        ]

    # ------------------------------------------------------------------
    # Compound-object duplication (paper §3: "A number of database
    # objects are grouped into a reusable component.  The component can
    # be duplicated to another compound object with modifications.
    # However, the duplication process involves objects of relatively
    # smaller sizes, such as HTML files.  BLOBs ... are shared.")
    # ------------------------------------------------------------------
    def duplicate_course(
        self,
        script_name: str,
        new_script_name: str,
        *,
        author: str | None = None,
        modifications: dict[str, Any] | None = None,
    ) -> ScriptSCI:
        """Duplicate a script and its implementations as a new compound.

        Small objects (the script row, implementation rows, HTML and
        program files) are physically copied under a ``<new name>/``
        path prefix; BLOB digests are re-referenced, not re-stored —
        exactly the paper's size-based split.  ``modifications`` patches
        the new script row (description, keywords, ...).
        """
        source = self.script(script_name)
        if source is None:
            raise LookupError(f"unknown script {script_name!r}")
        if self.script(new_script_name) is not None:
            raise ValueError(f"script {new_script_name!r} already exists")
        new_script = ScriptSCI(
            script_name=new_script_name,
            db_name=source.db_name,
            author=author if author is not None else source.author,
            description=source.description,
            keywords=list(source.keywords),
            version=1,
            created_at=source.created_at,
            verbal_description=source.verbal_description,
            expected_completion=source.expected_completion,
            percent_complete=source.percent_complete,
            multimedia=list(source.multimedia),
        )
        for key, value in (modifications or {}).items():
            setattr(new_script, key, value)
        self.add_script(new_script)
        prefix = f"{new_script_name}/"
        for impl in self.implementations_of(script_name):
            # Rewrite paths (and the links between them) under the new
            # prefix so the duplicate is self-contained.
            mapping = {
                fd.path: f"{prefix}{fd.path}" for fd in impl.html_files
            }
            new_html = []
            for fd in impl.html_files:
                original = self.files.read(fd.path)
                content = original.content
                for old_path, new_path in mapping.items():
                    content = content.replace(old_path, new_path)
                new_html.append(
                    DocumentFile(mapping[fd.path], original.kind, content)
                )
            new_programs = [
                DocumentFile(
                    f"{prefix}{fd.path}",
                    self.files.read(fd.path).kind,
                    self.files.read(fd.path).content,
                )
                for fd in impl.program_files
            ]
            self.add_implementation(
                ImplementationSCI(
                    starting_url=f"{impl.starting_url}{new_script_name}/",
                    script_name=new_script_name,
                    author=new_script.author,
                    multimedia=list(impl.multimedia),  # shared BLOBs
                    created_at=impl.created_at,
                ),
                html_files=new_html,
                program_files=new_programs,
            )
        return new_script

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: str | Path) -> None:
        """Persist the whole station database to ``directory``.

        Writes the relational snapshot plus the document files.  BLOB
        bytes are synthetic in this reproduction, so the blobs table is
        sufficient to rebuild the store; ownership is reconstructed from
        the implementation rows on load.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        self.engine.snapshot(str(directory / "tables.json"))
        files_payload = {
            document.path: {
                "kind": document.kind.value,
                "content": document.content,
            }
            for document in self.files.files()
        }
        (directory / "files.json").write_text(
            json.dumps(files_payload, separators=(",", ":")),
            encoding="utf-8",
        )

    @classmethod
    def load(
        cls,
        directory: str | Path,
        station: str = "local",
        *,
        with_integrity: bool = True,
    ) -> "WebDocumentDatabase":
        """Rebuild a station database saved by :meth:`save`.

        Restores rows, files, the BLOB store (with per-implementation
        ownership) and the lock-tree hierarchy.
        """
        from repro.rdb.wal import read_snapshot

        directory = Path(directory)
        db = cls(station, with_integrity=with_integrity)
        snapshot = read_snapshot(directory / "tables.json")
        # Apply rows mechanically, in dependency order (the snapshot was
        # consistent, so constraint re-checking is unnecessary).
        for table_schema in _schema.ALL_SCHEMAS:
            table = db.engine.table(table_schema.name)
            for row in snapshot.get(table_schema.name, ()):
                # repro-analysis: ignore[mutation-outside-transaction] -- replaying a committed snapshot; no undo log exists to record into
                table.apply_insert(table_schema.normalize_row(row))
        files_payload = json.loads(
            (directory / "files.json").read_text(encoding="utf-8")
        )
        for path, entry in files_payload.items():
            db.files.write(
                DocumentFile(path, FileKind(entry["kind"]), entry["content"])
            )
        # Rebuild the BLOB store from the registry + implementations.
        for row in db.engine.select("blobs"):
            db.blobs.put_synthetic(
                row["label"], row["size_bytes"],
                BlobKind(row["kind"]), owner="library",
            )
        # Rebuild the lock tree, then re-acquire per-impl BLOB ownership.
        for row in db.engine.select("doc_databases"):
            db.tree.add(f"db:{row['db_name']}", db.tree.root)
        for row in db.engine.select("scripts"):
            db.tree.add(f"script:{row['script_name']}",
                        f"db:{row['db_name']}")
        for row in db.engine.select("implementations"):
            node = f"impl:{row['starting_url']}"
            db.tree.add(node, f"script:{row['script_name']}")
            for descriptor in (*row["html_files"], *row["program_files"]):
                db.tree.add(f"file:{descriptor['path']}", node)
            for digest in row["multimedia"] or []:
                db.blobs.acquire(digest, f"impl:{row['starting_url']}")
        for row in db.engine.select("test_records"):
            db.tree.add(f"test:{row['test_record_name']}",
                        f"impl:{row['starting_url']}")
        for row in db.engine.select("bug_reports"):
            db.tree.add(f"bug:{row['bug_report_name']}",
                        f"test:{row['test_record_name']}")
        for row in db.engine.select("annotations"):
            db.tree.add(f"ann:{row['annotation_name']}",
                        f"impl:{row['starting_url']}")
        return db

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Row counts, storage metering and pending-alert count."""
        engine_stats = self.engine.stats()
        return {
            "station": self.station,
            "tables": engine_stats["tables"],
            "statements": engine_stats["statements"],
            "blob_stats": self.blobs.stats(),
            "file_bytes": self.files.total_bytes,
            "pending_alerts": len(self.alerts.alerts) if self.alerts else 0,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _forget_impl_tree(self, impl: ImplementationSCI) -> None:
        """Remove an implementation's lock-tree subtree after cascade."""
        impl_node = f"impl:{impl.starting_url}"
        if impl_node not in self.tree:
            return
        # Delete leaves first (tree.remove refuses non-leaves).
        stack = [impl_node]
        order: list[str] = []
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(self.tree.children(node))
        for node in reversed(order):
            self._tree_discard(node)

    def _tree_discard(self, node: str) -> None:
        if node in self.tree and not self.tree.children(node):
            self.tree.remove(node)
