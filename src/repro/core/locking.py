"""The object-locking compatibility table for collaborative editing.

The paper (§3): "if a container has a read lock by a user, its
components (and itself) can have the read access by another user, but
not the write access.  However, the parent objects of the container can
have both read and write access by another user.  Of course, the
accesses are prohibited in the current container object [when write
locked].  Locking tables are implemented in the instructor workstation.
With the table, the system can control which instructor is changing a
Web document.  Therefore, collaborative work is feasible."

Semantics implemented (and exposed as an explicit compatibility matrix):

* ``READ`` on X by A  →  B may READ anywhere; B may WRITE only objects
  that are **not** in X's subtree (X itself included in the subtree).
  Ancestors of X remain fully writable.
* ``WRITE`` on X by A →  B may neither READ nor WRITE anything in X's
  subtree; ancestors of X remain fully accessible.
* Locks are reentrant for their owner, and an owner may upgrade
  READ→WRITE when no other holder conflicts.

Note a deliberate asymmetry inherited from the paper: the table is
*permissive upward* — because "the parent objects of the container can
have both read and write access by another user", a WRITE on an ancestor
may be granted while another user already holds a READ on a descendant.
A strict multiple-granularity protocol would use intention locks to
forbid that; the paper's table does not, and this implementation follows
the paper.

Objects live in an :class:`ObjectTree` (database → script →
implementation → files/annotations/test records), the container
hierarchy the compatibility rules quantify over.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "LockMode",
    "LockConflictError",
    "ObjectTree",
    "HeldLock",
    "LockManager",
    "COMPATIBILITY",
]


class LockMode(enum.Enum):
    """Lock strength: shared READ or exclusive WRITE."""

    READ = "read"
    WRITE = "write"


#: The compatibility table, keyed by (held mode, requested mode,
#: relation of requested object to held object).  Relations: "self",
#: "descendant" (requested inside held subtree), "ancestor" (requested
#: above the held object), "unrelated".
COMPATIBILITY: dict[tuple[LockMode, LockMode, str], bool] = {
    # held READ on X:
    (LockMode.READ, LockMode.READ, "self"): True,
    (LockMode.READ, LockMode.READ, "descendant"): True,
    (LockMode.READ, LockMode.READ, "ancestor"): True,
    (LockMode.READ, LockMode.READ, "unrelated"): True,
    (LockMode.READ, LockMode.WRITE, "self"): False,
    (LockMode.READ, LockMode.WRITE, "descendant"): False,
    (LockMode.READ, LockMode.WRITE, "ancestor"): True,
    (LockMode.READ, LockMode.WRITE, "unrelated"): True,
    # held WRITE on X:
    (LockMode.WRITE, LockMode.READ, "self"): False,
    (LockMode.WRITE, LockMode.READ, "descendant"): False,
    (LockMode.WRITE, LockMode.READ, "ancestor"): True,
    (LockMode.WRITE, LockMode.READ, "unrelated"): True,
    (LockMode.WRITE, LockMode.WRITE, "self"): False,
    (LockMode.WRITE, LockMode.WRITE, "descendant"): False,
    (LockMode.WRITE, LockMode.WRITE, "ancestor"): True,
    (LockMode.WRITE, LockMode.WRITE, "unrelated"): True,
}


class LockConflictError(RuntimeError):
    """A lock request conflicted with a lock held by another user."""

    def __init__(
        self, user: str, object_id: str, mode: "LockMode", holder: str,
        held_object: str, held_mode: "LockMode",
    ) -> None:
        super().__init__(
            f"{user} cannot {mode.value}-lock {object_id!r}: {holder} holds "
            f"a {held_mode.value} lock on {held_object!r}"
        )
        self.user = user
        self.object_id = object_id
        self.mode = mode
        self.holder = holder
        self.held_object = held_object
        self.held_mode = held_mode


class ObjectTree:
    """The container hierarchy the locking rules quantify over."""

    def __init__(self, root: str = "root") -> None:
        self.root = root
        self._parent: dict[str, str] = {}
        self._children: dict[str, list[str]] = {root: []}

    def add(self, object_id: str, parent: str) -> None:
        """Insert ``object_id`` under ``parent`` (which must exist)."""
        if object_id in self._children:
            raise ValueError(f"object {object_id!r} already in the tree")
        if parent not in self._children:
            raise LookupError(f"unknown parent {parent!r}")
        self._parent[object_id] = parent
        self._children[parent].append(object_id)
        self._children[object_id] = []

    def remove(self, object_id: str) -> None:
        """Remove a leaf object from the tree."""
        if object_id == self.root:
            raise ValueError("cannot remove the root")
        if self._children.get(object_id):
            raise ValueError(f"object {object_id!r} still has children")
        parent = self._parent.pop(object_id)
        self._children[parent].remove(object_id)
        del self._children[object_id]

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._children

    def parent(self, object_id: str) -> str | None:
        return self._parent.get(object_id)

    def children(self, object_id: str) -> list[str]:
        return list(self._children.get(object_id, ()))

    def ancestors(self, object_id: str) -> Iterator[str]:
        """Ancestors from the immediate parent up to the root."""
        current = self._parent.get(object_id)
        while current is not None:
            yield current
            current = self._parent.get(current)

    def relation(self, held: str, requested: str) -> str:
        """Relation of ``requested`` to ``held``: self / descendant /
        ancestor / unrelated."""
        if held == requested:
            return "self"
        if held in set(self.ancestors(requested)):
            return "descendant"  # requested lies inside held's subtree
        if requested in set(self.ancestors(held)):
            return "ancestor"
        return "unrelated"


@dataclass(frozen=True, slots=True)
class HeldLock:
    user: str
    object_id: str
    mode: LockMode


@dataclass
class LockStats:
    acquired: int = 0
    conflicts: int = 0
    released: int = 0
    upgrades: int = 0
    by_user: dict[str, int] = field(default_factory=dict)


class LockManager:
    """Grants and releases hierarchical locks per the compatibility table."""

    def __init__(self, tree: ObjectTree) -> None:
        self.tree = tree
        self._locks: dict[str, dict[str, LockMode]] = {}  # object -> user -> mode
        self.stats = LockStats()

    # ------------------------------------------------------------------
    def try_acquire(self, user: str, object_id: str, mode: LockMode) -> bool:
        """Acquire if compatible; False (and a counted conflict) if not."""
        try:
            self.acquire(user, object_id, mode)
            return True
        except LockConflictError:
            return False

    def acquire(self, user: str, object_id: str, mode: LockMode) -> HeldLock:
        """Acquire or raise :class:`LockConflictError`.

        Reentrant per user; a READ holder may upgrade to WRITE when no
        other user's lock conflicts.
        """
        if object_id not in self.tree:
            raise LookupError(f"unknown object {object_id!r}")
        conflict = self._find_conflict(user, object_id, mode)
        if conflict is not None:
            self.stats.conflicts += 1
            held_object, holder, held_mode = conflict
            raise LockConflictError(
                user, object_id, mode, holder, held_object, held_mode
            )
        holders = self._locks.setdefault(object_id, {})
        previous = holders.get(user)
        if previous is LockMode.READ and mode is LockMode.WRITE:
            self.stats.upgrades += 1
        holders[user] = self._stronger(previous, mode)
        self.stats.acquired += 1
        self.stats.by_user[user] = self.stats.by_user.get(user, 0) + 1
        return HeldLock(user, object_id, holders[user])

    def release(self, user: str, object_id: str) -> bool:
        """Release ``user``'s lock on ``object_id``; False if not held."""
        holders = self._locks.get(object_id)
        if not holders or user not in holders:
            return False
        del holders[user]
        if not holders:
            del self._locks[object_id]
        self.stats.released += 1
        return True

    def release_all(self, user: str) -> int:
        """Release every lock ``user`` holds; returns the count."""
        count = 0
        for object_id in [o for o, h in self._locks.items() if user in h]:
            if self.release(user, object_id):
                count += 1
        return count

    # ------------------------------------------------------------------
    def _find_conflict(
        self, user: str, object_id: str, mode: LockMode
    ) -> tuple[str, str, LockMode] | None:
        """First (held_object, holder, held_mode) that denies the request."""
        for held_object, holders in self._locks.items():
            relation = self.tree.relation(held_object, object_id)
            for holder, held_mode in holders.items():
                if holder == user:
                    continue
                if not COMPATIBILITY[(held_mode, mode, relation)]:
                    return (held_object, holder, held_mode)
        return None

    def can_acquire(self, user: str, object_id: str, mode: LockMode) -> bool:
        """Check without acquiring (no conflict counted)."""
        if object_id not in self.tree:
            raise LookupError(f"unknown object {object_id!r}")
        return self._find_conflict(user, object_id, mode) is None

    # ------------------------------------------------------------------
    def holders(self, object_id: str) -> dict[str, LockMode]:
        return dict(self._locks.get(object_id, {}))

    def locks_of(self, user: str) -> list[HeldLock]:
        return [
            HeldLock(user, object_id, holders[user])
            for object_id, holders in self._locks.items()
            if user in holders
        ]

    @staticmethod
    def _stronger(a: LockMode | None, b: LockMode) -> LockMode:
        if a is LockMode.WRITE or b is LockMode.WRITE:
            return LockMode.WRITE
        return LockMode.READ
