"""The object-locking compatibility table for collaborative editing.

The paper (§3): "if a container has a read lock by a user, its
components (and itself) can have the read access by another user, but
not the write access.  However, the parent objects of the container can
have both read and write access by another user.  Of course, the
accesses are prohibited in the current container object [when write
locked].  Locking tables are implemented in the instructor workstation.
With the table, the system can control which instructor is changing a
Web document.  Therefore, collaborative work is feasible."

Semantics implemented (and exposed as an explicit compatibility matrix):

* ``READ`` on X by A  →  B may READ anywhere; B may WRITE only objects
  that are **not** in X's subtree (X itself included in the subtree).
  Ancestors of X remain fully writable.
* ``WRITE`` on X by A →  B may neither READ nor WRITE anything in X's
  subtree; ancestors of X remain fully accessible.
* Locks are reentrant for their owner, and an owner may upgrade
  READ→WRITE when no other holder conflicts.

Note a deliberate asymmetry inherited from the paper: the table is
*permissive upward* — because "the parent objects of the container can
have both read and write access by another user", a WRITE on an ancestor
may be granted while another user already holds a READ on a descendant.
A strict multiple-granularity protocol would use intention locks to
forbid that; the paper's table does not, and this implementation follows
the paper.

Objects live in an :class:`ObjectTree` (database → script →
implementation → files/annotations/test records), the container
hierarchy the compatibility rules quantify over.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field
from typing import Any, Iterator, Protocol

from repro.obs.instrument import OBS

__all__ = [
    "LockMode",
    "LockConflictError",
    "LockHierarchyError",
    "LockObserver",
    "ObjectTree",
    "HeldLock",
    "LockManager",
    "COMPATIBILITY",
]

#: Environment variable that opts every new LockManager into the dynamic
#: lock-order detector ("1"/"on" records findings; "strict" also raises
#: LockHierarchyError at the violating acquire).
DETECTOR_ENV_VAR = "REPRO_LOCK_DETECTOR"


class LockMode(enum.Enum):
    """Lock strength: shared READ or exclusive WRITE."""

    READ = "read"
    WRITE = "write"


#: The compatibility table, keyed by (held mode, requested mode,
#: relation of requested object to held object).  Relations: "self",
#: "descendant" (requested inside held subtree), "ancestor" (requested
#: above the held object), "unrelated".
COMPATIBILITY: dict[tuple[LockMode, LockMode, str], bool] = {
    # held READ on X:
    (LockMode.READ, LockMode.READ, "self"): True,
    (LockMode.READ, LockMode.READ, "descendant"): True,
    (LockMode.READ, LockMode.READ, "ancestor"): True,
    (LockMode.READ, LockMode.READ, "unrelated"): True,
    (LockMode.READ, LockMode.WRITE, "self"): False,
    (LockMode.READ, LockMode.WRITE, "descendant"): False,
    (LockMode.READ, LockMode.WRITE, "ancestor"): True,
    (LockMode.READ, LockMode.WRITE, "unrelated"): True,
    # held WRITE on X:
    (LockMode.WRITE, LockMode.READ, "self"): False,
    (LockMode.WRITE, LockMode.READ, "descendant"): False,
    (LockMode.WRITE, LockMode.READ, "ancestor"): True,
    (LockMode.WRITE, LockMode.READ, "unrelated"): True,
    (LockMode.WRITE, LockMode.WRITE, "self"): False,
    (LockMode.WRITE, LockMode.WRITE, "descendant"): False,
    (LockMode.WRITE, LockMode.WRITE, "ancestor"): True,
    (LockMode.WRITE, LockMode.WRITE, "unrelated"): True,
}


class LockConflictError(RuntimeError):
    """A lock request conflicted with a lock held by another user."""

    def __init__(
        self, user: str, object_id: str, mode: "LockMode", holder: str,
        held_object: str, held_mode: "LockMode",
    ) -> None:
        super().__init__(
            f"{user} cannot {mode.value}-lock {object_id!r}: {holder} holds "
            f"a {held_mode.value} lock on {held_object!r}"
        )
        self.user = user
        self.object_id = object_id
        self.mode = mode
        self.holder = holder
        self.held_object = held_object
        self.held_mode = held_mode


class LockHierarchyError(LockConflictError):
    """A session locked a child SCI before its ancestor.

    The paper's lock tables assume top-down acquisition (database →
    script → implementation → files); acquiring an ancestor *after* a
    descendant inverts that order and, combined with another session
    doing the opposite, deadlocks.  Raised by the dynamic lock-order
    detector in strict mode; typed (rather than a generic
    ``RuntimeError``) so callers can distinguish a protocol violation
    from an ordinary compatibility conflict.
    """

    def __init__(
        self, user: str, object_id: str, mode: "LockMode",
        held_descendant: str, held_mode: "LockMode",
    ) -> None:
        # Bypass LockConflictError.__init__: the message shape differs
        # (same session on both sides), but the attributes stay parallel.
        RuntimeError.__init__(
            self,
            f"lock-hierarchy violation: {user} acquired ancestor "
            f"{object_id!r} ({mode.value}) while already holding descendant "
            f"{held_descendant!r} ({held_mode.value}); acquire top-down",
        )
        self.user = user
        self.object_id = object_id
        self.mode = mode
        self.holder = user
        self.held_object = held_descendant
        self.held_mode = held_mode


class LockObserver(Protocol):
    """What the lock-order detector (or any tracer) implements."""

    def on_acquire(
        self, user: str, object_id: str, mode: "LockMode", *,
        already_held: bool,
    ) -> None: ...

    def on_release(self, user: str, object_id: str) -> None: ...


class ObjectTree:
    """The container hierarchy the locking rules quantify over."""

    def __init__(self, root: str = "root") -> None:
        self.root = root
        self._parent: dict[str, str] = {}
        self._children: dict[str, list[str]] = {root: []}

    def add(self, object_id: str, parent: str) -> None:
        """Insert ``object_id`` under ``parent`` (which must exist)."""
        if object_id in self._children:
            raise ValueError(f"object {object_id!r} already in the tree")
        if parent not in self._children:
            raise LookupError(f"unknown parent {parent!r}")
        self._parent[object_id] = parent
        self._children[parent].append(object_id)
        self._children[object_id] = []

    def remove(self, object_id: str) -> None:
        """Remove a leaf object from the tree."""
        if object_id == self.root:
            raise ValueError("cannot remove the root")
        if self._children.get(object_id):
            raise ValueError(f"object {object_id!r} still has children")
        parent = self._parent.pop(object_id)
        self._children[parent].remove(object_id)
        del self._children[object_id]

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._children

    def parent(self, object_id: str) -> str | None:
        return self._parent.get(object_id)

    def children(self, object_id: str) -> list[str]:
        return list(self._children.get(object_id, ()))

    def ancestors(self, object_id: str) -> Iterator[str]:
        """Ancestors from the immediate parent up to the root."""
        current = self._parent.get(object_id)
        while current is not None:
            yield current
            current = self._parent.get(current)

    def relation(self, held: str, requested: str) -> str:
        """Relation of ``requested`` to ``held``: self / descendant /
        ancestor / unrelated."""
        if held == requested:
            return "self"
        if held in set(self.ancestors(requested)):
            return "descendant"  # requested lies inside held's subtree
        if requested in set(self.ancestors(held)):
            return "ancestor"
        return "unrelated"


@dataclass(frozen=True, slots=True)
class HeldLock:
    user: str
    object_id: str
    mode: LockMode


@dataclass
class LockStats:
    acquired: int = 0
    conflicts: int = 0
    released: int = 0
    upgrades: int = 0
    by_user: dict[str, int] = field(default_factory=dict)


class LockManager:
    """Grants and releases hierarchical locks per the compatibility table."""

    def __init__(self, tree: ObjectTree) -> None:
        self.tree = tree
        self._locks: dict[str, dict[str, LockMode]] = {}  # object -> user -> mode
        self._held_order: dict[str, list[str]] = {}  # user -> objects, in
        # acquisition order (what the lock-order detector reasons over)
        self._observers: list[LockObserver] = []
        self.stats = LockStats()
        self._obs_cache: dict[str, Any] | None = None
        detector_mode = os.environ.get(DETECTOR_ENV_VAR, "").strip().lower()
        if detector_mode in {"1", "on", "true", "strict"}:
            # Imported lazily: core must not depend on the analysis
            # subsystem unless the detector was explicitly opted into.
            from repro.analysis.lockorder import attach_detector

            attach_detector(self, strict=detector_mode == "strict")

    # ------------------------------------------------------------------
    def add_observer(self, observer: LockObserver) -> None:
        """Attach a tracer notified on every grant and release."""
        if observer not in self._observers:
            self._observers.append(observer)

    def remove_observer(self, observer: LockObserver) -> None:
        if observer in self._observers:
            self._observers.remove(observer)

    # ------------------------------------------------------------------
    def try_acquire(self, user: str, object_id: str, mode: LockMode) -> bool:
        """Acquire if compatible; False (and a counted conflict) if not."""
        try:
            self.acquire(user, object_id, mode)
            return True
        except LockConflictError:
            return False

    def _obs(self) -> dict[str, Any]:
        registry = OBS.registry
        cache = self._obs_cache
        if cache is None or cache["registry"] is not registry:
            assert registry is not None
            cache = self._obs_cache = {
                "registry": registry,
                "acquired": registry.counter("lock.acquired"),
                "conflicts": registry.counter("lock.conflicts"),
                "released": registry.counter("lock.released"),
                "upgrades": registry.counter("lock.upgrades"),
                "acquire_seconds": registry.histogram("lock.acquire_seconds"),
            }
        return cache

    def acquire(self, user: str, object_id: str, mode: LockMode) -> HeldLock:
        """Acquire or raise :class:`LockConflictError`.

        Reentrant per user; a READ holder may upgrade to WRITE when no
        other user's lock conflicts.
        """
        if not OBS.enabled:
            return self._acquire(user, object_id, mode)
        handles = self._obs()
        upgrades_before = self.stats.upgrades
        start = OBS.clock()
        try:
            held = self._acquire(user, object_id, mode)
        except LockConflictError:
            handles["conflicts"].inc()
            raise
        finally:
            handles["acquire_seconds"].observe(OBS.clock() - start)
        handles["acquired"].inc()
        if self.stats.upgrades != upgrades_before:
            handles["upgrades"].inc()
        return held

    def _acquire(self, user: str, object_id: str, mode: LockMode) -> HeldLock:
        if object_id not in self.tree:
            raise LookupError(f"unknown object {object_id!r}")
        conflict = self._find_conflict(user, object_id, mode)
        if conflict is not None:
            self.stats.conflicts += 1
            held_object, holder, held_mode = conflict
            raise LockConflictError(
                user, object_id, mode, holder, held_object, held_mode
            )
        previous = self._locks.get(object_id, {}).get(user)
        # Observers run before the grant: a strict lock-order detector
        # may veto (raise LockHierarchyError), leaving state untouched.
        for observer in list(self._observers):
            observer.on_acquire(
                user, object_id, mode, already_held=previous is not None
            )
        holders = self._locks.setdefault(object_id, {})
        if previous is LockMode.READ and mode is LockMode.WRITE:
            self.stats.upgrades += 1
        holders[user] = self._stronger(previous, mode)
        if previous is None:
            self._held_order.setdefault(user, []).append(object_id)
        self.stats.acquired += 1
        self.stats.by_user[user] = self.stats.by_user.get(user, 0) + 1
        return HeldLock(user, object_id, holders[user])

    def release(self, user: str, object_id: str) -> bool:
        """Release ``user``'s lock on ``object_id``; False if not held."""
        holders = self._locks.get(object_id)
        if not holders or user not in holders:
            return False
        del holders[user]
        if not holders:
            del self._locks[object_id]
        order = self._held_order.get(user)
        if order is not None:
            order.remove(object_id)
            if not order:
                del self._held_order[user]
        self.stats.released += 1
        if OBS.enabled:
            self._obs()["released"].inc()
        for observer in list(self._observers):
            observer.on_release(user, object_id)
        return True

    def release_all(self, user: str) -> int:
        """Release every lock ``user`` holds; returns the count."""
        count = 0
        for object_id in [o for o, h in self._locks.items() if user in h]:
            if self.release(user, object_id):
                count += 1
        return count

    # ------------------------------------------------------------------
    def _find_conflict(
        self, user: str, object_id: str, mode: LockMode
    ) -> tuple[str, str, LockMode] | None:
        """First (held_object, holder, held_mode) that denies the request."""
        for held_object, holders in self._locks.items():
            relation = self.tree.relation(held_object, object_id)
            for holder, held_mode in holders.items():
                if holder == user:
                    continue
                if not COMPATIBILITY[(held_mode, mode, relation)]:
                    return (held_object, holder, held_mode)
        return None

    def can_acquire(self, user: str, object_id: str, mode: LockMode) -> bool:
        """Check without acquiring (no conflict counted)."""
        if object_id not in self.tree:
            raise LookupError(f"unknown object {object_id!r}")
        return self._find_conflict(user, object_id, mode) is None

    # ------------------------------------------------------------------
    def holders(self, object_id: str) -> dict[str, LockMode]:
        return dict(self._locks.get(object_id, {}))

    def held_by(self, user: str) -> tuple[str, ...]:
        """Object ids ``user`` currently holds, in acquisition order.

        The lock-order detector reasons over this sequence; reentrant
        re-acquires and upgrades do not change a lock's position.
        """
        return tuple(self._held_order.get(user, ()))

    def locks_of(self, user: str) -> list[HeldLock]:
        return [
            HeldLock(user, object_id, holders[user])
            for object_id, holders in self._locks.items()
            if user in holders
        ]

    @staticmethod
    def _stronger(a: LockMode | None, b: LockMode) -> LockMode:
        if a is LockMode.WRITE or b is LockMode.WRITE:
            return LockMode.WRITE
        return LockMode.READ
