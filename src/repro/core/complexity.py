"""Course-complexity estimation.

The paper (§1) raises "how do we estimate the complexity of a course and
how do we perform a white box or black box testing of a multimedia
presentation" as "research issues that we have solved partially."  This
module supplies the estimation half: software-engineering-style metrics
over a course implementation's page graph.

* **Structural size** — pages, links, control programs, media count and
  bytes (the analogue of LOC).
* **Cyclomatic complexity** of the page graph, ``E - N + 2P`` with P the
  number of weakly-connected components — white-box traversal testing
  needs at least this many independent paths.
* **Depth** — the longest shortest-path from the start page, bounding a
  black-box traversal's click depth.
* **Media intensity** — bytes of multimedia per page, the bandwidth
  weight the distribution layer must move per unit of content.

The composite :attr:`CourseComplexity.score` is a documented weighted
sum, useful for ranking courses by authoring/testing effort; the weights
have no empirical basis beyond being monotone in every component.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.objects import ImplementationSCI
from repro.core.wddb import WebDocumentDatabase
from repro.qa.traversal import extract_links

__all__ = ["CourseComplexity", "measure_complexity"]


@dataclass(frozen=True, slots=True)
class CourseComplexity:
    """Metrics for one course implementation."""

    starting_url: str
    pages: int
    links: int
    programs: int
    media_objects: int
    media_bytes: int
    #: number of weakly-connected components of the page graph
    components: int
    cyclomatic: int
    depth: int
    unreachable_pages: int

    @property
    def media_intensity(self) -> float:
        """Multimedia bytes per page."""
        return self.media_bytes / self.pages if self.pages else 0.0

    @property
    def score(self) -> float:
        """Composite authoring/testing-effort score (monotone weights:
        cyclomatic paths dominate, then structure, then media count)."""
        return (
            5.0 * self.cyclomatic
            + 1.0 * self.pages
            + 0.5 * self.links
            + 2.0 * self.programs
            + 1.0 * self.media_objects
            + 3.0 * self.unreachable_pages  # dead content is test debt
        )


def measure_complexity(
    db: WebDocumentDatabase, impl: ImplementationSCI
) -> CourseComplexity:
    """Compute the metrics for ``impl`` from its stored pages."""
    page_paths = [fd.path for fd in impl.html_files]
    page_set = set(page_paths)
    edges: list[tuple[str, str]] = []
    for path in page_paths:
        if not db.files.exists(path):
            continue
        links = extract_links(db.files.read(path).content)
        for href in links.hrefs:
            if href in page_set:
                edges.append((path, href))

    components = _weakly_connected_components(page_set, edges)
    # Cyclomatic complexity E - N + 2P (per connected component the
    # classic E - N + 2; summed over components this is the formula).
    cyclomatic = len(edges) - len(page_set) + 2 * components

    depth, reachable = _bfs_depth(page_paths, edges)
    media_bytes = 0
    for digest in impl.multimedia:
        info = db.blob_info(digest)
        if info is not None:
            media_bytes += info["size_bytes"]

    return CourseComplexity(
        starting_url=impl.starting_url,
        pages=len(page_set),
        links=len(edges),
        programs=len(impl.program_files),
        media_objects=len(impl.multimedia),
        media_bytes=media_bytes,
        components=components,
        cyclomatic=max(cyclomatic, 0),
        depth=depth,
        unreachable_pages=len(page_set) - len(reachable),
    )


def _weakly_connected_components(
    nodes: set[str], edges: list[tuple[str, str]]
) -> int:
    parent: dict[str, str] = {node: node for node in nodes}

    def find(node: str) -> str:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    for a, b in edges:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_a] = root_b
    return len({find(node) for node in nodes})


def _bfs_depth(
    page_paths: list[str], edges: list[tuple[str, str]]
) -> tuple[int, set[str]]:
    """(max shortest-path depth from the start page, reachable set)."""
    if not page_paths:
        return 0, set()
    adjacency: dict[str, list[str]] = {}
    for a, b in edges:
        adjacency.setdefault(a, []).append(b)
    start = page_paths[0]
    depths = {start: 0}
    queue = [start]
    while queue:
        node = queue.pop(0)
        for neighbour in adjacency.get(node, ()):
            if neighbour not in depths:
                depths[neighbour] = depths[node] + 1
                queue.append(neighbour)
    return max(depths.values()), set(depths)
