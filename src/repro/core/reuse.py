"""Object reuse: document classes, instances and references.

The paper (§4): a Web document exists "in one of the following three
forms: Web Document class, Web Document instance, Web Document
reference to instance".

* Declaring a class from an instance moves the physical BLOBs into the
  class; the instance keeps its structure but holds *pointers* to the
  class's multimedia data.
* Instantiating a class copies the structure (the small HTML/program
  files are duplicated) and creates BLOB pointers — "the BLOBs are
  shared by different instances instantiated from the class".
* A reference is a broadcast mirror pointer to a remote instance.

The :class:`ReuseManager` operates over one station's
:class:`~repro.storage.blob.BlobStore` / :class:`~repro.storage.files.FileStore`,
so the E4 experiment can read the sharing factor straight off the store.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.blob import BlobKind, BlobStore
from repro.storage.files import DocumentFile, FileDescriptor, FileStore

__all__ = [
    "DocumentClass",
    "DocumentInstance",
    "DocumentReference",
    "ReuseManager",
]


@dataclass(slots=True)
class DocumentClass:
    """A reusable template declared from an instance.

    "The newly created class contains the structure of the document
    instance and all multimedia data, such as BLOBs."
    """

    class_id: str
    #: structural files (paths into the station FileStore)
    structure: list[FileDescriptor] = field(default_factory=list)
    #: the physical multimedia data the class owns
    blob_digests: list[str] = field(default_factory=list)
    instantiations: int = 0

    @property
    def owner_tag(self) -> str:
        return f"class:{self.class_id}"


@dataclass(slots=True)
class DocumentInstance:
    """A physical element of a Web document on some station."""

    instance_id: str
    station: str
    structure: list[FileDescriptor] = field(default_factory=list)
    #: BLOB digests; pointers into the class when ``from_class`` is set
    blob_digests: list[str] = field(default_factory=list)
    #: class this instance points at for its multimedia (None = it still
    #: owns its physical data, i.e. it was newly created)
    from_class: str | None = None

    @property
    def owner_tag(self) -> str:
        return f"instance:{self.instance_id}"

    @property
    def owns_physical_blobs(self) -> bool:
        return self.from_class is None


@dataclass(frozen=True, slots=True)
class DocumentReference:
    """A mirror pointer to an instance on another station."""

    instance_id: str
    instance_station: str


class ReuseManager:
    """Creates and converts the three document forms on one station."""

    def __init__(self, blobs: BlobStore, files: FileStore) -> None:
        self.blobs = blobs
        self.files = files
        self._classes: dict[str, DocumentClass] = {}
        self._instances: dict[str, DocumentInstance] = {}

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------
    def create_instance(
        self,
        instance_id: str,
        files: list[DocumentFile],
        media: list[tuple[str, int, BlobKind]],
    ) -> DocumentInstance:
        """A brand-new instance that owns its physical multimedia.

        ``media`` entries are (label, size_bytes, kind) synthetic BLOBs.
        """
        if instance_id in self._instances:
            raise ValueError(f"instance {instance_id!r} already exists")
        instance = DocumentInstance(
            instance_id=instance_id, station=self.files.station
        )
        for document_file in files:
            instance.structure.append(self.files.write(document_file))
        for label, size, kind in media:
            digest = self.blobs.put_synthetic(
                label, size, kind, owner=instance.owner_tag
            )
            instance.blob_digests.append(digest)
        self._instances[instance_id] = instance
        return instance

    def declare_class(self, instance_id: str, class_id: str) -> DocumentClass:
        """Declare a class from an instance (paper's promotion step).

        The class takes ownership of the physical BLOBs; the instance's
        digests become pointers to the class's data (in store terms the
        bytes were already shared by content addressing — ownership
        bookkeeping moves so the instance no longer pins the data).
        """
        if class_id in self._classes:
            raise ValueError(f"class {class_id!r} already exists")
        instance = self._instance(instance_id)
        cls = DocumentClass(
            class_id=class_id,
            structure=list(instance.structure),
            blob_digests=list(instance.blob_digests),
        )
        for digest in cls.blob_digests:
            self.blobs.acquire(digest, cls.owner_tag)
        # The original instance now points into the class.
        instance.from_class = class_id
        self._classes[class_id] = cls
        return cls

    def instantiate(
        self, class_id: str, instance_id: str, *, path_prefix: str | None = None
    ) -> DocumentInstance:
        """New instance from a class: structure copied, BLOBs pointed-to.

        "Structure of the document class is copied to the new document
        instance and pointers to multimedia data are created."  The
        small structural files are physically duplicated under a new
        path prefix (default ``<instance_id>/``).
        """
        cls = self._class(class_id)
        if instance_id in self._instances:
            raise ValueError(f"instance {instance_id!r} already exists")
        prefix = path_prefix if path_prefix is not None else f"{instance_id}/"
        instance = DocumentInstance(
            instance_id=instance_id,
            station=self.files.station,
            from_class=class_id,
        )
        for descriptor in cls.structure:
            source = self.files.read(descriptor.path)
            copy = DocumentFile(
                path=f"{prefix}{source.path}", kind=source.kind,
                content=source.content,
            )
            instance.structure.append(self.files.write(copy))
        for digest in cls.blob_digests:
            self.blobs.acquire(digest, instance.owner_tag)
            instance.blob_digests.append(digest)
        cls.instantiations += 1
        self._instances[instance_id] = instance
        return instance

    def make_reference(self, instance_id: str) -> DocumentReference:
        """A broadcastable mirror pointer to a local instance."""
        instance = self._instance(instance_id)
        return DocumentReference(
            instance_id=instance.instance_id, instance_station=instance.station
        )

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def drop_instance(self, instance_id: str) -> int:
        """Delete an instance; returns BLOB bytes actually reclaimed
        (zero while a class or sibling instance still shares them)."""
        instance = self._instance(instance_id)
        reclaimed = 0
        for digest in instance.blob_digests:
            size = self.blobs.get(digest).size
            if self.blobs.release(digest, instance.owner_tag):
                reclaimed += size
        for descriptor in instance.structure:
            self.files.delete(descriptor.path)
        del self._instances[instance_id]
        return reclaimed

    def drop_class(self, class_id: str) -> int:
        """Delete a class (refuses while instances point at it)."""
        cls = self._class(class_id)
        dependents = [
            i.instance_id
            for i in self._instances.values()
            if i.from_class == class_id
        ]
        if dependents:
            raise ValueError(
                f"class {class_id!r} still has instances: {dependents}"
            )
        reclaimed = 0
        for digest in cls.blob_digests:
            size = self.blobs.get(digest).size
            if self.blobs.release(digest, cls.owner_tag):
                reclaimed += size
        del self._classes[class_id]
        return reclaimed

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def instance(self, instance_id: str) -> DocumentInstance:
        return self._instance(instance_id)

    def document_class(self, class_id: str) -> DocumentClass:
        return self._class(class_id)

    def instances(self) -> list[DocumentInstance]:
        return list(self._instances.values())

    def classes(self) -> list[DocumentClass]:
        return list(self._classes.values())

    def sharing_report(self) -> dict[str, float | int]:
        """Sharing metrics for E4, read from the underlying BLOB store."""
        return {
            "classes": len(self._classes),
            "instances": len(self._instances),
            "physical_bytes": self.blobs.physical_bytes,
            "logical_bytes": self.blobs.logical_bytes,
            "sharing_factor": self.blobs.sharing_factor,
            "structure_bytes": self.files.total_bytes,
        }

    def _instance(self, instance_id: str) -> DocumentInstance:
        try:
            return self._instances[instance_id]
        except KeyError:
            raise LookupError(f"unknown instance {instance_id!r}") from None

    def _class(self, class_id: str) -> DocumentClass:
        try:
            return self._classes[class_id]
        except KeyError:
            raise LookupError(f"unknown class {class_id!r}") from None
