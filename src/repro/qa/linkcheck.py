"""Defect detection for the four bug-report categories.

The paper's bug-report schema enumerates exactly four defect classes:

* **Bad URLs** — "a number of URLs which can not be reached";
* **Missing objects** — "multimedia or HTML files missing from the
  implementation";
* **Inconsistency** — "a text description of inconsistency" (here: a
  registered file whose stored checksum no longer matches its content);
* **Redundant objects** — "a list of redundant files" (registered to
  the implementation but unreachable from its starting page).

:class:`LinkChecker` derives all four from a traversal result plus the
implementation's registrations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.objects import ImplementationSCI
from repro.core.wddb import WebDocumentDatabase
from repro.qa.traversal import TraversalResult

__all__ = ["FindingKind", "Finding", "LinkChecker"]


class FindingKind(enum.Enum):
    """The four defect classes of the paper's bug-report schema."""

    BAD_URL = "bad_url"
    MISSING_OBJECT = "missing_object"
    INCONSISTENCY = "inconsistency"
    REDUNDANT_OBJECT = "redundant_object"


@dataclass(frozen=True, slots=True)
class Finding:
    """One detected defect."""

    kind: FindingKind
    subject: str
    detail: str


class LinkChecker:
    """Runs the four defect checks over one implementation."""

    def __init__(self, db: WebDocumentDatabase) -> None:
        self.db = db

    def check(
        self, impl: ImplementationSCI, traversal: TraversalResult
    ) -> list[Finding]:
        findings: list[Finding] = []
        findings.extend(self._bad_urls(traversal))
        findings.extend(self._missing_objects(impl, traversal))
        findings.extend(self._inconsistencies(impl))
        findings.extend(self._redundant_objects(impl, traversal))
        return findings

    # ------------------------------------------------------------------
    def _bad_urls(self, traversal: TraversalResult) -> list[Finding]:
        return [
            Finding(
                FindingKind.BAD_URL,
                url,
                "link target could not be reached during traversal",
            )
            for url in sorted(set(traversal.unreachable))
        ]

    def _missing_objects(
        self, impl: ImplementationSCI, traversal: TraversalResult
    ) -> list[Finding]:
        """Referenced multimedia/programs that are nowhere to be found."""
        findings: list[Finding] = []
        registered_blobs = {
            (self.db.blob_info(d) or {}).get("label") for d in impl.multimedia
        }
        for resource in sorted(traversal.referenced_resources):
            if resource not in registered_blobs and not self.db.files.exists(
                resource
            ):
                findings.append(
                    Finding(
                        FindingKind.MISSING_OBJECT,
                        resource,
                        "multimedia resource referenced but not registered "
                        "to the implementation",
                    )
                )
        program_paths = {fd.path for fd in impl.program_files}
        for program in sorted(traversal.referenced_programs):
            if program not in program_paths and not self.db.files.exists(program):
                findings.append(
                    Finding(
                        FindingKind.MISSING_OBJECT,
                        program,
                        "control program referenced but not registered",
                    )
                )
        return findings

    def _inconsistencies(self, impl: ImplementationSCI) -> list[Finding]:
        """Registered checksum no longer matches the stored content."""
        findings: list[Finding] = []
        for table, descriptors in (
            ("html_files", impl.html_files),
            ("program_files", impl.program_files),
        ):
            for descriptor in descriptors:
                row = self.db.engine.get(table, descriptor.path)
                if row is None:
                    findings.append(
                        Finding(
                            FindingKind.MISSING_OBJECT,
                            descriptor.path,
                            f"file is listed by the implementation but "
                            f"absent from the {table} registry",
                        )
                    )
                    continue
                if not self.db.files.exists(descriptor.path):
                    findings.append(
                        Finding(
                            FindingKind.MISSING_OBJECT,
                            descriptor.path,
                            "file registered but missing from the store",
                        )
                    )
                    continue
                actual = self.db.files.read(descriptor.path).checksum
                if actual != row["checksum"]:
                    findings.append(
                        Finding(
                            FindingKind.INCONSISTENCY,
                            descriptor.path,
                            f"stored checksum {actual} != registered "
                            f"{row['checksum']} (file changed without a "
                            "registry update)",
                        )
                    )
        return findings

    def _redundant_objects(
        self, impl: ImplementationSCI, traversal: TraversalResult
    ) -> list[Finding]:
        """Registered pages never reached from the starting page."""
        visited = set(traversal.visited_pages)
        return [
            Finding(
                FindingKind.REDUNDANT_OBJECT,
                descriptor.path,
                "registered HTML file unreachable from the starting URL",
            )
            for descriptor in impl.html_files
            if descriptor.path not in visited
        ]
