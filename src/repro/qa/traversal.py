"""Web document traversal testing.

A Web document implementation is a graph: HTML files linking to each
other (``href``), embedding multimedia (``src``) and invoking control
programs (``applet``/``code``).  The traverser walks that graph from the
starting URL breadth-first, recording the "windowing messages which
control a Web document traversal" the paper's test records store —
here, a message per page open, link follow and resource load.

Scope (paper: "Testing scope: local or global"): LOCAL traversal stays
within the implementation's own files; GLOBAL additionally follows
links that leave it (other documents, external URLs).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core.objects import ImplementationSCI, TestScope
from repro.storage.files import FileStore

__all__ = ["extract_links", "PageLinks", "TraversalResult", "WebTraverser"]

_HREF_RE = re.compile(r"""href\s*=\s*["']([^"']+)["']""", re.IGNORECASE)
_SRC_RE = re.compile(r"""src\s*=\s*["']([^"']+)["']""", re.IGNORECASE)
_CODE_RE = re.compile(r"""code\s*=\s*["']([^"']+)["']""", re.IGNORECASE)


@dataclass(frozen=True, slots=True)
class PageLinks:
    """Outbound references of one HTML page."""

    hrefs: tuple[str, ...]
    resources: tuple[str, ...]  # src= targets (multimedia)
    programs: tuple[str, ...]  # code= targets (applets/controls)


def extract_links(html: str) -> PageLinks:
    """Parse the three reference kinds out of (simplified) HTML.

    >>> links = extract_links('<a href="p2.html"><img src="x.gif">')
    >>> links.hrefs, links.resources
    (('p2.html',), ('x.gif',))
    """
    return PageLinks(
        hrefs=tuple(_HREF_RE.findall(html)),
        resources=tuple(_SRC_RE.findall(html)),
        programs=tuple(_CODE_RE.findall(html)),
    )


@dataclass
class TraversalResult:
    """What one traversal saw."""

    starting_url: str
    scope: TestScope
    messages: list[str] = field(default_factory=list)
    visited_pages: list[str] = field(default_factory=list)
    referenced_resources: set[str] = field(default_factory=set)
    referenced_programs: set[str] = field(default_factory=set)
    #: href targets that could not be resolved to a page
    unreachable: list[str] = field(default_factory=list)
    #: href targets skipped because they leave the implementation (LOCAL)
    external_skipped: list[str] = field(default_factory=list)

    @property
    def pages_opened(self) -> int:
        return len(self.visited_pages)


class WebTraverser:
    """Breadth-first traversal of an implementation's page graph."""

    def __init__(self, files: FileStore) -> None:
        self.files = files

    def traverse(
        self,
        impl: ImplementationSCI,
        scope: TestScope = TestScope.LOCAL,
        *,
        known_external: set[str] | None = None,
    ) -> TraversalResult:
        """Walk from the implementation's first HTML file.

        ``known_external`` lists pages outside this implementation that
        GLOBAL traversal may legitimately reach (other documents in the
        database); anything else off-implementation is recorded as
        unreachable in GLOBAL scope or skipped in LOCAL scope.
        """
        own_pages = {fd.path for fd in impl.html_files}
        known_external = known_external or set()
        result = TraversalResult(
            starting_url=impl.starting_url, scope=scope
        )
        if not impl.html_files:
            result.messages.append("OPEN_FAILED no html files")
            return result
        start = impl.html_files[0].path
        queue = [start]
        seen = {start}
        while queue:
            path = queue.pop(0)
            if not self.files.exists(path):
                result.messages.append(f"OPEN_FAILED {path}")
                result.unreachable.append(path)
                continue
            result.messages.append(f"OPEN_PAGE {path}")
            result.visited_pages.append(path)
            links = extract_links(self.files.read(path).content)
            for resource in links.resources:
                result.messages.append(f"LOAD_RESOURCE {resource}")
                result.referenced_resources.add(resource)
            for program in links.programs:
                result.messages.append(f"LOAD_PROGRAM {program}")
                result.referenced_programs.add(program)
            for href in links.hrefs:
                result.messages.append(f"FOLLOW_LINK {path} -> {href}")
                if href in seen:
                    continue
                if href in own_pages:
                    seen.add(href)
                    queue.append(href)
                    continue
                is_relative = "://" not in href
                if is_relative and href not in known_external:
                    # A relative link to a page no document provides is a
                    # dead link regardless of scope.
                    seen.add(href)
                    result.unreachable.append(href)
                    result.messages.append(f"BAD_URL {href}")
                elif scope is TestScope.GLOBAL:
                    if href in known_external and self.files.exists(href):
                        result.messages.append(f"CROSS_DOCUMENT {href}")
                        seen.add(href)
                        # Global scope opens but does not re-walk foreign
                        # documents (their own test records cover them).
                        result.visited_pages.append(href)
                    else:
                        seen.add(href)
                        result.unreachable.append(href)
                        result.messages.append(f"BAD_URL {href}")
                else:
                    result.external_skipped.append(href)
                    result.messages.append(f"SKIP_EXTERNAL {href}")
        return result
