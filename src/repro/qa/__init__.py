"""The testing subsystem behind the TestRecord / BugReport tables.

The paper frames course development as software engineering — "how do
we perform a white box or black box testing of a multimedia
presentation" — and its schema reserves test records (with "Web
traversal messages") and bug reports (bad URLs, missing objects,
inconsistency, redundant objects).  This package supplies the tooling:

* :mod:`repro.qa.traversal` — walks a Web document from its starting
  URL, emitting the windowing/traversal messages a test record stores;
  local scope stays inside one implementation, global follows
  cross-document links.
* :mod:`repro.qa.linkcheck` — detects the four defect classes of the
  bug-report schema.
* :mod:`repro.qa.reports` — runs a full QA pass and files the test
  record and bug report into the Web document database.
"""

from repro.qa.traversal import TraversalResult, WebTraverser, extract_links
from repro.qa.linkcheck import Finding, FindingKind, LinkChecker
from repro.qa.reports import QARunner
from repro.qa.testplan import TestPath, TestPlan, build_test_plan, verify_plan

__all__ = [
    "TestPath",
    "TestPlan",
    "build_test_plan",
    "verify_plan",
    "TraversalResult",
    "WebTraverser",
    "extract_links",
    "Finding",
    "FindingKind",
    "LinkChecker",
    "QARunner",
]
