"""White-box test planning for Web documents.

The paper (§1) asks "how do we perform a white box or black box testing
of a multimedia presentation".  The traversal tester
(:mod:`repro.qa.traversal`) is the black-box half — follow what a
student can click.  This module is the white-box half: from the page
graph it derives a **path coverage plan**, a minimal-ish set of
click-paths from the starting page that together cover every reachable
link (edge coverage — the graph analogue of branch coverage), sized in
line with the graph's cyclomatic complexity.

The plan's paths convert directly into traversal-message scripts, and
:func:`verify_plan` replays them against the file store to confirm each
step is still clickable — a regression suite for the course.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.objects import ImplementationSCI
from repro.qa.traversal import extract_links
from repro.storage.files import FileStore

__all__ = ["TestPath", "TestPlan", "build_test_plan", "verify_plan"]


@dataclass(frozen=True, slots=True)
class TestPath:
    """One click-path from the starting page."""

    pages: tuple[str, ...]

    @property
    def edges(self) -> tuple[tuple[str, str], ...]:
        return tuple(zip(self.pages, self.pages[1:]))

    def as_messages(self) -> list[str]:
        """The traversal-message script this path corresponds to."""
        out = [f"OPEN_PAGE {self.pages[0]}"]
        for src, dst in self.edges:
            out.append(f"FOLLOW_LINK {src} -> {dst}")
            out.append(f"OPEN_PAGE {dst}")
        return out

    def __len__(self) -> int:
        return len(self.pages)


@dataclass(frozen=True, slots=True)
class TestPlan:
    """An edge-covering set of click-paths for one implementation."""

    starting_url: str
    paths: tuple[TestPath, ...]
    covered_edges: frozenset[tuple[str, str]]
    #: edges out of unreachable pages, which no click-path can exercise
    uncoverable_edges: frozenset[tuple[str, str]]

    @property
    def total_clicks(self) -> int:
        return sum(len(path.edges) for path in self.paths)

    @property
    def coverage(self) -> float:
        total = len(self.covered_edges) + len(self.uncoverable_edges)
        return len(self.covered_edges) / total if total else 1.0


def _page_graph(
    files: FileStore, impl: ImplementationSCI
) -> tuple[list[str], dict[str, list[str]]]:
    pages = [fd.path for fd in impl.html_files]
    page_set = set(pages)
    adjacency: dict[str, list[str]] = {page: [] for page in pages}
    for page in pages:
        if not files.exists(page):
            continue
        for href in extract_links(files.read(page).content).hrefs:
            if href in page_set and href not in adjacency[page]:
                adjacency[page].append(href)
    return pages, adjacency


def build_test_plan(files: FileStore, impl: ImplementationSCI) -> TestPlan:
    """Greedy edge-covering paths from the starting page.

    Repeatedly walks from the start, preferring unvisited edges; each
    walk ends when the current page has no uncovered outgoing edge and
    revisiting cannot be extended without a cycle over covered ground.
    Terminates because every walk covers at least one new edge.
    """
    if not impl.html_files:
        return TestPlan(
            starting_url=impl.starting_url,
            paths=(),
            covered_edges=frozenset(),
            uncoverable_edges=frozenset(),
        )
    pages, adjacency = _page_graph(files, impl)
    start = pages[0]
    all_edges = {
        (src, dst) for src, targets in adjacency.items() for dst in targets
    }
    # Which pages can a click-path reach at all?
    reachable = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for neighbour in adjacency[node]:
            if neighbour not in reachable:
                reachable.add(neighbour)
                frontier.append(neighbour)
    coverable = {(a, b) for (a, b) in all_edges if a in reachable}
    uncoverable = all_edges - coverable

    covered: set[tuple[str, str]] = set()
    paths: list[TestPath] = []
    while covered != coverable:
        walk = [start]
        progressed = False
        current = start
        # Bound each walk to avoid pathological loops; the bound is
        # generous (every edge twice).
        for _ in range(2 * len(coverable) + 1):
            next_edge = None
            for neighbour in adjacency[current]:
                if (current, neighbour) not in covered:
                    next_edge = (current, neighbour)
                    break
            if next_edge is None:
                # move toward the nearest uncovered edge through covered
                # ground (BFS), or stop if none is reachable from here
                step = _step_toward_uncovered(
                    adjacency, current, coverable - covered
                )
                if step is None:
                    break
                walk.append(step)
                current = step
                continue
            covered.add(next_edge)
            progressed = True
            walk.append(next_edge[1])
            current = next_edge[1]
        if not progressed:
            break  # remaining edges unreachable from start (defensive)
        paths.append(TestPath(pages=tuple(walk)))
    if not paths:
        paths.append(TestPath(pages=(start,)))
    return TestPlan(
        starting_url=impl.starting_url,
        paths=tuple(paths),
        covered_edges=frozenset(covered),
        uncoverable_edges=frozenset(uncoverable),
    )


def _step_toward_uncovered(
    adjacency: dict[str, list[str]],
    current: str,
    remaining: set[tuple[str, str]],
) -> str | None:
    """First hop of the shortest path to any page with an uncovered
    outgoing edge; None when no such page is reachable."""
    targets = {src for src, _dst in remaining}
    if current in targets:
        return None  # caller will pick the uncovered edge directly
    queue = [(current, None)]
    seen = {current}
    parents: dict[str, str] = {}
    while queue:
        node, _ = queue.pop(0)
        for neighbour in adjacency[node]:
            if neighbour in seen:
                continue
            seen.add(neighbour)
            parents[neighbour] = node
            if neighbour in targets:
                # walk back to find the first hop
                hop = neighbour
                while parents.get(hop) != current:
                    hop = parents[hop]
                return hop
            queue.append((neighbour, node))
    return None


def verify_plan(files: FileStore, plan: TestPlan) -> list[str]:
    """Replay a plan against the store; returns failure descriptions.

    A step fails when its source page is missing or no longer links to
    the destination — the regression the plan exists to catch.
    """
    failures: list[str] = []
    for index, path in enumerate(plan.paths):
        for src, dst in path.edges:
            if not files.exists(src):
                failures.append(f"path {index}: page {src!r} missing")
                continue
            hrefs = extract_links(files.read(src).content).hrefs
            if dst not in hrefs:
                failures.append(
                    f"path {index}: {src!r} no longer links to {dst!r}"
                )
            elif not files.exists(dst):
                failures.append(
                    f"path {index}: link target {dst!r} missing"
                )
    return failures
