"""End-to-end QA runs: traverse, check, file the records.

:class:`QARunner` is the QA engineer's tool: it traverses an
implementation, runs the link checker, then writes the
:class:`~repro.core.objects.TestRecordSCI` (with the traversal's
windowing messages) and — when defects were found — the
:class:`~repro.core.objects.BugReportSCI` into the database, exactly
the object chain the paper's document layer stores.
"""

from __future__ import annotations

import datetime as _dt
import itertools
from dataclasses import dataclass

from repro.core.objects import BugReportSCI, TestRecordSCI, TestScope
from repro.core.wddb import WebDocumentDatabase
from repro.qa.linkcheck import Finding, FindingKind, LinkChecker
from repro.qa.traversal import TraversalResult, WebTraverser

__all__ = ["QAOutcome", "QARunner"]


@dataclass(frozen=True, slots=True)
class QAOutcome:
    """Everything one QA pass produced."""

    test_record: TestRecordSCI
    bug_report: BugReportSCI | None
    traversal: TraversalResult
    findings: tuple[Finding, ...]

    @property
    def passed(self) -> bool:
        return self.bug_report is None


class QARunner:
    """Runs QA passes and files their records into the database."""

    def __init__(self, db: WebDocumentDatabase, qa_engineer: str) -> None:
        self.db = db
        self.qa_engineer = qa_engineer
        self.traverser = WebTraverser(db.files)
        self.checker = LinkChecker(db)
        self._seq = itertools.count(1)

    def run(
        self,
        starting_url: str,
        scope: TestScope = TestScope.LOCAL,
        *,
        created_at: _dt.datetime | None = None,
    ) -> QAOutcome:
        """QA one implementation; files a test record (+ bug report)."""
        impl = self.db.implementation(starting_url)
        if impl is None:
            raise LookupError(f"unknown implementation {starting_url!r}")
        known_external = {
            row["path"]
            for row in self.db.engine.select("html_files")
            if row["starting_url"] != starting_url
        }
        traversal = self.traverser.traverse(
            impl, scope, known_external=known_external
        )
        findings = tuple(self.checker.check(impl, traversal))
        stamp = created_at or _dt.datetime(1999, 1, 1)
        seq = next(self._seq)
        record = TestRecordSCI(
            test_record_name=f"tr-{impl.script_name}-{seq}",
            script_name=impl.script_name,
            starting_url=starting_url,
            scope=scope,
            traversal_messages=list(traversal.messages),
            created_at=stamp,
            passed=not findings,
        )
        self.db.add_test_record(record)
        bug_report: BugReportSCI | None = None
        if findings:
            bug_report = BugReportSCI(
                bug_report_name=f"bug-{impl.script_name}-{seq}",
                test_record_name=record.test_record_name,
                qa_engineer=self.qa_engineer,
                test_procedure=(
                    f"{scope.value} traversal from {starting_url} "
                    f"({traversal.pages_opened} pages opened)"
                ),
                bug_description=self._describe(findings),
                bad_urls=self._subjects(findings, FindingKind.BAD_URL),
                missing_objects=self._subjects(
                    findings, FindingKind.MISSING_OBJECT
                ),
                inconsistency="; ".join(
                    f.detail
                    for f in findings
                    if f.kind is FindingKind.INCONSISTENCY
                ),
                redundant_objects=self._subjects(
                    findings, FindingKind.REDUNDANT_OBJECT
                ),
                created_at=stamp,
            )
            self.db.add_bug_report(bug_report)
        return QAOutcome(
            test_record=record,
            bug_report=bug_report,
            traversal=traversal,
            findings=findings,
        )

    def run_plan(
        self,
        starting_url: str,
        *,
        created_at: _dt.datetime | None = None,
    ) -> QAOutcome:
        """White-box pass: build the edge-coverage plan, replay it, file
        the record (paper's "white box ... testing" half).

        The test record stores the plan's click-scripts as its traversal
        messages; failures (vanished pages / removed links) become a
        bug report with the broken targets as bad URLs.
        """
        from repro.qa.testplan import build_test_plan, verify_plan

        impl = self.db.implementation(starting_url)
        if impl is None:
            raise LookupError(f"unknown implementation {starting_url!r}")
        plan = build_test_plan(self.db.files, impl)
        failures = verify_plan(self.db.files, plan)
        stamp = created_at or _dt.datetime(1999, 1, 1)
        seq = next(self._seq)
        messages: list[str] = [
            f"PLAN coverage={plan.coverage:.2f} paths={len(plan.paths)}"
        ]
        for path in plan.paths:
            messages.extend(path.as_messages())
        record = TestRecordSCI(
            test_record_name=f"tr-{impl.script_name}-wb{seq}",
            script_name=impl.script_name,
            starting_url=starting_url,
            scope=TestScope.LOCAL,
            traversal_messages=messages,
            created_at=stamp,
            passed=not failures,
        )
        self.db.add_test_record(record)
        bug_report: BugReportSCI | None = None
        if failures:
            bug_report = BugReportSCI(
                bug_report_name=f"bug-{impl.script_name}-wb{seq}",
                test_record_name=record.test_record_name,
                qa_engineer=self.qa_engineer,
                test_procedure=(
                    f"white-box plan replay, {plan.total_clicks} clicks "
                    f"over {len(plan.paths)} paths"
                ),
                bug_description=f"{len(failures)} plan step(s) failed",
                bad_urls=failures,
                created_at=stamp,
            )
            self.db.add_bug_report(bug_report)
        traversal = TraversalResult(
            starting_url=starting_url, scope=TestScope.LOCAL,
            messages=messages,
        )
        return QAOutcome(
            test_record=record,
            bug_report=bug_report,
            traversal=traversal,
            findings=(),
        )

    @staticmethod
    def _subjects(findings: tuple[Finding, ...], kind: FindingKind) -> list[str]:
        return [f.subject for f in findings if f.kind is kind]

    @staticmethod
    def _describe(findings: tuple[Finding, ...]) -> str:
        counts: dict[str, int] = {}
        for finding in findings:
            counts[finding.kind.value] = counts.get(finding.kind.value, 0) + 1
        return ", ".join(f"{n} {kind}" for kind, n in sorted(counts.items()))
