"""Recovery: redelivering interrupted broadcasts, rejoining crashed stations.

Two recovery paths, matching the two kinds of state a crash loses:

* **Lecture payload** (the BLOB pre-broadcast): after the tree is
  repaired, :class:`RedeliveryService` finds every surviving station
  still missing chunks and re-feeds it directly from the nearest
  *complete* ancestor in the repaired tree (falling back to the root,
  which always holds the instance).  Redelivery traffic is targeted —
  it is not forwarded on — so the redundant bytes E14 measures are
  exactly the chunks the healer chose to re-send; a retry policy
  re-checks with backoff in case redelivery itself hits a lossy link.

* **Document-layer metadata** (the replicated relational rows): a
  station that crashed and restarted rebuilds its local engine from its
  WAL snapshot + journal (:meth:`repro.rdb.Database.recover`) and then
  asks the master for a :meth:`~repro.distribution.syncdb.MetadataReplicator.repair`
  batch — the catch-up delta covering everything committed while it was
  dark.  :class:`RecoveryManager.rejoin` drives the whole sequence and
  re-enters the station into the broadcast vector at the tail (the
  paper's linear join order).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.distribution.broadcast import PreBroadcaster
from repro.distribution.mtree import MAryTree
from repro.distribution.syncdb import MetadataReplicator
from repro.distribution.vector import BroadcastVector
from repro.fault.policy import RetryPolicy
from repro.net.transport import Network
from repro.obs.instrument import OBS
from repro.rdb import Database, Schema

__all__ = ["RedeliveryReport", "RedeliveryService", "RejoinReport",
           "RecoveryManager"]


@dataclass
class RedeliveryReport:
    """Outcome of healing one interrupted broadcast."""

    lecture_id: str
    started_at: float
    #: stations that were missing chunks when redelivery began
    stations_healed: list[str] = field(default_factory=list)
    #: redundant wire traffic spent on redelivery
    bytes_redelivered: int = 0
    chunks_redelivered: int = 0
    #: station -> chunks re-sent to it (health reporting)
    chunks_by_station: dict[str, int] = field(default_factory=dict)
    #: extra policy-driven redelivery rounds that found stragglers
    retry_rounds: int = 0


class RedeliveryService:
    """Heals an interrupted pre-broadcast over a repaired tree."""

    def __init__(
        self,
        broadcaster: PreBroadcaster,
        *,
        policy: RetryPolicy | None = None,
    ) -> None:
        self.broadcaster = broadcaster
        self.network: Network = broadcaster.network
        self.policy = policy if policy is not None else RetryPolicy()
        self.reports: list[RedeliveryReport] = []

    def redeliver(
        self,
        lecture_id: str,
        tree: MAryTree,
        *,
        deadline: float | None = None,
    ) -> RedeliveryReport:
        """Re-feed every surviving member of ``tree`` missing chunks.

        ``tree`` is the repaired tree (crashed stations already
        removed).  Also retargets the broadcaster's forwarding onto it,
        so both redelivered and still-in-flight chunks flow around the
        dead stations.  Run the simulator afterwards; the report's
        counters are final once the network quiesces.

        ``deadline`` (absolute, simulated seconds) bounds the retry
        rounds: once a recheck's backoff wait would cross it, healing
        stops instead of retrying forever — the caller's deadline, not
        a fixed attempt count, decides when to give up.
        """
        self.broadcaster.retarget(lecture_id, tree)
        report = RedeliveryReport(
            lecture_id=lecture_id, started_at=self.network.sim.now
        )
        self.reports.append(report)
        self._heal_round(lecture_id, tree, report, attempt=None)
        if self.policy.allows(0, now=self.network.sim.now, deadline=deadline):
            self.network.sim.schedule(
                self.policy.timeout_for(0),
                self._recheck, lecture_id, tree, report, 0, deadline,
            )
        return report

    # ------------------------------------------------------------------
    def _heal_round(
        self,
        lecture_id: str,
        tree: MAryTree,
        report: RedeliveryReport,
        attempt: int | None,
    ) -> bool:
        """One pass over the tree; True if any station needed chunks."""
        found = False
        for position in range(1, tree.n + 1):
            name = tree.name_of(position)
            if self.network.is_down(name):
                continue
            missing = self.broadcaster.missing_chunks(name, lecture_id)
            if not missing:
                continue
            found = True
            source = self._nearest_complete_ancestor(lecture_id, tree, position)
            sent = self.broadcaster.resend_chunks(
                source, name, lecture_id, missing
            )
            report.bytes_redelivered += sent
            report.chunks_redelivered += len(missing)
            if OBS.enabled:
                OBS.registry.counter("fault.redeliveries").inc()
                OBS.registry.counter(
                    "fault.chunks_redelivered"
                ).inc(len(missing))
            report.chunks_by_station[name] = (
                report.chunks_by_station.get(name, 0) + len(missing)
            )
            if attempt is None and name not in report.stations_healed:
                report.stations_healed.append(name)
        return found

    def _recheck(
        self,
        lecture_id: str,
        tree: MAryTree,
        report: RedeliveryReport,
        attempt: int,
        deadline: float | None = None,
    ) -> None:
        """Policy-paced re-send for stations still incomplete."""
        found = self._heal_round(lecture_id, tree, report, attempt=attempt)
        if not found:
            return
        report.retry_rounds += 1
        if self.policy.allows(
            attempt + 1, now=self.network.sim.now, deadline=deadline
        ):
            self.network.sim.schedule(
                self.policy.timeout_for(attempt + 1),
                self._recheck, lecture_id, tree, report, attempt + 1, deadline,
            )

    def _nearest_complete_ancestor(
        self, lecture_id: str, tree: MAryTree, position: int
    ) -> str:
        """The closest up-tree station already holding the full lecture.

        The root qualifies by construction (the instructor station is
        where the broadcast started), so the walk always terminates.
        """
        for ancestor in tree.path_to_root(position)[1:]:
            name = tree.name_of(ancestor)
            if (not self.network.is_down(name)
                    and self.broadcaster.is_complete(name, lecture_id)):
                return name
        return tree.name_of(1)


# ---------------------------------------------------------------------------
# Crashed-station rejoin
# ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class RejoinReport:
    """Outcome of one station rejoin."""

    station: str
    rejoined_at: float
    #: 1-based position re-assigned in the broadcast vector
    position: int
    #: rows restored locally from the WAL snapshot + journal replay
    restored_rows: int
    #: operations in the syncdb catch-up delta shipped by the master
    delta_ops: int


class RecoveryManager:
    """Brings a crashed-and-restarted station back into the database.

    Wires together the three layers a rejoin touches: the network (the
    station must be revived), the broadcast vector (membership, at the
    tail), and — when the deployment replicates document-layer metadata
    — the station's local relational engine, rebuilt from its own WAL
    and topped up with a catch-up delta from the master.
    """

    def __init__(
        self,
        network: Network,
        vector: BroadcastVector,
        *,
        replicator: MetadataReplicator | None = None,
    ) -> None:
        self.network = network
        self.vector = vector
        self.replicator = replicator
        self.rejoins: list[RejoinReport] = []

    def rejoin(
        self,
        station: str,
        *,
        schemas: "list[Schema] | None" = None,
        snapshot_path: str | None = None,
        journal_path: str | None = None,
    ) -> RejoinReport:
        """Revive ``station`` and restore its membership and metadata.

        With ``schemas`` (plus snapshot/journal paths) the station's
        replica engine is rebuilt by WAL replay before the catch-up
        delta ships; without them the existing replica object is reused
        and only the delta ships.
        """
        self.network.station(station)  # raise early on unknown
        if self.network.is_down(station):
            self.network.set_down(station, False)
        if station in self.vector:
            position = self.vector.position_of(station)
        else:
            position = self.vector.join(station)

        restored_rows = 0
        delta_ops = 0
        if self.replicator is not None:
            if schemas is not None:
                rebuilt = Database.recover(
                    station,
                    schemas,
                    snapshot_path=snapshot_path,
                    journal_path=journal_path,
                )
                restored_rows = sum(
                    rebuilt.count(name) for name in rebuilt.table_names()
                )
                self.replicator.replicas[station] = rebuilt
            batch = self.replicator.repair(station)
            delta_ops = len(batch.ops)

        report = RejoinReport(
            station=station,
            rejoined_at=self.network.sim.now,
            position=position,
            restored_rows=restored_rows,
            delta_ops=delta_ops,
        )
        self.rejoins.append(report)
        if OBS.enabled:
            OBS.registry.counter("fault.rejoins").inc()
        return report
