"""Deterministic, seedable fault schedules for the simulated cluster.

The paper's distribution mechanism assumes every workstation stays up
for the whole lecture.  This module makes the opposite the test
condition: a :class:`FaultSchedule` is a declarative, reproducible list
of bad events — station crashes and restarts, link-loss percentages,
latency spikes, network partitions, link-rate drops — and a
:class:`FaultInjector` arms them on the discrete-event clock, where they
act through the existing :class:`~repro.net.transport.Network` and
:class:`~repro.net.link.DuplexLink` failure surfaces.

Everything is virtual-time and seeded, so a faulty run is exactly as
repeatable as a healthy one; with an empty schedule the injector
schedules nothing and the simulation is byte-identical to a run without
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.net.transport import Network
from repro.util.rng import make_rng
from repro.util.validation import check_non_negative, check_probability

__all__ = ["FaultEvent", "FaultSchedule", "FaultInjector"]

CRASH = "crash"
RESTART = "restart"
DROP_RATE = "drop_rate"
LATENCY_SPIKE = "latency_spike"
LINK_RATE = "link_rate"
PARTITION = "partition"
HEAL = "heal"


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled fault: what happens, when, and to whom."""

    time: float
    kind: str
    target: str | None = None
    params: tuple[tuple[str, Any], ...] = ()

    def param(self, name: str, default: Any = None) -> Any:
        """Look up one parameter by name."""
        for key, value in self.params:
            if key == name:
                return value
        return default


@dataclass
class FaultSchedule:
    """An ordered, declarative list of fault events.

    Build one imperatively (:meth:`crash`, :meth:`partition`, ...) or
    draw one from a seed (:meth:`random_crashes`); either way the result
    is a plain value that can be inspected, logged, or replayed.
    """

    events: list[FaultEvent] = field(default_factory=list)

    # -- builders ----------------------------------------------------------
    def crash(self, time: float, station: str) -> "FaultSchedule":
        """Station goes down at ``time`` (messages to/from it are lost)."""
        return self._add(FaultEvent(time=float(time), kind=CRASH,
                                    target=station))

    def restart(self, time: float, station: str) -> "FaultSchedule":
        """Station comes back at ``time`` with its disk intact."""
        return self._add(FaultEvent(time=float(time), kind=RESTART,
                                    target=station))

    def drop_rate(self, time: float, rate: float) -> "FaultSchedule":
        """Network-wide message loss becomes ``rate`` at ``time``."""
        check_probability(rate, "rate")
        return self._add(FaultEvent(time=float(time), kind=DROP_RATE,
                                    params=(("rate", float(rate)),)))

    def latency_spike(
        self, time: float, a: str, b: str, latency_s: float, duration_s: float
    ) -> "FaultSchedule":
        """The (a, b) path's latency jumps for ``duration_s`` seconds."""
        check_non_negative(latency_s, "latency_s")
        check_non_negative(duration_s, "duration_s")
        return self._add(FaultEvent(
            time=float(time), kind=LATENCY_SPIKE, target=a,
            params=(("peer", b), ("latency_s", float(latency_s)),
                    ("duration_s", float(duration_s))),
        ))

    def link_rate(self, time: float, station: str, mbit: float) -> "FaultSchedule":
        """Station's link degrades to ``mbit`` Mb/s at ``time``."""
        if not mbit > 0:
            raise ValueError(f"mbit must be > 0, got {mbit!r}")
        return self._add(FaultEvent(time=float(time), kind=LINK_RATE,
                                    target=station,
                                    params=(("mbit", float(mbit)),)))

    def partition(
        self,
        time: float,
        groups: Sequence[Iterable[str]],
        duration_s: float | None = None,
    ) -> "FaultSchedule":
        """Split the network into ``groups`` at ``time``.

        With ``duration_s`` the partition heals itself that much later;
        without it, add an explicit :meth:`heal`.
        """
        frozen = tuple(tuple(group) for group in groups)
        self._add(FaultEvent(time=float(time), kind=PARTITION,
                             params=(("groups", frozen),)))
        if duration_s is not None:
            check_non_negative(duration_s, "duration_s")
            self.heal(float(time) + duration_s)
        return self

    def heal(self, time: float) -> "FaultSchedule":
        """Remove any standing partition at ``time``."""
        return self._add(FaultEvent(time=float(time), kind=HEAL))

    def _add(self, event: FaultEvent) -> "FaultSchedule":
        check_non_negative(event.time, "time")
        self.events.append(event)
        return self

    # -- generators --------------------------------------------------------
    @classmethod
    def random_crashes(
        cls,
        stations: Sequence[str],
        crash_rate: float,
        window: tuple[float, float],
        *,
        seed: int = 0,
        restart_after_s: float | None = None,
    ) -> "FaultSchedule":
        """Crash a seeded-random ``crash_rate`` fraction of ``stations``.

        Each chosen station crashes at a uniform time within ``window``;
        with ``restart_after_s`` it also restarts that much later.  The
        draw depends only on (stations, crash_rate, window, seed).
        """
        check_probability(crash_rate, "crash_rate")
        lo, hi = float(window[0]), float(window[1])
        if hi < lo:
            raise ValueError(f"window must be (lo, hi) with hi >= lo, "
                             f"got {window!r}")
        schedule = cls()
        rng = make_rng(seed, "fault-crashes")
        for station in stations:
            if float(rng.random()) < crash_rate:
                at = lo + (hi - lo) * float(rng.random())
                schedule.crash(at, station)
                if restart_after_s is not None:
                    schedule.restart(at + restart_after_s, station)
        return schedule

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(sorted(self.events, key=lambda e: e.time))


class FaultInjector:
    """Arms a :class:`FaultSchedule` on a network's simulator clock.

    The injector only *translates* declared events into the network's
    existing failure surfaces (``set_down``, ``set_drop_rate``,
    ``set_latency``, ``set_partition``, ``link.set_rate``); it adds no
    per-message hooks, so an unarmed or empty injector costs the healthy
    path nothing.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        #: stations currently down because of an injected crash
        self.crashed: set[str] = set()
        #: (virtual time, event) pairs, in firing order
        self.fired: list[tuple[float, FaultEvent]] = []
        #: station -> [(crash_time, restart_time_or_None), ...]
        self.outages: dict[str, list[list[float | None]]] = {}

    def arm(self, schedule: FaultSchedule) -> int:
        """Schedule every event; returns how many were armed."""
        count = 0
        for event in schedule:
            self.network.sim.schedule_at(event.time, self._fire, event)
            count += 1
        return count

    # -- event execution ---------------------------------------------------
    def _fire(self, event: FaultEvent) -> None:
        now = self.network.sim.now
        self.fired.append((now, event))
        if event.kind == CRASH:
            self.network.set_down(event.target, True)
            self.crashed.add(event.target)
            self.outages.setdefault(event.target, []).append([now, None])
        elif event.kind == RESTART:
            self.network.set_down(event.target, False)
            self.crashed.discard(event.target)
            spans = self.outages.get(event.target, [])
            if spans and spans[-1][1] is None:
                spans[-1][1] = now
        elif event.kind == DROP_RATE:
            self.network.set_drop_rate(event.param("rate"))
        elif event.kind == LATENCY_SPIKE:
            a, b = event.target, event.param("peer")
            previous = self.network.latency(a, b)
            self.network.set_latency(a, b, event.param("latency_s"))
            self.network.sim.schedule(
                event.param("duration_s"),
                self.network.set_latency, a, b, previous,
            )
        elif event.kind == LINK_RATE:
            station = self.network.station(event.target)
            station.link.set_rate_mbps(event.param("mbit"))
        elif event.kind == PARTITION:
            self.network.set_partition(event.param("groups"))
        elif event.kind == HEAL:
            self.network.set_partition(None)
        else:
            raise ValueError(f"unknown fault kind {event.kind!r}")

    # -- accounting --------------------------------------------------------
    def downtime_s(self, station: str, horizon: float | None = None) -> float:
        """Total injected downtime for ``station`` up to ``horizon``.

        Open outages (no restart yet) are closed at ``horizon`` (default:
        the current virtual time).
        """
        end = self.network.sim.now if horizon is None else float(horizon)
        total = 0.0
        for start, stop in self.outages.get(station, []):
            total += max(0.0, min(end, stop if stop is not None else end)
                         - min(start, end))
        return total

    def crash_count(self, station: str) -> int:
        """How many injected crashes ``station`` suffered."""
        return len(self.outages.get(station, []))
