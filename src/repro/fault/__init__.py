"""Fault injection, failure detection, and self-healing recovery.

The paper's distribution mechanism assumes every workstation in the
full m-ary tree stays up for the whole lecture; this subsystem makes
the cluster survive the opposite assumption.  The layers compose in
the order a real failure unfolds:

* :mod:`repro.fault.inject` — deterministic, seedable fault schedules
  (station crash/restart, link loss, latency spikes, partitions) armed
  on the simulator clock;
* :mod:`repro.fault.detector` — a heartbeat-timeout failure detector
  built on the awareness daemon (:mod:`repro.collab.presence`),
  escalating silence through suspect to confirmed-dead;
* :mod:`repro.fault.repair` — m-ary tree self-healing: remove the dead
  from the broadcast vector and let the paper's closed-form
  child/parent formulas re-derive every parent for free;
* :mod:`repro.fault.recovery` — redelivery of interrupted broadcasts
  over the repaired tree, and crashed-station rejoin from WAL snapshot
  replay plus a syncdb catch-up delta;
* :mod:`repro.fault.policy` — the shared retry/timeout/backoff
  schedules the broadcast and on-demand layers also adopt;
* :mod:`repro.fault.health` — per-station health reports folding the
  above into one table;
* :mod:`repro.fault.crashsim` — a deterministic crash-injection
  harness for the storage engine's journal: failpoint file wrappers
  kill the write stream at exact byte offsets, and an exhaustive
  kill-at-point matrix proves recovery's committed-prefix guarantee.

With no schedule armed and no detector started, nothing here touches
the healthy path: experiments E1–E13 are byte-identical with or
without this package imported.
"""

from repro.fault.policy import RetryPolicy
from repro.fault.inject import FaultEvent, FaultInjector, FaultSchedule
from repro.fault.detector import DetectionEvent, FailureDetector
from repro.fault.repair import RepairReport, Reparenting, TreeRepairer
from repro.fault.recovery import (
    RecoveryManager,
    RedeliveryReport,
    RedeliveryService,
    RejoinReport,
)
from repro.fault.health import HealthMonitor, StationHealth
from repro.fault.crashsim import (
    CRASH_SCHEMAS,
    AckedTxn,
    CrashCase,
    CrashMatrixReport,
    CrashWorkload,
    FailpointFile,
    SimulatedCrashError,
    crash_points,
    run_crash_matrix,
    run_crash_workload,
    verify_database,
)

__all__ = [
    "RetryPolicy",
    "FaultEvent",
    "FaultSchedule",
    "FaultInjector",
    "DetectionEvent",
    "FailureDetector",
    "RepairReport",
    "Reparenting",
    "TreeRepairer",
    "RedeliveryReport",
    "RedeliveryService",
    "RejoinReport",
    "RecoveryManager",
    "HealthMonitor",
    "StationHealth",
    "SimulatedCrashError",
    "FailpointFile",
    "CRASH_SCHEMAS",
    "AckedTxn",
    "CrashWorkload",
    "CrashCase",
    "CrashMatrixReport",
    "crash_points",
    "run_crash_workload",
    "run_crash_matrix",
    "verify_database",
]
