"""Deterministic crash-injection harness for the WAL durability layer.

Where the rest of :mod:`repro.fault` kills *stations* mid-broadcast,
this module kills the *storage engine* mid-write and proves recovery
honours the **committed-prefix guarantee**: after a crash at any byte
of the journal's write stream,

* every transaction acknowledged (appended and fsynced) before the
  crash point is fully present after recovery,
* no partial transaction is visible, and
* every PK / unique / FK constraint and every secondary index is
  consistent after the rebuild.

Two complementary instruments:

* :class:`FailpointFile` — wraps the journal's real file object and
  kills the write stream at an exact byte offset (truncating it, or
  garbling the byte first), so a live engine run crashes mid-append
  exactly where the schedule says;
* :func:`run_crash_matrix` — records one golden workload run, then
  replays a kill-at-point sweep over every record boundary and every
  ``stride``-byte offset within records, recovering and verifying the
  committed prefix at each point, plus a garble sweep checking that
  mid-file corruption is detected strictly and survivable in salvage
  mode.

Everything is seeded and offset-driven — a failing crash point is a
one-line reproduction.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, BinaryIO, Iterator

from repro.rdb import (
    Action,
    Column,
    ColumnType,
    Database,
    ForeignKey,
    JournalCorruptError,
    Schema,
)
from repro.rdb.wal import Journal
from repro.util.rng import make_rng

__all__ = [
    "SimulatedCrashError",
    "FailpointFile",
    "CRASH_SCHEMAS",
    "AckedTxn",
    "CrashWorkload",
    "CrashCase",
    "CrashMatrixReport",
    "build_crash_db",
    "run_crash_workload",
    "recover_crash_db",
    "verify_database",
    "database_state",
    "crash_points",
    "run_crash_matrix",
    "iter_live_crashes",
    "report_as_json",
]

T = ColumnType

#: Parent table with a unique secondary key and extra indexed columns.
DOCS = Schema(
    name="crash_docs",
    columns=(
        Column("doc_id", T.INT, nullable=False),
        Column("title", T.TEXT, nullable=False),
        Column("version", T.INT, nullable=False, default=1),
        Column("body", T.TEXT),
    ),
    primary_key=("doc_id",),
    unique=(("title",),),
)

#: Child table whose FK cascades on delete.  The workload only ever
#: points a ref at the doc inserted in the *same* transaction, so
#: salvage-skipping any single journal record can never strand a ref.
REFS = Schema(
    name="crash_refs",
    columns=(
        Column("ref_id", T.INT, nullable=False),
        Column("doc_id", T.INT),
        Column("anchor", T.TEXT, nullable=False, default=""),
    ),
    primary_key=("ref_id",),
    foreign_keys=(
        ForeignKey(("doc_id",), "crash_docs", ("doc_id",),
                   on_delete=Action.CASCADE),
    ),
)

CRASH_SCHEMAS = (DOCS, REFS)


class SimulatedCrashError(RuntimeError):
    """Raised by :class:`FailpointFile` when its armed failpoint fires."""


class FailpointFile:
    """A binary file wrapper that kills the write stream at a byte offset.

    Counts cumulative bytes ever written to the underlying file (its
    size at wrap time plus everything written through the wrapper).
    Once a write would carry the total past ``crash_at``:

    * ``truncate`` mode writes only the prefix that fits, flushes it,
      and raises :class:`SimulatedCrashError` — the classic torn write;
    * ``garble`` mode additionally writes the byte *at* the failpoint
      with one bit flipped first — a misdirected/corrupted sector.

    Every later write also raises, mimicking a dead process.  Reads are
    not intercepted; recovery reopens the path with a plain file.
    """

    def __init__(
        self, fh: BinaryIO, crash_at: int, *, mode: str = "truncate"
    ) -> None:
        if mode not in ("truncate", "garble"):
            raise ValueError(f"unknown failpoint mode {mode!r}")
        if crash_at < 0:
            raise ValueError("crash_at must be >= 0")
        self._fh = fh
        self.crash_at = crash_at
        self.mode = mode
        self.crashed = False
        self.written = os.fstat(fh.fileno()).st_size

    def write(self, data: bytes) -> int:
        """Write ``data``, or die at the failpoint."""
        if self.crashed:
            raise SimulatedCrashError(
                f"write after crash at byte {self.crash_at}"
            )
        remaining = self.crash_at - self.written
        if len(data) <= remaining:
            self._fh.write(data)
            self.written += len(data)
            return len(data)
        prefix = bytes(data[:remaining])
        if self.mode == "garble" and remaining < len(data):
            prefix += bytes([data[remaining] ^ 0x40])
        self._fh.write(prefix)
        self._fh.flush()
        self.written += len(prefix)
        self.crashed = True
        raise SimulatedCrashError(f"failpoint fired at byte {self.crash_at}")

    def flush(self) -> None:
        """Flush the intact prefix."""
        self._fh.flush()

    def fileno(self) -> int:
        """Underlying descriptor (lets fsync-based sync policies work)."""
        return self._fh.fileno()

    def tell(self) -> int:
        """Position in the underlying file."""
        return self._fh.tell()

    def close(self) -> None:
        """Close the underlying file."""
        self._fh.close()

    @property
    def closed(self) -> bool:
        """Whether the underlying file is closed."""
        return self._fh.closed


# ---------------------------------------------------------------------------
# Golden workload
# ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class AckedTxn:
    """One acknowledged transaction: its LSN, durable byte extent in the
    journal, and the full expected database state right after it."""

    txn_id: int
    lsn: int
    start_offset: int
    end_offset: int
    state: dict[str, dict[tuple, dict[str, Any]]]


@dataclass
class CrashWorkload:
    """The golden run a crash matrix replays against."""

    journal_path: Path
    data: bytes
    acks: list[AckedTxn]

    def boundaries(self) -> list[int]:
        """Record boundaries: 0 plus every transaction's end offset."""
        return [0] + [ack.end_offset for ack in self.acks]

    def state_at(self, offset: int) -> dict[str, dict[tuple, dict[str, Any]]]:
        """Expected state after crashing at byte ``offset``: the state of
        the last transaction fully durable at or before it."""
        state: dict[str, dict[tuple, dict[str, Any]]] = {
            schema.name: {} for schema in CRASH_SCHEMAS
        }
        for ack in self.acks:
            if ack.end_offset <= offset:
                state = ack.state
        return state

    def damaged_ack(self, offset: int) -> AckedTxn | None:
        """The transaction whose journal record covers byte ``offset``."""
        for ack in self.acks:
            if ack.start_offset <= offset < ack.end_offset:
                return ack
        return None


def build_crash_db(name: str = "crashdb",
                   journal: Journal | None = None) -> Database:
    """A database over :data:`CRASH_SCHEMAS` with the workload's
    secondary indexes declared (same DDL a recovery run re-issues)."""
    db = Database(name)
    for schema in CRASH_SCHEMAS:
        db.create_table(schema)
    db.create_hash_index("crash_docs", "docs_by_version", ("version",))
    db.create_sorted_index("crash_docs", "docs_by_id", "doc_id")
    db.create_sorted_index("crash_refs", "refs_by_id", "ref_id")
    if journal is not None:
        db.attach_journal(journal)
    return db


def database_state(db: Database) -> dict[str, dict[tuple, dict[str, Any]]]:
    """``{table: {pk: row}}`` deep-enough copy for state comparison."""
    state: dict[str, dict[tuple, dict[str, Any]]] = {}
    for name in db.table_names():
        table = db.table(name)
        state[name] = {
            table.schema.primary_key_of(row): dict(row)
            for row in table.rows()
        }
    return state


def apply_workload_txn(db: Database, k: int, rng: Any) -> None:
    """Apply transaction ``k`` of the deterministic mixed workload.

    Each transaction inserts one doc (variable-size body so record sizes
    vary), usually a ref pointing at *that* doc, and sometimes updates
    or cascade-deletes an earlier doc.
    """
    with db.transaction():
        db.insert("crash_docs", {
            "doc_id": k,
            "title": f"doc-{k:05d}",
            "version": 1,
            "body": "x" * int(rng.integers(0, 120)),
        })
        if rng.random() < 0.7:
            db.insert("crash_refs", {
                "ref_id": k, "doc_id": k, "anchor": f"a{k}",
            })
        alive = [row["doc_id"] for row in db.select("crash_docs")]
        if len(alive) > 3 and rng.random() < 0.4:
            victim = alive[int(rng.integers(0, len(alive) - 1))]
            if rng.random() < 0.5:
                db.update_pk("crash_docs", victim, {
                    "version": int(rng.integers(2, 9)),
                })
            else:
                db.delete_pk("crash_docs", victim)


def run_crash_workload(
    workdir: str | Path, *, txns: int = 40, seed: int = 0
) -> CrashWorkload:
    """Run the golden workload with ``sync=commit`` (acked ⇒ durable),
    recording every transaction's byte extent and expected state."""
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    path = workdir / "golden.wal"
    journal = Journal(path, sync="commit")
    db = build_crash_db(journal=journal)
    rng = make_rng(seed, "crashsim-workload")
    acks: list[AckedTxn] = []
    for k in range(1, txns + 1):
        start = journal.tell()
        apply_workload_txn(db, k, rng)
        acks.append(AckedTxn(
            txn_id=k,
            lsn=journal.last_lsn,
            start_offset=start,
            end_offset=journal.tell(),
            state=database_state(db),
        ))
    journal.close()
    return CrashWorkload(journal_path=path, data=path.read_bytes(),
                         acks=acks)


def recover_crash_db(
    journal_path: str | Path, *, salvage: bool = False
) -> Database:
    """Recover a workload database from ``journal_path`` and re-issue
    the workload's secondary-index DDL (backfilling from rows)."""
    db = Database.recover(
        "crashdb", CRASH_SCHEMAS, journal_path=str(journal_path),
        salvage=salvage,
    )
    db.create_hash_index("crash_docs", "docs_by_version", ("version",))
    db.create_sorted_index("crash_docs", "docs_by_id", "doc_id")
    db.create_sorted_index("crash_refs", "refs_by_id", "ref_id")
    return db


# ---------------------------------------------------------------------------
# Recovery verifier
# ---------------------------------------------------------------------------
def verify_database(db: Database) -> list[str]:
    """Exhaustively check every integrity invariant of ``db``.

    Returns a list of human-readable violations (empty ⇒ consistent):
    duplicate primary keys, unique-constraint breaks, dangling foreign
    keys, and hash/sorted secondary indexes that disagree with the heap.
    """
    problems: list[str] = []
    for name in db.table_names():
        table = db.table(name)
        schema = table.schema
        rows = list(table.items())
        seen_pks: set[tuple] = set()
        for _rowid, row in rows:
            pk = schema.primary_key_of(row)
            if pk in seen_pks:
                problems.append(f"{name}: duplicate primary key {pk!r}")
            seen_pks.add(pk)
        for columns in schema.unique:
            seen: set[tuple] = set()
            for _rowid, row in rows:
                key = tuple(row[c] for c in columns)
                if any(v is None for v in key):
                    continue
                if key in seen:
                    problems.append(
                        f"{name}: duplicate unique key {key!r} "
                        f"on ({', '.join(columns)})"
                    )
                seen.add(key)
        for fk in schema.foreign_keys:
            parent = db.table(fk.parent_table)
            parent_keys = {
                tuple(prow[c] for c in fk.parent_columns)
                for prow in parent.rows()
            }
            for _rowid, row in rows:
                key = tuple(row[c] for c in fk.columns)
                if any(v is None for v in key):
                    continue
                if key not in parent_keys:
                    problems.append(
                        f"{name}: dangling FK {key!r} -> {fk.parent_table}"
                    )
        for index in table.indexes.hash_indexes:
            expected: dict[tuple, set[int]] = {}
            for rowid, row in rows:
                key = tuple(row[c] for c in index.columns)
                expected.setdefault(key, set()).add(rowid)
            if len(index) != sum(len(ids) for ids in expected.values()):
                problems.append(
                    f"{name}.{index.name}: {len(index)} entries, heap has "
                    f"{sum(len(ids) for ids in expected.values())}"
                )
            for key, rowids in expected.items():
                if set(index.lookup(key)) != rowids:
                    problems.append(
                        f"{name}.{index.name}: key {key!r} maps to "
                        f"{sorted(index.lookup(key))}, heap says "
                        f"{sorted(rowids)}"
                    )
        for index in table.indexes.sorted_indexes:
            got = sorted(index.range(None, None))
            heap = sorted(rowid for rowid, _ in rows)
            if got != heap:
                problems.append(
                    f"{name}.{index.name}: sorted index rowids {got} != "
                    f"heap rowids {heap}"
                )
    return problems


# ---------------------------------------------------------------------------
# The crash matrix
# ---------------------------------------------------------------------------
def crash_points(
    size: int, boundaries: list[int], *, stride: int = 64
) -> list[int]:
    """Every record boundary plus every ``stride``-byte offset up to and
    including ``size`` (the no-crash control point)."""
    points = {b for b in boundaries if 0 <= b <= size}
    points.update(range(0, size, max(1, stride)))
    points.add(size)
    return sorted(points)


@dataclass(frozen=True, slots=True)
class CrashCase:
    """One crash point's outcome."""

    offset: int
    kind: str  # "truncate" | "garble"
    ok: bool
    detail: str = ""


@dataclass
class CrashMatrixReport:
    """Aggregated results of one kill-at-point sweep."""

    points_tested: int = 0
    failures: list[CrashCase] = field(default_factory=list)
    torn_tails: int = 0
    corruption_detected: int = 0
    records_recovered: int = 0

    @property
    def ok(self) -> bool:
        """True when every crash point recovered correctly."""
        return not self.failures

    def summary(self) -> str:
        """One-line human summary."""
        status = "ok" if self.ok else f"{len(self.failures)} FAILURES"
        return (
            f"crash matrix: {self.points_tested} points, "
            f"{self.torn_tails} torn tails, "
            f"{self.corruption_detected} corruptions detected, "
            f"{self.records_recovered} records recovered — {status}"
        )


def _check_truncation_point(
    workload: CrashWorkload, case_path: Path, offset: int,
    report: CrashMatrixReport,
) -> None:
    """Crash-by-truncation at ``offset``: strict recovery must succeed
    and reproduce exactly the committed prefix."""
    case_path.write_bytes(workload.data[:offset])
    try:
        db = recover_crash_db(case_path, salvage=False)
    except JournalCorruptError as exc:
        report.failures.append(CrashCase(
            offset, "truncate", False,
            f"strict recovery raised on pure truncation: {exc}",
        ))
        return
    expected = workload.state_at(offset)
    got = database_state(db)
    if got != expected:
        report.failures.append(CrashCase(
            offset, "truncate", False,
            "committed-prefix violation: recovered state diverges from "
            "the last acked transaction at or before the crash point",
        ))
        return
    problems = verify_database(db)
    if problems:
        report.failures.append(CrashCase(
            offset, "truncate", False, "; ".join(problems)
        ))
        return
    assert db.recovery_stats is not None
    report.torn_tails += db.recovery_stats.torn_tails
    report.records_recovered += db.recovery_stats.records_recovered


def _check_garble_point(
    workload: CrashWorkload, case_path: Path, offset: int,
    report: CrashMatrixReport,
) -> None:
    """Flip one bit at ``offset``: strict recovery must detect mid-file
    corruption; salvage recovery must keep everything but the damaged
    record and stay consistent."""
    damaged = workload.damaged_ack(offset)
    data = bytearray(workload.data)
    data[offset] ^= 0x40
    case_path.write_bytes(bytes(data))
    is_final = damaged is workload.acks[-1] if damaged else True
    try:
        recover_crash_db(case_path, salvage=False)
        if not is_final:
            report.failures.append(CrashCase(
                offset, "garble", False,
                "strict recovery accepted mid-file corruption silently",
            ))
            return
    except JournalCorruptError:
        report.corruption_detected += 1
    db = recover_crash_db(case_path, salvage=True)
    assert db.recovery_stats is not None
    expected_recovered = len(workload.acks) - (1 if damaged else 0)
    if db.recovery_stats.records_recovered != expected_recovered:
        report.failures.append(CrashCase(
            offset, "garble", False,
            f"salvage recovered {db.recovery_stats.records_recovered} "
            f"records, expected {expected_recovered}",
        ))
        return
    problems = verify_database(db)
    if problems:
        report.failures.append(CrashCase(
            offset, "garble", False, "; ".join(problems)
        ))


def run_crash_matrix(
    workdir: str | Path,
    *,
    txns: int = 40,
    stride: int = 64,
    garble: bool = True,
    seed: int = 0,
) -> CrashMatrixReport:
    """Record a golden workload run, then kill-at-point sweep it.

    Truncation sweep: for every record boundary and every ``stride``-th
    byte (plus the no-crash control at EOF), cut the journal there,
    recover strictly, and assert the committed-prefix guarantee plus
    full constraint/index consistency.  Garble sweep (optional): flip a
    bit at each offset and assert strict detection + salvage survival.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    workload = run_crash_workload(workdir / "golden", txns=txns, seed=seed)
    report = CrashMatrixReport()
    case_path = workdir / "case.wal"
    boundaries = workload.boundaries()
    for offset in crash_points(len(workload.data), boundaries,
                               stride=stride):
        _check_truncation_point(workload, case_path, offset, report)
        report.points_tested += 1
    if garble:
        for offset in crash_points(len(workload.data) - 1, boundaries,
                                   stride=stride):
            if offset >= len(workload.data):
                continue
            _check_garble_point(workload, case_path, offset, report)
            report.points_tested += 1
    return report


def iter_live_crashes(
    workdir: str | Path,
    offsets: list[int],
    *,
    txns: int = 20,
    seed: int = 0,
    mode: str = "truncate",
) -> Iterator[tuple[int, list[AckedTxn], Database]]:
    """Run the workload against live :class:`FailpointFile` journals.

    For each offset: arm a failpoint there, run the workload until the
    simulated crash kills it, reopen the journal path cold, recover,
    and yield ``(offset, acked_transactions, recovered_db)`` for the
    caller to assert on.  Exercises the real append/fsync path rather
    than post-hoc byte surgery.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    for offset in offsets:
        path = workdir / f"live-{offset}.wal"
        journal = Journal(
            path, sync="commit",
            file_wrapper=lambda fh, _o=offset: FailpointFile(
                fh, _o, mode=mode
            ),
        )
        db = build_crash_db(journal=journal)
        rng = make_rng(seed, "crashsim-workload")
        acked: list[AckedTxn] = []
        try:
            for k in range(1, txns + 1):
                start = journal.tell()
                apply_workload_txn(db, k, rng)
                acked.append(AckedTxn(
                    txn_id=k, lsn=journal.last_lsn,
                    start_offset=start, end_offset=journal.tell(),
                    state=database_state(db),
                ))
        except SimulatedCrashError:
            pass
        try:
            journal.close()
        except SimulatedCrashError:
            pass
        recovered = recover_crash_db(path, salvage=False)
        yield offset, acked, recovered


def _json_default(value: Any) -> Any:  # pragma: no cover - debug helper
    return repr(value)


def report_as_json(report: CrashMatrixReport) -> str:
    """Serialize a matrix report for CI artifacts."""
    return json.dumps(
        {
            "points_tested": report.points_tested,
            "ok": report.ok,
            "torn_tails": report.torn_tails,
            "corruption_detected": report.corruption_detected,
            "records_recovered": report.records_recovered,
            "failures": [
                {"offset": c.offset, "kind": c.kind, "detail": c.detail}
                for c in report.failures
            ],
        },
        indent=2,
        default=_json_default,
    )
