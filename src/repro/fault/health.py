"""Per-station health reporting across the fault subsystem.

One :class:`HealthMonitor` observes the other fault components — the
injector (ground truth: crashes and downtime), the detector (what the
cluster *believed*: suspicions, confirmations, missed heartbeats) and
the redelivery reports (what recovery *cost*: chunks and bytes re-sent
per station) — and folds them into one :class:`StationHealth` row per
station.  ``python -m repro`` prints the summary line; benchmarks and
operators read the full table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.net.transport import Network

if TYPE_CHECKING:
    from repro.fault.detector import FailureDetector
    from repro.fault.inject import FaultInjector
    from repro.fault.recovery import RedeliveryReport

__all__ = ["StationHealth", "HealthMonitor"]


@dataclass(frozen=True, slots=True)
class StationHealth:
    """One station's health over the observed horizon."""

    station: str
    crashes: int
    downtime_s: float
    uptime_fraction: float
    missed_heartbeats: int
    state: str  # detector view: "alive" | "suspect" | "dead" | "unmonitored"
    chunks_redelivered: int

    @property
    def healthy(self) -> bool:
        """True for a station that never faulted and needed no healing."""
        return (self.crashes == 0 and self.state in ("alive", "unmonitored")
                and self.chunks_redelivered == 0)


class HealthMonitor:
    """Aggregates fault-subsystem observations into per-station rows."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self._injector: "FaultInjector | None" = None
        self._detector: "FailureDetector | None" = None
        self._redeliveries: list["RedeliveryReport"] = []

    # ------------------------------------------------------------------
    # Observation sources
    # ------------------------------------------------------------------
    def observe_injector(self, injector: "FaultInjector") -> None:
        """Use ``injector`` as ground truth for crashes and downtime."""
        self._injector = injector

    def observe_detector(self, detector: "FailureDetector") -> None:
        """Use ``detector`` for believed state and missed heartbeats."""
        self._detector = detector

    def observe_redelivery(self, report: "RedeliveryReport") -> None:
        """Fold one redelivery report's per-station costs in."""
        self._redeliveries.append(report)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self, horizon: float | None = None) -> list[StationHealth]:
        """One row per station, in registration order.

        ``horizon`` is the observation window for uptime fractions
        (default: the current virtual time).
        """
        end = self.network.sim.now if horizon is None else float(horizon)
        rows = []
        for station in self.network.names():
            crashes = 0
            downtime = 0.0
            if self._injector is not None:
                crashes = self._injector.crash_count(station)
                downtime = self._injector.downtime_s(station, end)
            missed = 0
            state = "unmonitored"
            if self._detector is not None:
                if station in self._detector.stations:
                    missed = self._detector.missed_heartbeats.get(station, 0)
                    state = self._detector.state_of(station)
                elif station == self._detector.coordinator:
                    state = "alive"
            chunks = sum(
                r.chunks_by_station.get(station, 0)
                for r in self._redeliveries
            )
            uptime = 1.0 if end <= 0 else max(0.0, 1.0 - downtime / end)
            rows.append(StationHealth(
                station=station,
                crashes=crashes,
                downtime_s=downtime,
                uptime_fraction=uptime,
                missed_heartbeats=missed,
                state=state,
                chunks_redelivered=chunks,
            ))
        return rows

    def summary(self, horizon: float | None = None) -> dict[str, float | int]:
        """Cluster-level aggregates for one-line status output."""
        rows = self.report(horizon)
        dead = sum(1 for r in rows if r.state == "dead")
        return {
            "stations": len(rows),
            "dead": dead,
            "alive": len(rows) - dead,
            "crashes": sum(r.crashes for r in rows),
            "chunks_redelivered": sum(r.chunks_redelivered for r in rows),
            "mean_uptime": (
                sum(r.uptime_fraction for r in rows) / len(rows)
                if rows else 1.0
            ),
        }

    @staticmethod
    def render(rows: Sequence[StationHealth]) -> str:
        """A small aligned text table of health rows."""
        headers = ["station", "state", "crashes", "downtime_s",
                   "uptime", "missed_hb", "redelivered"]
        body = [
            [r.station, r.state, str(r.crashes), f"{r.downtime_s:.1f}",
             f"{r.uptime_fraction:.3f}", str(r.missed_heartbeats),
             str(r.chunks_redelivered)]
            for r in rows
        ]
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in body))
            if body else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
            "  ".join("-" * w for w in widths),
        ]
        lines.extend(
            "  ".join(row[i].ljust(widths[i]) for i in range(len(row)))
            for row in body
        )
        return "\n".join(lines)
