"""Heartbeat-timeout failure detection over the presence daemon.

The paper's awareness daemon already makes stations "feel the existence
of each other"; this module turns that feeling into an actionable
failure detector.  Every monitored station heartbeats to a coordinator
through the existing :class:`~repro.collab.presence.PresenceDaemon`
(the detector joins each *station* to a reserved cluster course), and a
periodic sweep on the simulator clock classifies silence:

* quiet for ``suspect_timeout_s`` or more  -> **suspect** (may just be
  slow),
* quiet for ``confirm_timeout_s`` or more  -> **confirmed dead** (hand
  the station to the tree-repair layer).

Window semantics are **closed-open**: with silence ``s``, a station is
alive while ``s`` is in ``[0, suspect)``, suspect in ``[suspect,
confirm)`` and dead in ``[confirm, inf)``.  A sweep landing exactly on
a boundary tick therefore escalates — the timeout has elapsed in full —
rather than deferring to the next sweep, and a recovery requires
silence strictly below ``suspect_timeout_s``.

A station heard from again after suspicion **recovers**.  All three
transitions are emitted to registered listeners and recorded in
:attr:`FailureDetector.events`, on virtual time, deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.collab.presence import PresenceDaemon
from repro.net.transport import Network
from repro.obs.instrument import OBS
from repro.util.validation import check_positive

__all__ = ["DetectionEvent", "FailureDetector"]

CLUSTER_COURSE = "__cluster__"

SUSPECT = "suspect"
CONFIRM = "confirm"
RECOVER = "recover"

Listener = Callable[[str, float], None]


@dataclass(frozen=True, slots=True)
class DetectionEvent:
    """One detector state transition, stamped with virtual time."""

    time: float
    kind: str  # "suspect" | "confirm" | "recover"
    station: str


class FailureDetector:
    """Classifies stations alive / suspect / confirmed-dead by heartbeat.

    The detector owns a :class:`PresenceDaemon` whose coordinator is the
    monitoring station (typically the tree root / class administrator);
    crashed members simply stop being heard, because the network drops
    everything a down station sends.
    """

    def __init__(
        self,
        network: Network,
        coordinator: str,
        stations: Sequence[str],
        *,
        heartbeat_interval_s: float = 5.0,
        suspect_timeout_s: float = 12.0,
        confirm_timeout_s: float = 25.0,
        sweep_interval_s: float | None = None,
    ) -> None:
        check_positive(heartbeat_interval_s, "heartbeat_interval_s")
        check_positive(suspect_timeout_s, "suspect_timeout_s")
        check_positive(confirm_timeout_s, "confirm_timeout_s")
        if suspect_timeout_s <= heartbeat_interval_s:
            raise ValueError(
                "suspect_timeout_s must exceed heartbeat_interval_s, "
                "otherwise healthy stations flap between beats"
            )
        if confirm_timeout_s <= suspect_timeout_s:
            raise ValueError(
                "confirm_timeout_s must exceed suspect_timeout_s "
                "(confirmation is an escalation of suspicion)"
            )
        self.network = network
        self.coordinator = coordinator
        self.stations = [s for s in stations if s != coordinator]
        self.heartbeat_interval_s = heartbeat_interval_s
        self.suspect_timeout_s = suspect_timeout_s
        self.confirm_timeout_s = confirm_timeout_s
        self.sweep_interval_s = (
            sweep_interval_s if sweep_interval_s is not None
            else heartbeat_interval_s
        )
        check_positive(self.sweep_interval_s, "sweep_interval_s")
        # Presence carries the heartbeats; its ageing timeout is the
        # confirm window so a confirmed-dead station has also fallen off
        # the roster.
        self.presence = PresenceDaemon(
            network,
            coordinator,
            heartbeat_interval_s=heartbeat_interval_s,
            timeout_s=confirm_timeout_s,
        )
        self.suspected: set[str] = set()
        self.confirmed_dead: set[str] = set()
        self.events: list[DetectionEvent] = []
        #: station -> last virtual time a heartbeat was heard
        self._last_seen: dict[str, float] = {}
        #: station -> heartbeats that should have arrived but did not
        self.missed_heartbeats: dict[str, int] = {s: 0 for s in self.stations}
        self._listeners: dict[str, list[Listener]] = {
            SUSPECT: [], CONFIRM: [], RECOVER: [],
        }
        self._running = False
        self._until = 0.0

    # ------------------------------------------------------------------
    # Listeners
    # ------------------------------------------------------------------
    def on_suspect(self, listener: Listener) -> None:
        """Call ``listener(station, time)`` when a station turns suspect."""
        self._listeners[SUSPECT].append(listener)

    def on_confirm(self, listener: Listener) -> None:
        """Call ``listener(station, time)`` on confirmed death."""
        self._listeners[CONFIRM].append(listener)

    def on_recover(self, listener: Listener) -> None:
        """Call ``listener(station, time)`` when a station is heard again."""
        self._listeners[RECOVER].append(listener)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, until: float) -> None:
        """Begin heartbeating and sweeping until virtual time ``until``.

        The horizon bounds the heartbeat loops so the simulator can
        drain; monitoring past it means calling ``start`` again.
        """
        if self._running:
            raise RuntimeError("detector already started")
        if until <= self.network.sim.now:
            raise ValueError(
                f"until must be in the simulated future, got {until!r}"
            )
        self._running = True
        self._until = float(until)
        now = self.network.sim.now
        for station in self.stations:
            self.presence.join(station, station, CLUSTER_COURSE)
            self._last_seen[station] = now  # grace: joined right now
        self.network.sim.schedule(self.sweep_interval_s, self._sweep)
        self.network.sim.schedule_at(self._until, self._stop)

    def _stop(self) -> None:
        for station in self.stations:
            self.presence.leave(station, station)
        self._running = False

    # ------------------------------------------------------------------
    # Sweep
    # ------------------------------------------------------------------
    def _sweep(self) -> None:
        now = self.network.sim.now
        heard = {
            info.user: info.last_seen
            for info in self.presence.present(CLUSTER_COURSE)
        }
        for station in self.stations:
            if station in heard:
                self._last_seen[station] = max(
                    self._last_seen.get(station, 0.0), heard[station]
                )
            silence = now - self._last_seen.get(station, 0.0)
            self.missed_heartbeats[station] = max(
                self.missed_heartbeats.get(station, 0),
                int(silence // self.heartbeat_interval_s),
            )
            # Closed-open windows: alive [0, suspect), suspect
            # [suspect, confirm), dead [confirm, inf).  A boundary tick
            # escalates; it never waits one extra sweep.
            if station in self.confirmed_dead:
                if silence < self.suspect_timeout_s:
                    self._emit(RECOVER, station, now)
                    self.confirmed_dead.discard(station)
                    self.suspected.discard(station)
            elif silence >= self.confirm_timeout_s:
                if station not in self.suspected:
                    self._emit(SUSPECT, station, now)
                    self.suspected.add(station)
                self._emit(CONFIRM, station, now)
                self.confirmed_dead.add(station)
            elif silence >= self.suspect_timeout_s:
                if station not in self.suspected:
                    self._emit(SUSPECT, station, now)
                    self.suspected.add(station)
            elif station in self.suspected:
                self._emit(RECOVER, station, now)
                self.suspected.discard(station)
        if self._running and now + self.sweep_interval_s <= self._until:
            self.network.sim.schedule(self.sweep_interval_s, self._sweep)

    def _emit(self, kind: str, station: str, time: float) -> None:
        self.events.append(DetectionEvent(time=time, kind=kind,
                                          station=station))
        if OBS.enabled:
            OBS.registry.counter("fault.detector_events", kind=kind).inc()
        for listener in self._listeners[kind]:
            listener(station, time)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def state_of(self, station: str) -> str:
        """``"alive"``, ``"suspect"`` or ``"dead"`` for one station."""
        if station in self.confirmed_dead:
            return "dead"
        if station in self.suspected:
            return "suspect"
        return "alive"

    def alive(self) -> list[str]:
        """Monitored stations not currently confirmed dead."""
        return [s for s in self.stations if s not in self.confirmed_dead]
