"""Self-healing of the full m-ary distribution tree.

When a station is confirmed dead its whole subtree is orphaned: the
paper's forwarding scheme only ever talks parent-to-child, so every
descendant silently stops receiving.  The repair is the paper's own
machinery run backwards: remove the dead stations from the broadcast
vector (later members shift forward, preserving the linear join order),
and the closed-form child/parent formulas of
:mod:`repro.distribution.mtree` re-derive every parent for free — no
pointer surgery, no coordination protocol.  The
:class:`RepairReport` records exactly which survivors changed parents
(the stations the recovery layer must re-feed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.distribution.mtree import MAryTree
from repro.distribution.vector import BroadcastVector
from repro.obs.instrument import OBS
from repro.util.validation import check_positive

__all__ = ["Reparenting", "RepairReport", "TreeRepairer"]


@dataclass(frozen=True, slots=True)
class Reparenting:
    """One surviving station whose parent changed during a repair."""

    station: str
    old_parent: str | None
    new_parent: str | None


@dataclass
class RepairReport:
    """Outcome of one tree repair."""

    time: float
    #: dead stations actually removed, with their old 1-based positions
    removed: dict[str, int] = field(default_factory=dict)
    #: survivors that sat below a dead station in the old tree
    orphaned: list[str] = field(default_factory=list)
    #: survivors whose parent differs between the old and new tree
    reparented: list[Reparenting] = field(default_factory=list)
    #: the repaired tree (None when the vector emptied out)
    tree: MAryTree | None = None

    @property
    def survivor_count(self) -> int:
        return 0 if self.tree is None else self.tree.n


class TreeRepairer:
    """Removes confirmed-dead stations and re-derives the m-ary tree.

    One repairer serves one broadcast vector; ``m`` is the arity the
    repaired trees are derived with (usually the arity the interrupted
    broadcast was using).
    """

    def __init__(self, vector: BroadcastVector, m: int) -> None:
        check_positive(m, "m")
        self.vector = vector
        self.m = int(m)
        self.repairs: list[RepairReport] = []

    def repair(self, dead: Iterable[str]) -> RepairReport:
        """Drop ``dead`` members from the vector; return what changed.

        Stations not currently in the vector are ignored (they may have
        been removed by an earlier repair).  Idempotent: repairing an
        empty or already-removed set returns a no-op report with the
        current tree.
        """
        now = self.vector.network.sim.now
        report = RepairReport(time=now)
        members = set(self.vector.members())
        # dict.fromkeys: drop duplicate names while keeping first-seen order
        to_remove = [s for s in dict.fromkeys(dead) if s in members]

        old_tree = self.vector.tree(self.m) if len(self.vector) else None
        if old_tree is not None and to_remove:
            dead_set = set(to_remove)
            orphans: set[str] = set()
            for station in to_remove:
                position = self.vector.position_of(station)
                report.removed[station] = position
                for node in old_tree.subtree(position):
                    name = old_tree.name_of(node)
                    if name not in dead_set:
                        orphans.add(name)
            report.orphaned = sorted(
                orphans, key=self.vector.position_of
            )
            for station in to_remove:
                self.vector.leave(station)

        if len(self.vector):
            report.tree = self.vector.tree(self.m)
        if old_tree is not None and report.tree is not None:
            for name in report.tree.names:
                old_parent = (
                    old_tree.parent_name(name) if name in old_tree else None
                )
                new_parent = report.tree.parent_name(name)
                if old_parent != new_parent:
                    report.reparented.append(Reparenting(
                        station=name,
                        old_parent=old_parent,
                        new_parent=new_parent,
                    ))
        self.repairs.append(report)
        if OBS.enabled:
            OBS.registry.counter("fault.repairs").inc()
        return report

    # ------------------------------------------------------------------
    # Invariant checks (used by tests and recovery assertions)
    # ------------------------------------------------------------------
    @staticmethod
    def verify_tree(tree: MAryTree) -> None:
        """Assert the paper's structural invariants on a repaired tree.

        Every edge must satisfy the mutual-inverse child/parent formulas,
        every station must reach the root (connected), and parents must
        strictly precede children in the linear order (acyclic).  Raises
        ``AssertionError`` with a precise message on violation.
        """
        from repro.distribution.mtree import child_position, parent_position

        for k in range(2, tree.n + 1):
            parent = parent_position(k, tree.m)
            assert 1 <= parent < k, (
                f"parent of {k} is {parent}, not strictly earlier"
            )
            children = [
                child_position(parent, i, tree.m)
                for i in range(1, tree.m + 1)
            ]
            assert k in children, (
                f"{k} is not among its parent {parent}'s children {children}"
            )
        for k in range(1, tree.n + 1):
            path = tree.path_to_root(k)
            assert path[-1] == 1, f"{k} does not reach the root: {path}"
            assert len(set(path)) == len(path), f"cycle on path {path}"
