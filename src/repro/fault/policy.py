"""Shared retry/timeout/backoff policies.

Every layer that survives message loss needs the same three numbers —
how long to wait before concluding a message died, how that wait grows
across attempts, and when to give up.  Before this module each layer
hard-coded its own (``ondemand`` carried an ad-hoc fixed-interval
retry); :class:`RetryPolicy` centralizes the schedule so the on-demand
fetcher, the pre-broadcast redelivery path and the fault-recovery
machinery all back off the same way and experiments can sweep one knob.

Policies are value objects: deterministic, hashable, and safe to share
between subsystems.  Optional jitter is derived from a seed with
:func:`repro.util.rng.derive_seed`, so a jittered schedule is still
bit-for-bit reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.util.rng import make_rng
from repro.util.validation import check_non_negative, check_positive

__all__ = ["RetryPolicy"]


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """A timeout schedule over retry attempts.

    Attempt 0 is the first *retry* check (the original send is attempt
    "-1" and free).  The wait before attempt ``a`` is::

        min(initial_timeout_s * multiplier**a, max_timeout_s) * (1 + jitter_a)

    where ``jitter_a`` is drawn uniformly from ``[0, jitter]`` using the
    policy seed (0 by default, i.e. no jitter).

    >>> p = RetryPolicy(initial_timeout_s=2.0, multiplier=2.0, max_retries=4)
    >>> [p.timeout_for(a) for a in range(4)]
    [2.0, 4.0, 8.0, 16.0]
    """

    initial_timeout_s: float = 2.0
    multiplier: float = 2.0
    max_timeout_s: float = 60.0
    max_retries: int = 5
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive(self.initial_timeout_s, "initial_timeout_s")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1 (backoff never shrinks), "
                f"got {self.multiplier!r}"
            )
        check_positive(self.max_timeout_s, "max_timeout_s")
        check_non_negative(self.max_retries, "max_retries")
        check_non_negative(self.jitter, "jitter")

    @classmethod
    def fixed(cls, timeout_s: float, max_retries: int = 5) -> "RetryPolicy":
        """A constant-interval schedule (the legacy ondemand behaviour)."""
        return cls(
            initial_timeout_s=timeout_s,
            multiplier=1.0,
            max_timeout_s=timeout_s,
            max_retries=max_retries,
        )

    @classmethod
    def exponential(
        cls,
        initial_timeout_s: float = 2.0,
        *,
        multiplier: float = 2.0,
        max_timeout_s: float = 60.0,
        max_retries: int = 5,
        jitter: float = 0.0,
        seed: int = 0,
    ) -> "RetryPolicy":
        """The standard doubling backoff, capped at ``max_timeout_s``."""
        return cls(
            initial_timeout_s=initial_timeout_s,
            multiplier=multiplier,
            max_timeout_s=max_timeout_s,
            max_retries=max_retries,
            jitter=jitter,
            seed=seed,
        )

    def timeout_for(self, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` (0-based)."""
        check_non_negative(attempt, "attempt")
        base = min(
            self.initial_timeout_s * self.multiplier**attempt,
            self.max_timeout_s,
        )
        if not self.jitter:
            return base
        rng = make_rng(self.seed, "retry-jitter", attempt)
        return base * (1.0 + self.jitter * float(rng.random()))

    def delays(self) -> Iterator[float]:
        """The full schedule: one wait per permitted retry."""
        for attempt in range(self.max_retries):
            yield self.timeout_for(attempt)

    @property
    def total_wait_s(self) -> float:
        """Worst-case seconds spent waiting before giving up."""
        return sum(self.delays())

    def allows(
        self,
        attempt: int,
        *,
        now: float | None = None,
        deadline: float | None = None,
    ) -> bool:
        """Whether retry ``attempt`` (0-based) is still permitted.

        With ``now`` and ``deadline``, the schedule is additionally
        bounded by the caller's deadline: a retry whose *wait* would
        cross the deadline is refused even when attempts remain — the
        caller stops retrying into a request nobody awaits.

        >>> p = RetryPolicy(initial_timeout_s=2.0, multiplier=2.0)
        >>> p.allows(1)
        True
        >>> p.allows(1, now=8.0, deadline=10.0)  # wait 4 crosses 10
        False
        """
        if attempt >= self.max_retries:
            return False
        if deadline is not None and now is not None:
            return now + self.timeout_for(attempt) <= deadline
        return True
