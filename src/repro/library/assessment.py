"""Study-performance assessment from circulation activity.

"The check in/out procedure serves as an assessment criteria to the
study performance of a student."  The assessment derives, per student:
how many materials they touched, how broadly (distinct documents /
courses), how long they held material, and a composite activity score.
The paper gives no formula, so the score is a documented, monotone
combination of coverage and engagement — the *ranking* it induces (more
engaged students score higher) is what the paper's claim needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.library.catalog import VirtualLibrary
from repro.library.circulation import CirculationAction, CirculationDesk

__all__ = ["StudentAssessment", "AssessmentReport", "assess"]


@dataclass(frozen=True, slots=True)
class StudentAssessment:
    """One student's derived study metrics."""

    student: str
    checkouts: int
    checkins: int
    distinct_documents: int
    distinct_courses: int
    total_held_seconds: float
    #: loans never returned by the end of the observation window
    still_open: int

    @property
    def mean_held_seconds(self) -> float:
        return self.total_held_seconds / self.checkins if self.checkins else 0.0

    @property
    def activity_score(self) -> float:
        """Composite engagement score.

        Coverage (distinct documents, weighted 10) plus completed
        readings (check-ins, weighted 2) plus raw touches (check-outs,
        weighted 1).  Monotone in every component, so more engagement
        never lowers the score.
        """
        return (
            10.0 * self.distinct_documents
            + 2.0 * self.checkins
            + 1.0 * self.checkouts
        )


@dataclass
class AssessmentReport:
    """Assessment of every student seen in a circulation log."""

    students: list[StudentAssessment]

    def ranking(self) -> list[StudentAssessment]:
        """Students ordered by activity score, best first."""
        return sorted(
            self.students, key=lambda s: (-s.activity_score, s.student)
        )

    def for_student(self, student: str) -> StudentAssessment | None:
        for assessment in self.students:
            if assessment.student == student:
                return assessment
        return None


def assess(
    desk: CirculationDesk, library: VirtualLibrary | None = None
) -> AssessmentReport:
    """Build the assessment report from a desk's log.

    ``library`` (when given) resolves documents to courses for the
    distinct-course metric; without it, distinct courses equals
    distinct documents.
    """
    per_student: dict[str, dict] = {}
    open_since: dict[tuple[str, str], float] = {}
    for event in desk.log:
        record = per_student.setdefault(
            event.student,
            {
                "checkouts": 0,
                "checkins": 0,
                "docs": set(),
                "held": 0.0,
            },
        )
        key = (event.student, event.doc_id)
        if event.action is CirculationAction.CHECK_OUT:
            record["checkouts"] += 1
            record["docs"].add(event.doc_id)
            open_since[key] = event.time
        else:
            record["checkins"] += 1
            started = open_since.pop(key, None)
            if started is not None:
                record["held"] += event.time - started
    students = []
    for student, record in sorted(per_student.items()):
        courses: set[str] = set()
        for doc_id in record["docs"]:
            entry = library.get(doc_id) if library is not None else None
            courses.add(entry.course_number if entry else doc_id)
        still_open = sum(1 for (s, _d) in open_since if s == student)
        students.append(
            StudentAssessment(
                student=student,
                checkouts=record["checkouts"],
                checkins=record["checkins"],
                distinct_documents=len(record["docs"]),
                distinct_courses=len(courses),
                total_held_seconds=record["held"],
                still_open=still_open,
            )
        )
    return AssessmentReport(students=students)
