"""The Web document virtual library (paper §5).

"Web Document instances are stored in the virtual library.  An
instructor has a privilege to add or delete document instances ...
Students can check out and check in these Web pages ... The check
in/out procedure serves as an assessment criteria to the study
performance of a student.  We provide a browsing interface which allows
students to retrieve course materials according to matching keywords,
instructor names, and course numbers/titles."

* :mod:`repro.library.catalog` — the catalog of published lecture
  documents (instructor-managed).
* :mod:`repro.library.search` — the browsing interface: inverted-index
  search over keywords, instructor names, course numbers and titles.
* :mod:`repro.library.circulation` — unlimited check-out / check-in
  with a full event log.
* :mod:`repro.library.assessment` — study-performance reports derived
  from the circulation log.
"""

from repro.library.catalog import CatalogEntry, VirtualLibrary
from repro.library.search import SearchIndex, SearchResult
from repro.library.circulation import CirculationDesk, CirculationEvent, Loan
from repro.library.assessment import AssessmentReport, StudentAssessment, assess

__all__ = [
    "CatalogEntry",
    "VirtualLibrary",
    "SearchIndex",
    "SearchResult",
    "CirculationDesk",
    "CirculationEvent",
    "Loan",
    "AssessmentReport",
    "StudentAssessment",
    "assess",
]
