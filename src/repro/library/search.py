"""Inverted-index search for the virtual library's browsing interface.

Three query axes, matching the paper: free-text keywords (tokenized,
AND-combined, ranked by match count), exact-ish instructor name, and
course number or title words.  The index maintains one posting map per
axis; queries intersect the axes they use.  The course axis serves
title matches from a sorted title-token list (word-prefix lookup via
:mod:`bisect`) instead of scanning every stored document per query.
"""

from __future__ import annotations

import bisect
import re
from dataclasses import dataclass, field

__all__ = ["tokenize", "SearchResult", "SearchIndex"]

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> list[str]:
    """Lowercase alphanumeric tokens.

    >>> tokenize("Introduction to Multimedia-Computing!")
    ['introduction', 'to', 'multimedia', 'computing']
    """
    return _TOKEN_RE.findall(text.lower())


@dataclass(frozen=True, slots=True)
class SearchResult:
    doc_id: str
    score: float


@dataclass
class SearchIndex:
    """Postings per axis: term -> set of doc ids."""

    _keyword_postings: dict[str, set[str]] = field(default_factory=dict)
    _instructor_postings: dict[str, set[str]] = field(default_factory=dict)
    #: course number (exact, lowered) -> docs
    _course_postings: dict[str, set[str]] = field(default_factory=dict)
    #: title word -> docs, plus the words in sorted order for prefix lookup
    _title_postings: dict[str, set[str]] = field(default_factory=dict)
    _title_terms_sorted: list[str] = field(default_factory=list)
    #: per-doc stored fields for targeted removal / scoring
    _docs: dict[str, dict[str, object]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def add(
        self,
        doc_id: str,
        *,
        keywords: tuple[str, ...] = (),
        instructor: str = "",
        course_number: str = "",
        title: str = "",
    ) -> None:
        if doc_id in self._docs:
            raise ValueError(f"document {doc_id!r} already indexed")
        keyword_terms = set()
        for source in (*keywords, title):
            keyword_terms.update(tokenize(source))
        for term in keyword_terms:
            self._keyword_postings.setdefault(term, set()).add(doc_id)
        instructor_terms = set(tokenize(instructor))
        for term in instructor_terms:
            self._instructor_postings.setdefault(term, set()).add(doc_id)
        if course_number:
            self._course_postings.setdefault(
                course_number.lower(), set()
            ).add(doc_id)
        title_terms = set(tokenize(title))
        for term in title_terms:
            postings = self._title_postings.get(term)
            if postings is None:
                self._title_postings[term] = {doc_id}
                bisect.insort(self._title_terms_sorted, term)
            else:
                postings.add(doc_id)
        self._docs[doc_id] = {
            "keyword_terms": keyword_terms,
            "instructor": instructor,
            "instructor_terms": instructor_terms,
            "course_number": course_number,
            "title": title,
            "title_terms": title_terms,
        }

    def remove(self, doc_id: str) -> None:
        """Targeted posting removal using the doc's stored term sets —
        touches only the terms the document actually carries, not every
        posting list in the index."""
        doc = self._docs.pop(doc_id, None)
        if doc is None:
            return
        self._discard(self._keyword_postings, doc["keyword_terms"], doc_id)  # type: ignore[arg-type]
        self._discard(
            self._instructor_postings, doc["instructor_terms"], doc_id  # type: ignore[arg-type]
        )
        course_number = str(doc["course_number"])
        if course_number:
            self._discard(
                self._course_postings, (course_number.lower(),), doc_id
            )
        for term in doc["title_terms"]:  # type: ignore[union-attr]
            postings = self._title_postings.get(term)
            if postings is None:
                continue
            postings.discard(doc_id)
            if not postings:
                del self._title_postings[term]
                pos = bisect.bisect_left(self._title_terms_sorted, term)
                if (
                    pos < len(self._title_terms_sorted)
                    and self._title_terms_sorted[pos] == term
                ):
                    del self._title_terms_sorted[pos]

    @staticmethod
    def _discard(
        postings: dict[str, set[str]], terms, doc_id: str
    ) -> None:
        for term in terms:
            ids = postings.get(term)
            if ids is None:
                continue
            ids.discard(doc_id)
            if not ids:
                del postings[term]

    def __len__(self) -> int:
        return len(self._docs)

    # ------------------------------------------------------------------
    def search(
        self,
        keywords: str | None = None,
        instructor: str | None = None,
        course: str | None = None,
        *,
        limit: int | None = None,
    ) -> list[SearchResult]:
        """Intersect the axes in use; rank by keyword-match count.

        ``course`` matches the course number exactly (case-insensitive)
        or the title by words: every query token must prefix-match some
        title word (so "Draw" and "drawing" both find "Engineering
        Drawing"), served from the title-token postings.
        """
        candidate_sets: list[set[str]] = []
        query_terms = tokenize(keywords) if keywords else []
        if query_terms:
            per_term = [
                self._keyword_postings.get(term, set()) for term in query_terms
            ]
            matched = set.union(*per_term) if per_term else set()
            candidate_sets.append(matched)
        if instructor:
            terms = tokenize(instructor)
            sets = [self._instructor_postings.get(t, set()) for t in terms]
            candidate_sets.append(set.intersection(*sets) if sets else set())
        if course:
            exact = self._course_postings.get(course.lower(), set())
            candidate_sets.append(exact | self._title_word_matches(course))
        if not candidate_sets:
            candidates = set(self._docs)
        else:
            candidates = set.intersection(*candidate_sets)
        results = [
            SearchResult(doc_id=doc_id, score=self._score(doc_id, query_terms))
            for doc_id in candidates
        ]
        results.sort(key=lambda r: (-r.score, r.doc_id))
        if limit is not None:
            results = results[:limit]
        return results

    def _title_word_matches(self, query: str) -> set[str]:
        """Docs whose title words prefix-match every query token."""
        tokens = tokenize(query)
        if not tokens:
            return set()
        matched: set[str] | None = None
        for token in tokens:
            docs = self._title_prefix_docs(token)
            matched = docs if matched is None else matched & docs
            if not matched:
                return set()
        return matched or set()

    def _title_prefix_docs(self, token: str) -> set[str]:
        """Union of postings for every title word starting with ``token``."""
        out: set[str] = set()
        pos = bisect.bisect_left(self._title_terms_sorted, token)
        while pos < len(self._title_terms_sorted):
            term = self._title_terms_sorted[pos]
            if not term.startswith(token):
                break
            out |= self._title_postings[term]
            pos += 1
        return out

    def _score(self, doc_id: str, query_terms: list[str]) -> float:
        if not query_terms:
            return 1.0
        doc_terms: set[str] = self._docs[doc_id]["keyword_terms"]  # type: ignore[assignment]
        hits = sum(1 for term in query_terms if term in doc_terms)
        return hits / len(query_terms)
