"""Inverted-index search for the virtual library's browsing interface.

Three query axes, matching the paper: free-text keywords (tokenized,
AND-combined, ranked by match count), exact-ish instructor name, and
course number or title substring.  The index maintains one posting map
per axis; queries intersect the axes they use.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["tokenize", "SearchResult", "SearchIndex"]

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> list[str]:
    """Lowercase alphanumeric tokens.

    >>> tokenize("Introduction to Multimedia-Computing!")
    ['introduction', 'to', 'multimedia', 'computing']
    """
    return _TOKEN_RE.findall(text.lower())


@dataclass(frozen=True, slots=True)
class SearchResult:
    doc_id: str
    score: float


@dataclass
class SearchIndex:
    """Postings per axis: term -> set of doc ids."""

    _keyword_postings: dict[str, set[str]] = field(default_factory=dict)
    _instructor_postings: dict[str, set[str]] = field(default_factory=dict)
    #: course number (exact, lowered) -> docs
    _course_postings: dict[str, set[str]] = field(default_factory=dict)
    #: per-doc stored fields for filtering / scoring
    _docs: dict[str, dict[str, object]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def add(
        self,
        doc_id: str,
        *,
        keywords: tuple[str, ...] = (),
        instructor: str = "",
        course_number: str = "",
        title: str = "",
    ) -> None:
        if doc_id in self._docs:
            raise ValueError(f"document {doc_id!r} already indexed")
        keyword_terms = set()
        for source in (*keywords, title):
            keyword_terms.update(tokenize(source))
        for term in keyword_terms:
            self._keyword_postings.setdefault(term, set()).add(doc_id)
        for term in tokenize(instructor):
            self._instructor_postings.setdefault(term, set()).add(doc_id)
        if course_number:
            self._course_postings.setdefault(
                course_number.lower(), set()
            ).add(doc_id)
        self._docs[doc_id] = {
            "keyword_terms": keyword_terms,
            "instructor": instructor,
            "course_number": course_number,
            "title": title,
        }

    def remove(self, doc_id: str) -> None:
        doc = self._docs.pop(doc_id, None)
        if doc is None:
            return
        for postings in (
            self._keyword_postings,
            self._instructor_postings,
            self._course_postings,
        ):
            empty = []
            for term, ids in postings.items():
                ids.discard(doc_id)
                if not ids:
                    empty.append(term)
            for term in empty:
                del postings[term]

    def __len__(self) -> int:
        return len(self._docs)

    # ------------------------------------------------------------------
    def search(
        self,
        keywords: str | None = None,
        instructor: str | None = None,
        course: str | None = None,
        *,
        limit: int | None = None,
    ) -> list[SearchResult]:
        """Intersect the axes in use; rank by keyword-match count.

        ``course`` matches the course number exactly (case-insensitive)
        or the title as a substring.
        """
        candidate_sets: list[set[str]] = []
        query_terms = tokenize(keywords) if keywords else []
        if query_terms:
            per_term = [
                self._keyword_postings.get(term, set()) for term in query_terms
            ]
            matched = set.union(*per_term) if per_term else set()
            candidate_sets.append(matched)
        if instructor:
            terms = tokenize(instructor)
            sets = [self._instructor_postings.get(t, set()) for t in terms]
            candidate_sets.append(set.intersection(*sets) if sets else set())
        if course:
            exact = self._course_postings.get(course.lower(), set())
            by_title = {
                doc_id
                for doc_id, doc in self._docs.items()
                if course.lower() in str(doc["title"]).lower()
            }
            candidate_sets.append(exact | by_title)
        if not candidate_sets:
            candidates = set(self._docs)
        else:
            candidates = set.intersection(*candidate_sets)
        results = [
            SearchResult(doc_id=doc_id, score=self._score(doc_id, query_terms))
            for doc_id in candidates
        ]
        results.sort(key=lambda r: (-r.score, r.doc_id))
        if limit is not None:
            results = results[:limit]
        return results

    def _score(self, doc_id: str, query_terms: list[str]) -> float:
        if not query_terms:
            return 1.0
        doc_terms: set[str] = self._docs[doc_id]["keyword_terms"]  # type: ignore[assignment]
        hits = sum(1 for term in query_terms if term in doc_terms)
        return hits / len(query_terms)
