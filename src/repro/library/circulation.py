"""Check-out / check-in of lecture notes.

"Students can check out and check in these Web pages.  However, in
general, there is no limitation of the number of Web pages to be
checked out."  The desk therefore never refuses a loan for quota
reasons; it validates only that the document exists in the catalog and
that check-ins match open loans.  Every event is logged — the log is
the raw material for :mod:`repro.library.assessment`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.library.catalog import VirtualLibrary

__all__ = ["CirculationAction", "CirculationEvent", "Loan", "CirculationDesk"]


class CirculationAction(enum.Enum):
    CHECK_OUT = "check_out"
    CHECK_IN = "check_in"


@dataclass(frozen=True, slots=True)
class CirculationEvent:
    """One logged circulation action."""

    time: float
    student: str
    doc_id: str
    action: CirculationAction


@dataclass(frozen=True, slots=True)
class Loan:
    """An open check-out."""

    student: str
    doc_id: str
    checked_out_at: float


class CirculationDesk:
    """The library's loan ledger."""

    def __init__(self, library: VirtualLibrary) -> None:
        self.library = library
        self._open: dict[tuple[str, str], Loan] = {}
        self.log: list[CirculationEvent] = []

    # ------------------------------------------------------------------
    def check_out(self, student: str, doc_id: str, time: float) -> Loan:
        """Lend ``doc_id`` to ``student`` (no quota, per the paper)."""
        if doc_id not in self.library:
            raise LookupError(f"document {doc_id!r} is not in the library")
        key = (student, doc_id)
        if key in self._open:
            raise ValueError(
                f"{student} already has {doc_id!r} checked out"
            )
        loan = Loan(student=student, doc_id=doc_id, checked_out_at=time)
        self._open[key] = loan
        self.log.append(
            CirculationEvent(time, student, doc_id, CirculationAction.CHECK_OUT)
        )
        return loan

    def check_in(self, student: str, doc_id: str, time: float) -> float:
        """Return a loan; gives back the held duration."""
        key = (student, doc_id)
        loan = self._open.pop(key, None)
        if loan is None:
            raise LookupError(
                f"{student} has no open loan for {doc_id!r}"
            )
        if time < loan.checked_out_at:
            raise ValueError("check-in before check-out")
        self.log.append(
            CirculationEvent(time, student, doc_id, CirculationAction.CHECK_IN)
        )
        return time - loan.checked_out_at

    # ------------------------------------------------------------------
    def open_loans(self, student: str | None = None) -> list[Loan]:
        loans = list(self._open.values())
        if student is not None:
            loans = [loan for loan in loans if loan.student == student]
        return sorted(loans, key=lambda l: (l.student, l.doc_id))

    def has_out(self, student: str, doc_id: str) -> bool:
        return (student, doc_id) in self._open

    @property
    def total_checkouts(self) -> int:
        return sum(
            1
            for event in self.log
            if event.action is CirculationAction.CHECK_OUT
        )
