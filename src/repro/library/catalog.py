"""The virtual library catalog.

Instructors publish document instances (lecture notes as Web pages)
into the catalog; each entry carries the retrieval attributes the
paper's browsing interface matches on — keywords, instructor name,
course number and title.  Only instructors may add or delete entries
("an instructor has a privilege to add or delete document instances").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.library.search import SearchIndex, SearchResult

__all__ = ["CatalogEntry", "PermissionError_", "VirtualLibrary"]


class PermissionError_(RuntimeError):
    """A non-instructor attempted a privileged catalog operation."""


@dataclass(frozen=True, slots=True)
class CatalogEntry:
    """One published lecture document."""

    doc_id: str
    title: str
    course_number: str
    instructor: str
    keywords: tuple[str, ...] = ()
    starting_url: str | None = None
    size_bytes: int = 0


@dataclass
class VirtualLibrary:
    """The catalog plus its search index.

    ``instructors`` is the privilege list; the circulation desk
    (:mod:`repro.library.circulation`) references the catalog to
    validate loans.
    """

    instructors: set[str] = field(default_factory=set)
    _entries: dict[str, CatalogEntry] = field(default_factory=dict)
    _index: SearchIndex = field(default_factory=SearchIndex)

    # ------------------------------------------------------------------
    def grant_instructor(self, user: str) -> None:
        self.instructors.add(user)

    def add_document(self, user: str, entry: CatalogEntry) -> CatalogEntry:
        """Publish a document instance (instructor privilege)."""
        self._require_instructor(user)
        if entry.doc_id in self._entries:
            raise ValueError(f"document {entry.doc_id!r} already published")
        self._entries[entry.doc_id] = entry
        self._index.add(
            entry.doc_id,
            keywords=entry.keywords,
            instructor=entry.instructor,
            course_number=entry.course_number,
            title=entry.title,
        )
        return entry

    def remove_document(self, user: str, doc_id: str) -> bool:
        """Withdraw a document (instructor privilege)."""
        self._require_instructor(user)
        entry = self._entries.pop(doc_id, None)
        if entry is None:
            return False
        self._index.remove(doc_id)
        return True

    def reload(self, entries: "Iterable[CatalogEntry]") -> int:
        """Rebuild the catalog and search index from ``entries``.

        The recovery/replication path: entries come from the durable
        ``catalog_docs`` table (authoritative; privilege was enforced
        when they were first published), so no instructor check applies
        here — but each entry's publisher is re-granted the privilege,
        matching the state a live server would have.  Returns the entry
        count.  In-place, so the circulation desk's reference stays
        valid.
        """
        self._entries.clear()
        self._index = SearchIndex()
        for entry in entries:
            self._entries[entry.doc_id] = entry
            self.instructors.add(entry.instructor)
            self._index.add(
                entry.doc_id,
                keywords=entry.keywords,
                instructor=entry.instructor,
                course_number=entry.course_number,
                title=entry.title,
            )
        return len(self._entries)

    def _require_instructor(self, user: str) -> None:
        if user not in self.instructors:
            raise PermissionError_(
                f"{user!r} is not an instructor; catalog changes denied"
            )

    # ------------------------------------------------------------------
    def get(self, doc_id: str) -> CatalogEntry | None:
        return self._entries.get(doc_id)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> Iterator[CatalogEntry]:
        return iter(self._entries.values())

    # -- the browsing interface ----------------------------------------------
    def search(
        self,
        keywords: str | None = None,
        instructor: str | None = None,
        course: str | None = None,
        *,
        limit: int | None = None,
    ) -> list[SearchResult]:
        """Retrieve course materials by "matching keywords, instructor
        names, and course numbers/titles" (paper §5)."""
        return self._index.search(
            keywords=keywords, instructor=instructor, course=course, limit=limit
        )
